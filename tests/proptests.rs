//! Property-based tests over the core invariants: order preservation of the
//! key codec, row-codec roundtrips, pagination completeness, histogram
//! composition, and the op-count bound under randomized data.

use piql::{Database, ExecStrategy, Params, Session, SimCluster, Value};
use piql_core::codec::key::{decode_key, encode_key, Dir};
use piql_core::codec::row::{decode_tuple, encode_tuple};
use piql_core::tuple::Tuple;
use piql_core::value::DataType;
use piql_kv::ClusterConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// A generator of (DataType, Value) pairs valid for keys.
fn key_value() -> impl Strategy<Value = (DataType, Value)> {
    prop_oneof![
        any::<i32>().prop_map(|v| (DataType::Int, Value::Int(v))),
        any::<i64>().prop_map(|v| (DataType::BigInt, Value::BigInt(v))),
        any::<i64>().prop_map(|v| (DataType::Timestamp, Value::Timestamp(v))),
        any::<bool>().prop_map(|v| (DataType::Bool, Value::Bool(v))),
        "[a-z0-9\\x00]{0,12}".prop_map(|s| (DataType::Varchar(24), Value::Varchar(s))),
    ]
}

fn key_tuple(len: usize) -> impl Strategy<Value = Vec<(DataType, Value, Dir)>> {
    prop::collection::vec(
        (key_value(), prop_oneof![Just(Dir::Asc), Just(Dir::Desc)])
            .prop_map(|((t, v), d)| (t, v, d)),
        1..=len,
    )
}

/// Compare two equal-shape tuples in value space with per-component dirs.
fn tuple_cmp(a: &[(DataType, Value, Dir)], b: &[(DataType, Value, Dir)]) -> std::cmp::Ordering {
    for ((_, va, d), (_, vb, _)) in a.iter().zip(b) {
        let ord = va.total_cmp(vb);
        let ord = if *d == Dir::Desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode(a) < encode(b) in byte order iff a < b in value order, for
    /// any same-shape composite keys with mixed directions.
    #[test]
    fn key_codec_preserves_order(shape in key_tuple(4), swap in any::<prop::sample::Index>()) {
        // derive a second tuple by mutating one component
        let mut other = shape.clone();
        let i = swap.index(other.len());
        let (t, v, d) = other[i].clone();
        let v2 = match (&t, &v) {
            (DataType::Int, Value::Int(x)) => Value::Int(x.wrapping_add(1)),
            (DataType::BigInt, Value::BigInt(x)) => Value::BigInt(x.wrapping_add(1)),
            (DataType::Timestamp, Value::Timestamp(x)) => Value::Timestamp(x.wrapping_add(1)),
            (DataType::Bool, Value::Bool(x)) => Value::Bool(!x),
            (_, Value::Varchar(s)) => Value::Varchar(format!("{s}a")),
            _ => v.clone(),
        };
        other[i] = (t, v2, d);

        let enc = |t: &[(DataType, Value, Dir)]| {
            let vals: Vec<Value> = t.iter().map(|(_, v, _)| v.clone()).collect();
            let dirs: Vec<Dir> = t.iter().map(|(_, _, d)| *d).collect();
            encode_key(&vals, &dirs).unwrap()
        };
        let (ka, kb) = (enc(&shape), enc(&other));
        prop_assert_eq!(ka.cmp(&kb), tuple_cmp(&shape, &other));
    }

    /// decode(encode(x)) == x for composite keys.
    #[test]
    fn key_codec_roundtrips(shape in key_tuple(5)) {
        let vals: Vec<Value> = shape.iter().map(|(_, v, _)| v.clone()).collect();
        let dirs: Vec<Dir> = shape.iter().map(|(_, _, d)| *d).collect();
        let types: Vec<DataType> = shape.iter().map(|(t, _, _)| *t).collect();
        let enc = encode_key(&vals, &dirs).unwrap();
        let (dec, used) = decode_key(&enc, &types, &dirs).unwrap();
        prop_assert_eq!(dec, vals);
        prop_assert_eq!(used, enc.len());
    }

    /// Row codec roundtrips arbitrary tuples (including NULLs and doubles).
    #[test]
    fn row_codec_roundtrips(vals in prop::collection::vec(prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::BigInt),
        any::<bool>().prop_map(Value::Bool),
        any::<f64>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan()).prop_map(Value::Double),
        ".{0,40}".prop_map(Value::Varchar),
    ], 0..10)) {
        let t = Tuple::new(vals);
        prop_assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Paginating with any page size returns exactly the full ordered
    /// result, and every page respects the compiled bound.
    #[test]
    fn pagination_equals_full_scan(page in 1u64..20, rows in 1usize..60) {
        let db = Database::new(Arc::new(SimCluster::new(ClusterConfig::instant(3))));
        db.execute_ddl(
            "CREATE TABLE posts (author VARCHAR(16) NOT NULL, seq INT NOT NULL, \
             body VARCHAR(32), PRIMARY KEY (author, seq))",
        ).unwrap();
        db.bulk_load("posts", (0..rows).map(|i| Tuple::new(vec![
            Value::Varchar("amy".into()),
            Value::Int(i as i32),
            Value::Varchar(format!("post {i}")),
        ]))).unwrap();
        db.cluster().rebalance();

        let prepared = db.prepare(&format!(
            "SELECT * FROM posts WHERE author = <a> ORDER BY seq DESC PAGINATE {page}"
        )).unwrap();
        let mut params = Params::new();
        params.set(0, Value::Varchar("amy".into()));
        let mut session = Session::new();
        let mut collected = Vec::new();
        let mut cursor = None;
        loop {
            let r = db.execute_with(
                &mut session, &prepared, &params, ExecStrategy::Parallel, cursor.as_ref(),
            ).unwrap();
            prop_assert!(r.rows.len() as u64 <= page);
            if r.rows.is_empty() { break; }
            collected.extend(r.rows);
            match r.cursor { Some(c) => cursor = Some(c), None => break }
        }
        prop_assert_eq!(collected.len(), rows);
        // strictly descending seq with no duplicates
        for w in collected.windows(2) {
            prop_assert!(w[0][1].as_i64() > w[1][1].as_i64());
        }
    }

    /// Measured kv requests never exceed the compiled bound, for random
    /// data shapes and cardinality limits.
    #[test]
    fn measured_ops_never_exceed_bound(
        limit in 1u64..30,
        per_owner in 0usize..35,
        page in 1u64..15,
    ) {
        let db = Database::new(Arc::new(SimCluster::new(ClusterConfig::instant(4))));
        db.execute_ddl(&format!(
            "CREATE TABLE follows (owner VARCHAR(16) NOT NULL, target VARCHAR(16) NOT NULL, \
             PRIMARY KEY (owner, target), CARDINALITY LIMIT {limit} (owner))"
        )).unwrap();
        // respect the constraint while loading
        let n = per_owner.min(limit as usize);
        db.bulk_load("follows", (0..n).map(|i| Tuple::new(vec![
            Value::Varchar("bob".into()),
            Value::Varchar(format!("t{i:03}")),
        ]))).unwrap();
        db.cluster().rebalance();
        let prepared = db.prepare(&format!(
            "SELECT * FROM follows WHERE owner = <o> LIMIT {page}"
        )).unwrap();
        let mut params = Params::new();
        params.set(0, Value::Varchar("bob".into()));
        let mut s = Session::new();
        let r = db.execute(&mut s, &prepared, &params).unwrap();
        prop_assert!(s.stats.logical_requests <= prepared.compiled.bounds.requests);
        prop_assert!(r.rows.len() as u64 <= prepared.compiled.bounds.tuples);
        prop_assert_eq!(r.rows.len(), n.min(page as usize));
    }
}
