//! Differential fuzzing: the optimized engine must agree with the naive
//! reference executor on randomized data for a family of query shapes, and
//! every execution strategy must agree with every other.

use piql::{Database, ExecStrategy, Params, Session, SimCluster, Value};
use piql_core::tuple::Tuple;
use piql_kv::ClusterConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Build a randomized two-table database (posts + reactions) whose shape is
/// controlled by the proptest inputs.
fn build(seed: u64, n_users: usize, posts_per: usize, reactions_per: usize) -> Database {
    let db = Database::new(Arc::new(SimCluster::new(ClusterConfig::instant(4))));
    db.execute_ddl(
        "CREATE TABLE posts (author VARCHAR(16) NOT NULL, seq INT NOT NULL, \
         score INT, body VARCHAR(40), PRIMARY KEY (author, seq), \
         CARDINALITY LIMIT 40 (author))",
    )
    .unwrap();
    db.execute_ddl(
        "CREATE TABLE reactions (author VARCHAR(16) NOT NULL, seq INT NOT NULL, \
         emoji VARCHAR(8) NOT NULL, PRIMARY KEY (author, seq, emoji), \
         CARDINALITY LIMIT 60 (author, seq))",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let words = ["red", "green", "blue", "amber", "teal"];
    let mut posts = Vec::new();
    let mut reactions = Vec::new();
    for u in 0..n_users {
        for s in 0..posts_per.min(40) {
            posts.push(Tuple::new(vec![
                Value::Varchar(format!("u{u:03}")),
                Value::Int(s as i32),
                Value::Int(rng.gen_range(-5..50)),
                Value::Varchar(format!(
                    "{} {}",
                    words[rng.gen_range(0..words.len())],
                    words[rng.gen_range(0..words.len())]
                )),
            ]));
            for e in 0..rng.gen_range(0..reactions_per.min(10)) {
                reactions.push(Tuple::new(vec![
                    Value::Varchar(format!("u{u:03}")),
                    Value::Int(s as i32),
                    Value::Varchar(format!("e{e}")),
                ]));
            }
        }
    }
    db.bulk_load("posts", posts).unwrap();
    db.bulk_load("reactions", reactions).unwrap();
    db.cluster().rebalance();
    db
}

/// Query shapes exercised by the fuzz (parameter 0 = author).
fn query_family(limit: u64) -> Vec<String> {
    vec![
        // bounded scan with residual predicate
        format!("SELECT * FROM posts WHERE author = <a> AND score > 10 LIMIT {limit}"),
        // reverse ordered scan
        format!("SELECT * FROM posts WHERE author = <a> ORDER BY seq DESC LIMIT {limit}"),
        // range + order
        format!(
            "SELECT * FROM posts WHERE author = <a> AND seq >= 3 AND seq < 20 \
             ORDER BY seq ASC LIMIT {limit}"
        ),
        // sorted join bounded by the reactions cardinality constraint
        format!(
            "SELECT r.* FROM posts p JOIN reactions r \
             WHERE r.author = p.author AND r.seq = p.seq AND p.author = <a> \
             LIMIT {limit}"
        ),
        // tokenized search
        format!("SELECT * FROM posts WHERE body LIKE 'amber' AND author = <a> LIMIT {limit}"),
        // aggregate over a bounded group
        "SELECT author, COUNT(*) AS n, MAX(score) AS best FROM posts \
         WHERE author = <a> GROUP BY author"
            .to_string(),
    ]
}

fn sorted(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_by_key(|t| format!("{t}"));
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_execution_matches_reference(
        seed in any::<u64>(),
        n_users in 2usize..8,
        posts_per in 1usize..25,
        reactions_per in 1usize..8,
        limit in 1u64..30,
        probe in 0usize..8,
    ) {
        let db = build(seed, n_users, posts_per, reactions_per);
        let mut params = Params::new();
        params.set(0, Value::Varchar(format!("u{:03}", probe % n_users)));
        for sql in query_family(limit) {
            let prepared = db.prepare(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let reference = db.reference_query(&sql, &params).unwrap();
            let mut results = Vec::new();
            for strategy in [ExecStrategy::Lazy, ExecStrategy::Simple, ExecStrategy::Parallel] {
                let mut s = Session::new();
                let r = db
                    .execute_with(&mut s, &prepared, &params, strategy, None)
                    .unwrap_or_else(|e| panic!("{sql} [{strategy:?}]: {e}"));
                // the request bound is defined for executors that respect
                // the compiler's limit hints (§7.1); Lazy deliberately
                // ignores them (one request per tuple, §8.5), so only its
                // tuple counts are bounded
                if strategy != ExecStrategy::Lazy {
                    prop_assert!(
                        s.stats.logical_requests <= prepared.compiled.bounds.requests,
                        "{sql}: {} > bound {}",
                        s.stats.logical_requests,
                        prepared.compiled.bounds.requests
                    );
                }
                prop_assert!(
                    r.rows.len() as u64 <= prepared.compiled.bounds.tuples,
                    "{sql}: emitted {} rows > tuple bound {}",
                    r.rows.len(),
                    prepared.compiled.bounds.tuples
                );
                results.push(r.rows);
            }
            prop_assert_eq!(&results[0], &results[1], "lazy vs simple: {}", sql);
            prop_assert_eq!(&results[1], &results[2], "simple vs parallel: {}", sql);
            if sql.contains("ORDER BY") {
                // ordered: exact comparison
                prop_assert_eq!(&results[2], &reference, "vs reference: {}", sql);
            } else if sql.contains("LIMIT") {
                // LIMIT without ORDER BY admits any k-subset of the full
                // result: compare against the un-limited reference
                let full_sql = sql.split(" LIMIT").next().unwrap().to_string();
                let full = sorted(db.reference_query(&full_sql, &params).unwrap());
                prop_assert_eq!(
                    results[2].len() as u64,
                    (full.len() as u64).min(limit),
                    "row count: {}",
                    sql
                );
                for row in &results[2] {
                    prop_assert!(
                        full.contains(row),
                        "{sql}: returned row {row} not in the full result"
                    );
                }
            } else {
                prop_assert_eq!(
                    sorted(results[2].clone()),
                    sorted(reference),
                    "vs reference (multiset): {}",
                    sql
                );
            }
        }
    }
}
