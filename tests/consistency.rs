//! Failure injection and eventual-consistency behaviour (§3, §7.2):
//! dangling index entries are invisible to readers and collectable; stale
//! replicas converge; the write-path ordering never loses a record that an
//! index cannot find.

use piql::{Database, Params, Session, SimCluster, Value};
use piql_core::catalog::Catalog;
use piql_core::tuple::Tuple;
use piql_kv::{ClusterConfig, KvRequest, KvStore, LatencyConfig};
use std::sync::Arc;

fn db_with_token_index() -> Database {
    let db = Database::new(Arc::new(SimCluster::new(ClusterConfig::instant(3))));
    db.execute_ddl("CREATE TABLE notes (id INT NOT NULL, body VARCHAR(60), PRIMARY KEY (id))")
        .unwrap();
    db.bulk_load(
        "notes",
        (0..20).map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Varchar(format!("note number{i} common")),
            ])
        }),
    )
    .unwrap();
    // provision the token index via a query
    db.prepare("SELECT * FROM notes WHERE body LIKE <w> LIMIT 50")
        .unwrap();
    db.cluster().rebalance();
    db
}

/// Inject a dangling index entry (as if a writer crashed between step 1 and
/// step 2 of the §7.2 insert protocol) directly into the store.
fn inject_dangling(db: &Database) {
    let catalog = db.catalog();
    let idx = catalog
        .indexes()
        .find(|i| i.name.contains("tok"))
        .expect("token index exists")
        .clone();
    let table = catalog.table("notes").unwrap().clone();
    let ghost = Tuple::new(vec![
        Value::Int(9_999),
        Value::Varchar("common ghost".into()),
    ]);
    let ns = db.cluster().namespace(&Catalog::index_namespace(&idx));
    for key in piql_engine::keys::index_entry_keys(&table, &idx, &ghost).unwrap() {
        db.cluster().bulk_put(ns, key, Vec::new());
    }
}

#[test]
fn dangling_index_entries_are_skipped_and_collected() {
    let db = db_with_token_index();
    inject_dangling(&db);

    // readers skip the dangling entry (its record does not exist)
    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar("common".into()));
    let r = db
        .query(
            &mut session,
            "SELECT * FROM notes WHERE body LIKE <w> LIMIT 50",
            &params,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 20, "ghost row must not appear");

    // the GC sweep removes it (and only it: 2 entries for 'common ghost')
    let collected = db.gc_indexes(&mut session, "notes").unwrap();
    assert_eq!(collected, 2, "exactly the injected entries are collected");
    let again = db.gc_indexes(&mut session, "notes").unwrap();
    assert_eq!(again, 0, "gc is idempotent");
    let r = db
        .query(
            &mut session,
            "SELECT * FROM notes WHERE body LIKE <w> LIMIT 50",
            &params,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 20);
}

#[test]
fn gc_removes_outdated_entries_after_manual_record_overwrite() {
    let db = db_with_token_index();
    // simulate a writer that updated the record but crashed before deleting
    // stale index entries: overwrite the record bytes directly
    let catalog = db.catalog();
    let table = catalog.table("notes").unwrap().clone();
    let ns = db.cluster().namespace(&Catalog::table_namespace(&table));
    let new_row = Tuple::new(vec![
        Value::Int(3),
        Value::Varchar("renamed entirely".into()),
    ]);
    let pk = piql_engine::keys::primary_key_of_row(&table, &new_row).unwrap();
    db.cluster()
        .bulk_put(ns, pk, piql_engine::keys::encode_row(&new_row));

    let mut session = Session::new();
    // stale 'common'/'number3' entries still point at id=3 whose body no
    // longer contains those tokens -> readers skip, gc collects
    let mut params = Params::new();
    params.set(0, Value::Varchar("common".into()));
    let r = db
        .query(
            &mut session,
            "SELECT * FROM notes WHERE body LIKE <w> LIMIT 50",
            &params,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 19, "updated row no longer matches");
    let collected = db.gc_indexes(&mut session, "notes").unwrap();
    assert!(collected >= 2, "stale entries collected: {collected}");
}

#[test]
fn lagged_replicas_serve_stale_then_converge() {
    let mut cfg = ClusterConfig::instant(2);
    cfg.replica_lag_us = 500_000; // half a second of replica lag
    cfg.latency = LatencyConfig {
        median_us: 1_000.0,
        sigma: 0.0,
        per_entry_us: 0.0,
        per_kib_us: 0.0,
        write_factor: 1.0,
    };
    let db = Database::new(Arc::new(SimCluster::new(cfg)));
    db.execute_ddl("CREATE TABLE kv (k INT NOT NULL, v VARCHAR(16), PRIMARY KEY (k))")
        .unwrap();
    let mut session = Session::new();
    db.insert_row(
        &mut session,
        "kv",
        Tuple::new(vec![Value::Int(1), Value::Varchar("v1".into())]),
    )
    .unwrap();

    // reads immediately after the write may see nothing (non-primary
    // replica within the lag window) but must never see garbage
    let prepared = db.prepare("SELECT * FROM kv WHERE k = 1").unwrap();
    let mut saw_stale = false;
    for _ in 0..6 {
        let r = db.execute(&mut session, &prepared, &Params::new()).unwrap();
        match r.rows.len() {
            0 => saw_stale = true,
            1 => assert_eq!(r.rows[0][1], Value::Varchar("v1".into())),
            n => panic!("impossible row count {n}"),
        }
    }
    // well past the lag, every replica serves the write
    session.now += 2_000_000;
    for _ in 0..6 {
        let r = db.execute(&mut session, &prepared, &Params::new()).unwrap();
        assert_eq!(r.rows.len(), 1, "converged");
    }
    let _ = saw_stale; // staleness is possible, not guaranteed (routing)
}

#[test]
fn tombstone_compaction_keeps_results_correct() {
    let db = db_with_token_index();
    let mut session = Session::new();
    for i in 0..10 {
        db.delete_row(&mut session, "notes", &[Value::Int(i)])
            .unwrap();
    }
    let mut params = Params::new();
    params.set(0, Value::Varchar("common".into()));
    let before = db
        .query(
            &mut session,
            "SELECT * FROM notes WHERE body LIKE <w> LIMIT 50",
            &params,
        )
        .unwrap();
    assert_eq!(before.rows.len(), 10);
    // compact away tombstones and old versions, results unchanged
    db.cluster().compact(session.now + 1);
    let after = db
        .query(
            &mut session,
            "SELECT * FROM notes WHERE body LIKE <w> LIMIT 50",
            &params,
        )
        .unwrap();
    assert_eq!(after.rows, before.rows);
}

#[test]
fn raw_store_ops_respect_namespace_isolation() {
    // sanity: two tables never bleed into each other's namespaces
    let db = Database::new(Arc::new(SimCluster::new(ClusterConfig::instant(2))));
    db.execute_ddl("CREATE TABLE a (k INT NOT NULL, PRIMARY KEY (k))")
        .unwrap();
    db.execute_ddl("CREATE TABLE b (k INT NOT NULL, PRIMARY KEY (k))")
        .unwrap();
    db.bulk_load("a", (0..5).map(|i| Tuple::new(vec![Value::Int(i)])))
        .unwrap();
    let cluster = db.cluster();
    let ns_b = cluster.namespace("t/b");
    let mut s = Session::new();
    let r = cluster.execute_round(
        &mut s,
        vec![KvRequest::GetRange {
            ns: ns_b,
            start: vec![],
            end: None,
            limit: None,
            reverse: false,
        }],
    );
    assert!(r[0].expect_entries().is_empty(), "b is empty");
}

#[test]
fn cursors_resume_on_a_different_application_server() {
    // §4.1: the serialized cursor ships to the user and may come back to
    // ANY application server — two Database instances (two app servers)
    // sharing one cluster must hand pages back and forth seamlessly.
    let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(3)));
    let server_a = Database::new(cluster.clone());
    server_a
        .execute_ddl(
            "CREATE TABLE feed (who VARCHAR(16) NOT NULL, at TIMESTAMP NOT NULL, \
             msg VARCHAR(64), PRIMARY KEY (who, at))",
        )
        .unwrap();
    server_a
        .bulk_load(
            "feed",
            (0..23).map(|i| {
                Tuple::new(vec![
                    Value::Varchar("zoe".into()),
                    Value::Timestamp(1000 + i),
                    Value::Varchar(format!("m{i}")),
                ])
            }),
        )
        .unwrap();
    cluster.rebalance();
    // server B has its own catalog: replay the DDL (schemas are code-
    // deployed in the library-centric architecture, §3)
    let server_b = Database::new(cluster);
    server_b
        .execute_ddl(
            "CREATE TABLE feed (who VARCHAR(16) NOT NULL, at TIMESTAMP NOT NULL, \
             msg VARCHAR(64), PRIMARY KEY (who, at))",
        )
        .unwrap();

    let sql = "SELECT * FROM feed WHERE who = <w> ORDER BY at DESC PAGINATE 10";
    let q_a = server_a.prepare(sql).unwrap();
    let q_b = server_b.prepare(sql).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar("zoe".into()));

    let mut session = Session::new();
    let page1 = server_a.execute(&mut session, &q_a, &params).unwrap();
    assert_eq!(page1.rows.len(), 10);
    // the cursor travels as bytes through the user's browser...
    let wire = page1.cursor.unwrap().to_bytes();
    // ...and lands on server B
    let cursor = piql_engine::Cursor::from_bytes(&wire).unwrap();
    let page2 = server_b
        .execute_with(
            &mut session,
            &q_b,
            &params,
            piql::ExecStrategy::Parallel,
            Some(&cursor),
        )
        .unwrap();
    assert_eq!(page2.rows.len(), 10);
    let wire2 = page2.cursor.unwrap().to_bytes();
    let cursor2 = piql_engine::Cursor::from_bytes(&wire2).unwrap();
    // back to server A for the final page
    let page3 = server_a
        .execute_with(
            &mut session,
            &q_a,
            &params,
            piql::ExecStrategy::Parallel,
            Some(&cursor2),
        )
        .unwrap();
    assert_eq!(page3.rows.len(), 3);
    // no overlaps, strictly descending across the whole traversal
    let all: Vec<i64> = page1
        .rows
        .iter()
        .chain(&page2.rows)
        .chain(&page3.rows)
        .map(|r| r[1].as_i64().unwrap())
        .collect();
    assert_eq!(all.len(), 23);
    assert!(all.windows(2).all(|w| w[0] > w[1]));
}
