//! Cross-crate prediction tests (§8.6): the SLO model must be
//! *trustworthily conservative* — close to, and rarely below, the measured
//! p99 for the benchmark queries.

use piql::{Database, ExecStrategy, Params, Session, Value};
use piql_bench_helpers::*;
use piql_predict::{train, SloPredictor, TrainConfig};

/// Local copy of the bench-cluster shape (the bench crate is not a
/// dependency of integration tests).
mod piql_bench_helpers {
    use piql_kv::{ClusterConfig, SimCluster};
    use std::sync::Arc;

    pub fn cluster(nodes: usize, seed: u64) -> Arc<SimCluster> {
        let mut cfg = ClusterConfig::default().with_nodes(nodes).with_seed(seed);
        cfg.replication = 2;
        cfg.node_concurrency = 12;
        Arc::new(SimCluster::new(cfg))
    }
}

#[test]
fn prediction_is_conservative_for_scadr_queries() {
    use piql_workloads::scadr::*;

    // train on one cluster configuration...
    let train_cluster = cluster(10, 0xEE1);
    let config = TrainConfig {
        intervals: 8,
        samples_per_interval: 6,
        alphas: vec![1, 10, 50, 100, 150],
        alpha_js: vec![1, 10, 25],
        betas: vec![40, 160, 640],
        ..TrainConfig::default()
    };
    let predictor = SloPredictor::new(train(&train_cluster, &config));

    // ...measure on a second, identically configured cluster
    let db = Database::new(cluster(10, 0xEE2));
    let scadr = ScadrConfig::default();
    let n_users = setup(&db, &scadr, 10).unwrap();
    let w = ScadrWorkload::new(&db, &scadr, n_users).unwrap();

    let mut clock = 0u64;
    for (label, prepared) in w.all_prepared() {
        let mut lat: Vec<u64> = Vec::new();
        for k in 0..200usize {
            let mut params = Params::new();
            params.set(0, Value::Varchar(username((k * 31) % n_users)));
            let mut s = Session::at(clock);
            let t0 = s.begin();
            db.execute_with(&mut s, prepared, &params, ExecStrategy::Parallel, None)
                .unwrap();
            lat.push(s.elapsed_since(t0));
            clock = s.now + 10_000;
        }
        lat.sort_unstable();
        let actual_p99 = lat[lat.len() * 99 / 100] as f64 / 1000.0;
        let predicted = predictor.predict(&prepared.compiled).max_p99_ms;
        // conservative: predicted within [actual - small slack, 20x actual]
        assert!(
            predicted >= actual_p99 * 0.5,
            "{label}: prediction {predicted:.0}ms implausibly below actual {actual_p99:.0}ms"
        );
        assert!(
            predicted <= (actual_p99 * 20.0).max(100.0),
            "{label}: prediction {predicted:.0}ms untrustworthily above actual {actual_p99:.0}ms"
        );
    }
}

#[test]
fn thoughtstream_prediction_composes_two_operators() {
    use piql_workloads::scadr::*;
    let db = Database::new(cluster(4, 1));
    let scadr = ScadrConfig::default();
    for stmt in ddl(&scadr) {
        db.execute_ddl(&stmt).unwrap();
    }
    let q = queries(&scadr);
    let prepared = db.prepare(&q.thoughtstream).unwrap();
    let thetas = piql_predict::plan_thetas(&prepared.compiled);
    assert_eq!(thetas.len(), 2, "scan ∗ sorted-join, as in §6.2");
    assert_eq!(thetas[0].key.op, piql_predict::OpKind::IndexScan);
    assert_eq!(thetas[1].key.op, piql_predict::OpKind::SortedIndexJoin);
    assert_eq!(thetas[1].key.alpha_j as u64, scadr.page_size);
}
