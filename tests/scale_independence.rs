//! The paper's central claim, as an executable invariant: a compiled
//! scale-independent query performs a bounded number of key/value
//! operations *regardless of database size*, and its virtual latency stays
//! flat, while an unbounded (cost-based) plan degrades with growth.

use piql::core::catalog::Statistics;
use piql::core::opt::Optimizer;
use piql::{Database, ExecStrategy, Params, Session, SimCluster, Value};
use piql_core::tuple::Tuple;
use piql_kv::ClusterConfig;
use std::sync::Arc;

const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
     WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
     ORDER BY thoughts.timestamp DESC LIMIT 10";

fn build_db(n_users: usize) -> Database {
    let mut cfg = ClusterConfig::default().with_nodes(6).with_seed(0xABCD);
    cfg.interference = piql_kv::InterferenceConfig::none();
    let db = Database::new(Arc::new(SimCluster::new(cfg)));
    db.execute_ddl("CREATE TABLE users (username VARCHAR(24) NOT NULL, PRIMARY KEY (username))")
        .unwrap();
    db.execute_ddl(
        "CREATE TABLE subscriptions (owner VARCHAR(24) NOT NULL, \
         target VARCHAR(24) NOT NULL, approved BOOL, PRIMARY KEY (owner, target), \
         FOREIGN KEY (owner) REFERENCES users, FOREIGN KEY (target) REFERENCES users, \
         CARDINALITY LIMIT 20 (owner))",
    )
    .unwrap();
    db.execute_ddl(
        "CREATE TABLE thoughts (owner VARCHAR(24) NOT NULL, \
         timestamp TIMESTAMP NOT NULL, text VARCHAR(140), \
         PRIMARY KEY (owner, timestamp), FOREIGN KEY (owner) REFERENCES users)",
    )
    .unwrap();
    let uname = |i: usize| format!("u{i:07}");
    db.bulk_load(
        "users",
        (0..n_users).map(|i| Tuple::new(vec![Value::Varchar(uname(i))])),
    )
    .unwrap();
    db.bulk_load(
        "subscriptions",
        (0..n_users).flat_map(|i| {
            (1..=10usize).map(move |d| {
                Tuple::new(vec![
                    Value::Varchar(format!("u{i:07}")),
                    Value::Varchar(format!("u{:07}", (i + d) % n_users)),
                    Value::Bool(true),
                ])
            })
        }),
    )
    .unwrap();
    db.bulk_load(
        "thoughts",
        (0..n_users).flat_map(|i| {
            (0..15usize).map(move |p| {
                Tuple::new(vec![
                    Value::Varchar(format!("u{i:07}")),
                    Value::Timestamp((i * 131 + p * 7) as i64),
                    Value::Varchar("text".into()),
                ])
            })
        }),
    )
    .unwrap();
    db.cluster().rebalance();
    db
}

/// Average (requests, latency µs) over a few users at a given size.
fn probe(db: &Database, prepared: &piql::Prepared, n_users: usize) -> (f64, f64) {
    let mut reqs = 0u64;
    let mut lat = 0u64;
    let mut clock = 0u64;
    let samples = 40;
    for k in 0..samples {
        let mut params = Params::new();
        params.set(0, Value::Varchar(format!("u{:07}", (k * 97) % n_users)));
        let mut s = Session::at(clock);
        let t0 = s.begin();
        db.execute_with(&mut s, prepared, &params, ExecStrategy::Parallel, None)
            .unwrap();
        reqs += s.stats.logical_requests;
        lat += s.elapsed_since(t0);
        clock = s.now + 20_000;
    }
    (reqs as f64 / samples as f64, lat as f64 / samples as f64)
}

#[test]
fn bounded_query_is_flat_across_100x_growth() {
    let sizes = [200usize, 2_000, 20_000];
    let mut results = Vec::new();
    for &n in &sizes {
        let db = build_db(n);
        let prepared = db.prepare(THOUGHTSTREAM).unwrap();
        assert!(prepared.compiled.bounds.guaranteed);
        let (reqs, lat) = probe(&db, &prepared, n);
        assert!(
            reqs <= prepared.compiled.bounds.requests as f64,
            "measured {reqs} > bound {}",
            prepared.compiled.bounds.requests
        );
        results.push((n, reqs, lat));
    }
    let (_, r0, l0) = results[0];
    let (_, r2, l2) = results[2];
    assert!(
        (r2 - r0).abs() <= 1.0,
        "request count must not grow with data: {results:?}"
    );
    assert!(
        l2 <= l0 * 1.5,
        "latency must stay flat across 100x growth: {results:?}"
    );
}

#[test]
fn unbounded_plan_degrades_with_growth() {
    // the Class-III query PIQL would reject, forced through the baseline
    let sql = "SELECT * FROM thoughts WHERE text = 'text'";
    let sizes = [200usize, 2_000];
    let mut lat = Vec::new();
    for &n in &sizes {
        let db = build_db(n);
        let prepared = db
            .prepare_with(sql, &Optimizer::cost_based(Statistics::new()))
            .unwrap();
        assert!(!prepared.compiled.bounds.guaranteed);
        let mut s = Session::new();
        let t0 = s.begin();
        db.execute_with(
            &mut s,
            &prepared,
            &Params::new(),
            ExecStrategy::Parallel,
            None,
        )
        .unwrap();
        lat.push(s.elapsed_since(t0));
    }
    assert!(
        lat[1] as f64 >= lat[0] as f64 * 3.0,
        "10x data should make the unbounded scan much slower: {lat:?}"
    );
}

#[test]
fn scale_independent_mode_rejects_the_unbounded_query() {
    let db = build_db(200);
    let err = db
        .prepare("SELECT * FROM thoughts WHERE text = 'text'")
        .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("not scale-independent"), "{msg}");
}
