//! Golden test for the Figure 3 plan stages: the thoughtstream query must
//! pass through exactly the paper's transformations.

use piql::{Database, SimCluster};
use piql_kv::ClusterConfig;
use std::sync::Arc;

#[test]
fn figure3_stages_for_the_thoughtstream_query() {
    let db = Database::new(Arc::new(SimCluster::new(ClusterConfig::instant(2))));
    db.execute_ddl("CREATE TABLE users (username VARCHAR(24) NOT NULL, PRIMARY KEY (username))")
        .unwrap();
    db.execute_ddl(
        "CREATE TABLE subscriptions (owner VARCHAR(24) NOT NULL, \
         target VARCHAR(24) NOT NULL, approved BOOL, \
         PRIMARY KEY (owner, target), \
         CARDINALITY LIMIT 100 (owner))",
    )
    .unwrap();
    db.execute_ddl(
        "CREATE TABLE thoughts (owner VARCHAR(24) NOT NULL, \
         timestamp TIMESTAMP NOT NULL, text VARCHAR(140), \
         PRIMARY KEY (owner, timestamp))",
    )
    .unwrap();
    let prepared = db
        .prepare(
            "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
             WHERE thoughts.owner = s.target AND s.owner = <uname> AND s.approved = true \
             ORDER BY thoughts.timestamp DESC LIMIT 10",
        )
        .unwrap();
    let explain = prepared.compiled.explain();
    println!("{explain}");

    // stage (b): naive logical plan — predicates at their relations, join
    // condition on the join, Stop(LIMIT) above Sort
    let naive = format!(
        "{}",
        prepared
            .compiled
            .naive
            .display_with(&prepared.compiled.schema)
    );
    assert!(naive.contains("Stop(10, from LIMIT 10)"), "{naive}");
    assert!(naive.contains("Sort(thoughts.timestamp DESC)"), "{naive}");
    assert!(naive.contains("Join(s.target = thoughts.owner)"), "{naive}");
    assert!(
        naive.contains("Selection(s.owner = [1: uname], s.approved = true)"),
        "{naive}"
    );
    assert!(!naive.contains("DataStop"), "no data-stop before phase I");

    // stage (c): after Phase I — the data-stop sits between its cause
    // (owner = <uname>) and the non-cause predicate (approved = true),
    // exactly the push-down of Figure 3(c)
    let optimized = format!(
        "{}",
        prepared
            .compiled
            .optimized
            .display_with(&prepared.compiled.schema)
    );
    let pos = |needle: &str| {
        optimized
            .find(needle)
            .unwrap_or_else(|| panic!("missing '{needle}' in:\n{optimized}"))
    };
    let p_approved = pos("Selection(s.approved = true)");
    let p_datastop = pos("DataStop(100, from CARDINALITY LIMIT 100 (owner))");
    let p_owner = pos("Selection(s.owner = [1: uname])");
    assert!(
        p_approved < p_datastop && p_datastop < p_owner,
        "data-stop must sit between approved (above) and owner (below):\n{optimized}"
    );

    // stage (d): physical — IndexScan with the cardinality limit hint,
    // LocalSelection(approved), SortedIndexJoin with limitHint 10
    let physical = format!(
        "{}",
        prepared
            .compiled
            .physical
            .display_with(&prepared.compiled.schema)
    );
    assert!(
        physical.contains("limitHint=100 [CARDINALITY LIMIT 100 (owner)]"),
        "{physical}"
    );
    assert!(
        physical.contains("LocalSelection(s.approved = true)"),
        "{physical}"
    );
    assert!(physical.contains("SortedIndexJoin"), "{physical}");
    assert!(physical.contains("perKey=10"), "{physical}");
    assert!(
        physical.contains("descending") || physical.contains("DESC"),
        "{physical}"
    );
}
