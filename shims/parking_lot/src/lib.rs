//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace vendors this shim so builds need no network access. Only
//! the surface the repo uses is provided: [`Mutex::lock`], [`RwLock::read`],
//! [`RwLock::write`], plus `new`/`into_inner`/`get_mut`. Poisoning is
//! ignored (parking_lot's locks do not poison), which is the one behavioral
//! difference from `std::sync` that callers rely on.

use std::fmt;
use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicked holder");
    }
}
