//! The strategy abstraction: a composable generator of test inputs.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// How many times filters retry before giving up on a pathological
/// predicate.
const MAX_FILTER_TRIES: usize = 1000;

/// A generator of values of one type. Unlike real proptest there is no
/// value tree / shrinking; `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_TRIES} candidates in a row",
            self.reason
        );
    }
}

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Regex-subset string strategies: `"[a-z0-9\\x00]{0,12}"`, `".{0,40}"`, …
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

/// Phantom-typed strategy produced by [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
