//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace vendors this shim so builds need no network access. It
//! supports the surface the repo's property tests use: the [`proptest!`]
//! macro (with optional `#![proptest_config]`), `prop_assert!` /
//! `prop_assert_eq!`, [`strategy::Strategy`] with `prop_map` /
//! `prop_filter`, `prop_oneof!`, `any::<T>()`, numeric-range strategies,
//! regex-subset string strategies, `collection::{vec, btree_map,
//! btree_set}`, and `sample::Index`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! case number and message and panics. Generation is deterministic (fixed
//! seed per test body), so failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// The test macro: runs each body `config.cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (@body ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
