//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// How many extra draws distinct-element collections get before accepting a
/// smaller-than-requested size (duplicates shrink sets, like real proptest).
const DISTINCT_TRY_FACTOR: usize = 8;

/// An inclusive size window, converted from the range forms the tests use.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        for _ in 0..n * DISTINCT_TRY_FACTOR + DISTINCT_TRY_FACTOR {
            if out.len() >= n {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..n * DISTINCT_TRY_FACTOR + DISTINCT_TRY_FACTOR {
            if out.len() >= n {
                break;
            }
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}
