//! String generation from a small regex subset.
//!
//! Supported: literal chars, `.` (any printable char, occasionally
//! multi-byte), character classes `[a-z0-9\x00]` with ranges and `\xNN` /
//! `\n` / `\t` escapes, and the quantifiers `{m,n}`, `{n}`, `*`, `+`, `?`.
//! This covers the patterns the repo's property tests use; anything the
//! parser does not understand panics loudly rather than silently producing
//! wrong data.

use crate::test_runner::TestRng;
use rand::Rng;

const UNQUANTIFIED_MAX: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// Any printable char (what `.` means here).
    Dot,
    /// One of an explicit set of chars.
    Class(Vec<char>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = rng.gen_range(piece.min..=piece.max);
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(set) => set[rng.gen_range(0..set.len())],
        Atom::Dot => {
            // mostly ASCII printable; sometimes multi-byte to exercise UTF-8
            if rng.gen_range(0..8u32) == 0 {
                const WIDE: [char; 6] = ['é', 'Ω', '→', '€', '語', '🦀'];
                WIDE[rng.gen_range(0..WIDE.len())]
            } else {
                rng.gen_range(0x20u32..0x7F) as u8 as char
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                let (set, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                let (c, next) = parse_escape(&chars, i + 1, pattern);
                i = next;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            let (c, next) = parse_escape(chars, i + 1, pattern);
            i = next;
            c
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // range like a-z (a literal '-' before ']' falls through)
        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
            let hi = chars[i + 1];
            i += 2;
            let (lo, hi) = (c as u32, hi as u32);
            assert!(lo <= hi, "bad class range in pattern '{pattern}'");
            for v in lo..=hi {
                if let Some(c) = char::from_u32(v) {
                    set.push(c);
                }
            }
        } else {
            set.push(c);
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in pattern '{pattern}'"
    );
    assert!(
        !set.is_empty(),
        "empty character class in pattern '{pattern}'"
    );
    (set, i + 1)
}

fn parse_escape(chars: &[char], i: usize, pattern: &str) -> (char, usize) {
    match chars.get(i) {
        Some('x') => {
            let hex: String = chars[i + 1..].iter().take(2).collect();
            assert_eq!(hex.len(), 2, "bad \\x escape in pattern '{pattern}'");
            let v = u32::from_str_radix(&hex, 16)
                .unwrap_or_else(|_| panic!("bad \\x escape in pattern '{pattern}'"));
            (char::from_u32(v).expect("valid \\x escape"), i + 3)
        }
        Some('n') => ('\n', i + 1),
        Some('t') => ('\t', i + 1),
        Some('r') => ('\r', i + 1),
        Some('0') => ('\0', i + 1),
        Some(&c) => (c, i + 1),
        None => panic!("dangling backslash in pattern '{pattern}'"),
    }
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern '{pattern}'"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("quantifier min"),
                    hi.parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "bad quantifier in pattern '{pattern}'");
            (min, max, close + 1)
        }
        Some('*') => (0, UNQUANTIFIED_MAX, i + 1),
        Some('+') => (1, UNQUANTIFIED_MAX, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_generate_within_spec() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9\\x00]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '\0'));
            let t = generate_from_pattern(".{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            let u = generate_from_pattern("u[0-9]{3}", &mut rng);
            assert_eq!(u.len(), 4);
            assert!(u.starts_with('u'));
        }
    }
}
