//! Config, error type, and the deterministic generation RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Subset of proptest's config: only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property (no shrinking in the shim).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Real proptest distinguishes rejects from failures; the shim retries
    /// filters internally, so rejects only appear via explicit use.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The generation RNG, seeded from the test name so every test gets a
/// distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
