//! `any::<T>()` — default strategies for primitive types.
//!
//! Integer generation is edge-biased: roughly 1 in 8 draws picks from
//! {0, 1, -1, MIN, MAX} so boundary behavior (wrapping, sign flips, empty
//! strings) gets exercised without real proptest's shrinking machinery.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// `wrapping_sub(1)` gives -1 for signed and MAX for unsigned — both are
// interesting edges, so a single macro covers every integer type.
macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                if rng.gen_range(0..8u32) == 0 {
                    let edges: [$t; 5] = [0, 1, (0 as $t).wrapping_sub(1), <$t>::MIN, <$t>::MAX];
                    edges[rng.gen_range(0..edges.len())]
                } else {
                    rng.gen::<$t>()
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.gen_range(0..8u32) {
            0 => {
                let edges = [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                ];
                edges[rng.gen_range(0..edges.len())]
            }
            // full bit-pattern soup (may be NaN/subnormal)
            1 => f64::from_bits(rng.gen::<u64>()),
            _ => (rng.gen::<f64>() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.gen_range(0..4u32) == 0 {
            char::from_u32(rng.gen_range(0..0xD800u32)).unwrap_or('?')
        } else {
            rng.gen_range(0x20u32..0x7F) as u8 as char
        }
    }
}
