//! `sample::Index` — a length-agnostic index, resolved against a collection
//! size at use time.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// An index uniformly distributed in `0..len` (panics on `len == 0`,
    /// matching real proptest).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.gen::<u64>())
    }
}
