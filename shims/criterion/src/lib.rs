//! Offline drop-in subset of the `criterion` API.
//!
//! The workspace vendors this shim so builds need no network access. It
//! runs each benchmark for a short, fixed wall-clock budget and prints
//! mean ns/iter — no statistics, plots, or baselines. Set
//! `CRITERION_QUICK=1` to shrink the budget further (CI smoke runs).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_budget() -> Duration {
    if std::env::var("CRITERION_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

/// Batch sizing hints (accepted, ignored — every batch is size 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Default)]
pub struct Bencher {
    /// (iterations, total busy time) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = measure_budget();
        // warm-up
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget = measure_budget();
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), busy));
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), _size);
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.result {
            Some((iters, busy)) => {
                let per_iter = busy.as_nanos() as f64 / iters as f64;
                println!("{name: <45} {per_iter: >12.1} ns/iter   ({iters} iters)");
            }
            None => println!("{name: <45} (no measurement recorded)"),
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
