//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The workspace vendors this shim so builds need no network access. It
//! provides exactly the surface the repo uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}` over
//! the primitive numeric types. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, seed-stable across platforms and runs (which
//! the simulation's reproducibility tests require), and statistically far
//! better than the tests need.

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Marker for types [`Rng::gen_range`] can produce. Mirrors rand's
/// `SampleUniform`; its real job here is steering type inference (e.g.
/// `i64 + rng.gen_range(0..1000)` must not consider `T = &i64`).
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(impl SampleUniform for $t {})*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Ranges usable with [`Rng::gen_range`] producing `T`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing convenience trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..500);
            assert!((10..500).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(5.0..120.0);
            assert!((5.0..120.0).contains(&f));
            let n = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
