//! # piql-audit
//!
//! The static workload auditor: a compile-time analysis pass over PIQL
//! plans that proves (or refutes) each statement's scale-independence and
//! SLO feasibility *before* anything touches storage.
//!
//! For every statement the auditor produces a **bound-derivation tree**
//! ([`tree::DerivationNode`]): one node per physical operator, annotated
//! with its static op-count bounds, the [`piql_core::plan::Provenance`]
//! that justifies each bound (which `LIMIT`/`PAGINATE` clause, primary
//! key, `CARDINALITY LIMIT` declaration, or parameter `MAX`), and — given
//! a model snapshot — the operator term that dominates the predicted p99.
//! Findings surface as rustc-style [`audit::Diagnostic`]s with concrete
//! rewrite suggestions.
//!
//! Consumed three ways:
//! * the server's `explain` protocol verb (JSON v2 and binary v3);
//! * the offline CLI (`cargo run -p piql-audit -- workload.piql
//!   --slo-ms 50`), which audits a whole workload file against a
//!   synthetic or exported model snapshot and exits non-zero on any
//!   unbounded or SLO-infeasible statement — the CI gate;
//! * the admission registry, whose rejections reuse the same structured
//!   diagnostics.

pub mod audit;
pub mod json;
pub mod model;
pub mod report;
pub mod tree;
pub mod workload;

pub use audit::{
    audit_compiled, audit_statement, Diagnostic, Outcome, Severity, SloSpec, StatementAudit,
};
pub use json::JsonVal;
pub use model::LinearModelSpec;
pub use report::{audit_workload, WorkloadReport};
pub use tree::{derivation_tree, BoundInfo, CostTerm, DerivationNode, NodeBounds};
pub use workload::{parse_workload, parse_workload_with, Workload, WorkloadEntry, WorkloadError};
