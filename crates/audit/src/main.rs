//! The offline workload auditor CLI — a CI gate for PIQL workloads.
//!
//! ```text
//! piql-audit <workload.piql> [--slo-ms N] [--confidence F]
//!            [--model linear:base_us,per_row_us[,intervals]]
//!            [--json <path>] [--quiet]
//! ```
//!
//! Exit codes: `0` — every statement is bounded and SLO-feasible;
//! `1` — at least one statement is unbounded, SLO-infeasible, or invalid;
//! `2` — usage or workload-file errors.

use piql_audit::{audit_workload, parse_workload_with, LinearModelSpec, SloSpec, WorkloadReport};
use piql_predict::SloPredictor;
use std::process::ExitCode;

struct Args {
    workload: String,
    slo: SloSpec,
    model: LinearModelSpec,
    json: Option<String>,
    quiet: bool,
}

fn usage() -> String {
    "usage: piql-audit <workload.piql> [--slo-ms N] [--confidence F] \
     [--model linear:base_us,per_row_us[,intervals]] [--json <path>|-] [--quiet]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut workload = None;
    let mut slo = SloSpec::default();
    let mut model = LinearModelSpec::default();
    let mut json = None;
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slo-ms" => {
                let v = it.next().ok_or("--slo-ms needs a value")?;
                slo.slo_ms = v
                    .parse::<f64>()
                    .ok()
                    .filter(|x| x.is_finite() && *x > 0.0)
                    .ok_or_else(|| format!("bad --slo-ms value `{v}`"))?;
            }
            "--confidence" => {
                let v = it.next().ok_or("--confidence needs a value")?;
                slo.confidence = v
                    .parse::<f64>()
                    .ok()
                    .filter(|x| (0.0..=1.0).contains(x))
                    .ok_or_else(|| format!("bad --confidence value `{v}`"))?;
            }
            "--model" => {
                let v = it.next().ok_or("--model needs a spec")?;
                model = LinearModelSpec::parse(v)?;
            }
            "--json" => {
                json = Some(it.next().ok_or("--json needs a path (or `-`)")?.clone());
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            other => {
                if workload.replace(other.to_string()).is_some() {
                    return Err(format!("more than one workload file\n{}", usage()));
                }
            }
        }
    }
    Ok(Args {
        workload: workload.ok_or_else(usage)?,
        slo,
        model,
        json,
        quiet,
    })
}

fn run(args: &Args) -> Result<WorkloadReport, String> {
    let text = std::fs::read_to_string(&args.workload)
        .map_err(|e| format!("cannot read {}: {e}", args.workload))?;
    let workload =
        parse_workload_with(&text, args.slo).map_err(|e| format!("{}: {e}", args.workload))?;
    let predictor = SloPredictor::new(args.model.build());
    Ok(audit_workload(&args.workload, &workload, &predictor))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("piql-audit: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.json {
        let json = report.to_json().to_string();
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("piql-audit: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if !args.quiet {
        print!("{}", report.render_human());
    }
    if report.gating().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
