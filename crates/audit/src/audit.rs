//! Statement auditing: compile, derive, predict, diagnose.
//!
//! One audited statement yields a [`StatementAudit`]: the query class and
//! its derivation, the bound-derivation tree ([`crate::tree`]), the SLO
//! prediction, and a list of rustc-style [`Diagnostic`]s. Every error or
//! warning names the offending operator, the cost term that dominates the
//! prediction, and at least one concrete rewrite suggestion — the same
//! contract the Performance Insight Assistant's `InsightReport` makes for
//! rejected queries, extended to admitted-but-infeasible ones.

use crate::json::JsonVal;
use crate::tree::{derivation_tree, DerivationNode};
use piql_core::ast::{RowBound, SelectStmt};
use piql_core::catalog::Catalog;
use piql_core::opt::{Compiled, InsightReport, OptError, Optimizer};
use piql_core::parser::parse_select;
use piql_predict::{Heatmap, SloPredictor, ALPHA_GRID};

/// The SLO a statement is audited against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// p99 target, milliseconds.
    pub slo_ms: f64,
    /// Required fraction of intervals whose p99 meets the target.
    pub confidence: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        // matches the server's default admission SloConfig
        SloSpec {
            slo_ms: 100.0,
            confidence: 0.9,
        }
    }
}

/// Diagnostic severity, rustc-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
    Help,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Help => "help",
        }
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable machine-readable code (`unbounded-operator`,
    /// `slo-infeasible`, `slo-marginal`, `cardinality-dependence`,
    /// `parse-error`).
    pub code: String,
    pub message: String,
    /// The offending operator, e.g. `IndexScan(thoughts(primary))`.
    pub operator: Option<String>,
    /// The cost term dominating the prediction, e.g.
    /// `SortedIndexJoin(αc=100, αj=10, β=160) — 78% of predicted mean`.
    pub dominant_term: Option<String>,
    /// The source clause the diagnostic points at (`LIMIT 500`,
    /// `CARDINALITY LIMIT 100 (owner) ON subs`, ...).
    pub clause: Option<String>,
    /// Line of the statement in its workload file (0 = unknown).
    pub line: usize,
    /// Concrete rewrite suggestions.
    pub suggestions: Vec<String>,
}

impl Diagnostic {
    pub fn to_json(&self) -> JsonVal {
        let opt = |o: &Option<String>| match o {
            Some(s) => JsonVal::str(s),
            None => JsonVal::Null,
        };
        JsonVal::Obj(vec![
            ("severity".into(), JsonVal::str(self.severity.label())),
            ("code".into(), JsonVal::str(&self.code)),
            ("message".into(), JsonVal::str(&self.message)),
            ("operator".into(), opt(&self.operator)),
            ("dominant_term".into(), opt(&self.dominant_term)),
            ("clause".into(), opt(&self.clause)),
            ("line".into(), JsonVal::Int(self.line as u64)),
            (
                "suggestions".into(),
                JsonVal::Arr(self.suggestions.iter().map(JsonVal::str).collect()),
            ),
        ])
    }
}

/// The audit verdict for one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Scale-independent and predicted to meet the SLO with headroom.
    Feasible { predicted_p99_ms: f64 },
    /// Meets the SLO but with less than 20% headroom.
    Marginal { predicted_p99_ms: f64 },
    /// Scale-independent but predicted to violate the SLO.
    Infeasible { predicted_p99_ms: f64 },
    /// No scale-independent plan exists.
    Unbounded,
    /// The statement did not parse or bind.
    Invalid { error: String },
}

impl Outcome {
    /// Whether this statement fails the CI gate.
    pub fn gating(&self) -> bool {
        matches!(
            self,
            Outcome::Infeasible { .. } | Outcome::Unbounded | Outcome::Invalid { .. }
        )
    }

    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Feasible { .. } => "feasible",
            Outcome::Marginal { .. } => "marginal",
            Outcome::Infeasible { .. } => "infeasible",
            Outcome::Unbounded => "unbounded",
            Outcome::Invalid { .. } => "invalid",
        }
    }

    pub fn predicted_p99_ms(&self) -> Option<f64> {
        match self {
            Outcome::Feasible { predicted_p99_ms }
            | Outcome::Marginal { predicted_p99_ms }
            | Outcome::Infeasible { predicted_p99_ms } => Some(*predicted_p99_ms),
            _ => None,
        }
    }
}

/// The full audit of one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StatementAudit {
    pub name: String,
    pub sql: String,
    /// Line of the statement in its workload file (0 = unknown).
    pub line: usize,
    pub slo: SloSpec,
    pub outcome: Outcome,
    /// `Class II (bounded)` + the evidence that assigned it.
    pub class: Option<String>,
    pub class_derivation: Option<String>,
    pub tree: Option<DerivationNode>,
    pub diagnostics: Vec<Diagnostic>,
}

impl StatementAudit {
    pub fn to_json(&self) -> JsonVal {
        let opt = |o: &Option<String>| match o {
            Some(s) => JsonVal::str(s),
            None => JsonVal::Null,
        };
        let mut fields = vec![
            ("name".into(), JsonVal::str(&self.name)),
            ("sql".into(), JsonVal::str(&self.sql)),
            ("line".into(), JsonVal::Int(self.line as u64)),
            ("slo_ms".into(), JsonVal::ms(self.slo.slo_ms)),
            ("confidence".into(), JsonVal::ms(self.slo.confidence)),
            ("outcome".into(), JsonVal::str(self.outcome.label())),
        ];
        fields.push((
            "predicted_p99_ms".into(),
            match self.outcome.predicted_p99_ms() {
                Some(p) => JsonVal::ms(p),
                None => JsonVal::Null,
            },
        ));
        if let Outcome::Invalid { error } = &self.outcome {
            fields.push(("error".into(), JsonVal::str(error)));
        }
        fields.push(("class".into(), opt(&self.class)));
        fields.push(("class_derivation".into(), opt(&self.class_derivation)));
        fields.push((
            "derivation_tree".into(),
            match &self.tree {
                Some(t) => t.to_json(),
                None => JsonVal::Null,
            },
        ));
        fields.push((
            "diagnostics".into(),
            JsonVal::Arr(self.diagnostics.iter().map(|d| d.to_json()).collect()),
        ));
        JsonVal::Obj(fields)
    }
}

/// Parse and audit one PIQL SELECT against a catalog, model snapshot, and
/// SLO. Never touches storage; never panics on malformed input (errors
/// become `Outcome::Invalid` / `Outcome::Unbounded` with diagnostics).
pub fn audit_statement(
    catalog: &Catalog,
    predictor: &SloPredictor,
    name: &str,
    sql: &str,
    slo: SloSpec,
) -> StatementAudit {
    let mut audit = StatementAudit {
        name: name.to_string(),
        sql: sql.to_string(),
        line: 0,
        slo,
        outcome: Outcome::Invalid {
            error: String::new(),
        },
        class: None,
        class_derivation: None,
        tree: None,
        diagnostics: Vec::new(),
    };

    let stmt = match parse_select(sql) {
        Ok(s) => s,
        Err(e) => {
            audit.outcome = Outcome::Invalid {
                error: e.to_string(),
            };
            audit.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: "parse-error".into(),
                message: format!("statement `{name}` does not parse: {e}"),
                operator: None,
                dominant_term: None,
                clause: None,
                line: 0,
                suggestions: vec!["fix the statement syntax before auditing".into()],
            });
            return audit;
        }
    };

    let optimizer = Optimizer::scale_independent();
    let compiled = match optimizer.compile(catalog, &stmt) {
        Ok(c) => c,
        Err(OptError::NotScaleIndependent(report)) => {
            audit.outcome = Outcome::Unbounded;
            audit.diagnostics.push(unbounded_diagnostic(name, &report));
            return audit;
        }
        Err(e) => {
            audit.outcome = Outcome::Invalid {
                error: e.to_string(),
            };
            audit.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                code: "bind-error".into(),
                message: format!("statement `{name}` does not compile: {e}"),
                operator: None,
                dominant_term: None,
                clause: None,
                line: 0,
                suggestions: vec!["check table and column names against the schema".into()],
            });
            return audit;
        }
    };

    finish_compiled(
        &mut audit,
        predictor,
        &compiled,
        Some((catalog, &optimizer, &stmt)),
    );
    audit
}

/// Audit an already-compiled plan (the server's `explain` path for
/// prepared statements). Without the original statement and catalog, the
/// feasible-LIMIT probe is skipped; the diagnostics fall back to
/// clause-level suggestions.
pub fn audit_compiled(
    predictor: &SloPredictor,
    name: &str,
    sql: &str,
    compiled: &Compiled,
    slo: SloSpec,
) -> StatementAudit {
    let mut audit = StatementAudit {
        name: name.to_string(),
        sql: sql.to_string(),
        line: 0,
        slo,
        outcome: Outcome::Invalid {
            error: String::new(),
        },
        class: None,
        class_derivation: None,
        tree: None,
        diagnostics: Vec::new(),
    };
    finish_compiled(&mut audit, predictor, compiled, None);
    audit
}

fn finish_compiled(
    audit: &mut StatementAudit,
    predictor: &SloPredictor,
    compiled: &Compiled,
    probe: Option<(&Catalog, &Optimizer, &SelectStmt)>,
) {
    let slo = audit.slo;
    audit.class = Some(compiled.class.to_string());
    audit.class_derivation = Some(compiled.class.derivation().to_string());

    let attributions = predictor.attribute(compiled);
    let tree = derivation_tree(compiled, &attributions);
    let prediction = predictor.predict(compiled);
    let p99 = prediction.max_p99_ms;

    let (operator, dominant_term, clause) = describe_dominant(&tree);

    if !prediction.meets_slo(slo.slo_ms, slo.confidence) {
        let feasible_limit = probe.and_then(|(catalog, optimizer, stmt)| {
            suggest_feasible_limit(predictor, catalog, optimizer, stmt, slo)
        });
        let mut suggestions = Vec::new();
        if let Some((limit, probe_p99)) = feasible_limit {
            let verb = if compiled.page_size.is_some() {
                "PAGINATE"
            } else {
                "LIMIT"
            };
            suggestions.push(format!(
                "the advisor's feasible frontier suggests {verb} ≤ {limit} \
                 (predicted p99 {probe_p99:.1} ms) for the {:.0} ms SLO",
                slo.slo_ms
            ));
        }
        if let Some(c) = &clause {
            suggestions.push(format!("reduce the bound declared by `{c}`"));
        }
        if suggestions.is_empty() {
            suggestions.push(format!(
                "no smaller result bound meets the SLO; raise the SLO above \
                 {p99:.1} ms or reduce the declared cardinality or row size"
            ));
        }
        audit.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code: "slo-infeasible".into(),
            message: format!(
                "statement `{}` is predicted to violate its {:.0} ms SLO: \
                 max interval p99 = {p99:.1} ms (violation risk {:.0}%); \
                 {operator} dominates via {dominant_term}",
                audit.name,
                slo.slo_ms,
                prediction.violation_risk(slo.slo_ms) * 100.0,
            ),
            operator: Some(operator),
            dominant_term: Some(dominant_term),
            clause,
            line: 0,
            suggestions,
        });
        audit.outcome = Outcome::Infeasible {
            predicted_p99_ms: p99,
        };
    } else if p99 > 0.8 * slo.slo_ms {
        let mut suggestions = vec![format!(
            "only {:.0}% SLO headroom remains; model drift or a volatile \
             interval will flag this statement",
            (1.0 - p99 / slo.slo_ms) * 100.0
        )];
        if let Some(c) = &clause {
            suggestions.push(format!(
                "reduce the bound declared by `{c}` to regain headroom"
            ));
        }
        audit.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            code: "slo-marginal".into(),
            message: format!(
                "statement `{}` meets its {:.0} ms SLO marginally: predicted \
                 p99 {p99:.1} ms; {operator} dominates via {dominant_term}",
                audit.name, slo.slo_ms,
            ),
            operator: Some(operator),
            dominant_term: Some(dominant_term),
            clause,
            line: 0,
            suggestions,
        });
        audit.outcome = Outcome::Marginal {
            predicted_p99_ms: p99,
        };
    } else {
        // feasible; attach a help note when the proof leans on a declared
        // cardinality the schema owner could change
        if let Some(node) = cardinality_node(&tree) {
            let c = node.bound.as_ref().map(|b| b.source_clause.clone());
            audit.diagnostics.push(Diagnostic {
                severity: Severity::Help,
                code: "cardinality-dependence".into(),
                message: format!(
                    "statement `{}` is bounded only by a declared relationship \
                     cardinality at {}; the prediction is dominated by \
                     {dominant_term}",
                    audit.name,
                    node.describe(),
                ),
                operator: Some(node.describe()),
                dominant_term: Some(dominant_term),
                clause: c.clone(),
                line: 0,
                suggestions: vec![format!(
                    "re-audit after changing `{}`: the admission decision \
                     scales with it",
                    c.unwrap_or_else(|| "the cardinality declaration".into())
                )],
            });
        }
        audit.outcome = Outcome::Feasible {
            predicted_p99_ms: p99,
        };
    }
    audit.tree = Some(tree);
}

/// Name the dominant node, its dominating cost term, and the clause its
/// bound rests on. Falls back to the root remote operator when the model
/// snapshot has no data.
fn describe_dominant(tree: &DerivationNode) -> (String, String, Option<String>) {
    let node = tree.dominant_node().or_else(|| {
        // no model data: point at the outermost remote operator
        let mut last = None;
        tree.walk(&mut |n| {
            if n.remote {
                last = Some(n);
            }
        });
        last
    });
    match node {
        Some(n) => {
            let term = n
                .cost_terms
                .iter()
                .max_by(|a, b| a.mean_ms.total_cmp(&b.mean_ms))
                .map(|t| {
                    format!(
                        "{} — {:.0}% of predicted mean",
                        t.describe(),
                        t.share * 100.0
                    )
                })
                .unwrap_or_else(|| format!("its {} term (no model data)", n.operator));
            let clause = n.bound.as_ref().map(|b| b.source_clause.clone());
            (n.describe(), term, clause)
        }
        None => (
            "the plan's local pipeline".to_string(),
            "no remote operator term".to_string(),
            None,
        ),
    }
}

/// The first remote node whose bound rests on a cardinality declaration.
fn cardinality_node(tree: &DerivationNode) -> Option<&DerivationNode> {
    let mut found = None;
    tree.walk(&mut |n| {
        if found.is_none() {
            if let Some(b) = &n.bound {
                if matches!(
                    b.kind.as_str(),
                    "cardinality" | "token-cardinality" | "param-max"
                ) && n.remote
                {
                    found = Some(n);
                }
            }
        }
    });
    found
}

/// Probe smaller LIMIT/PAGINATE bounds with the §6.4 heatmap advisor:
/// the largest bound whose prediction still meets the SLO, with its p99.
/// Mirrors the server registry's degradation probe, as a suggestion
/// instead of an admission decision.
fn suggest_feasible_limit(
    predictor: &SloPredictor,
    catalog: &Catalog,
    optimizer: &Optimizer,
    stmt: &SelectStmt,
    slo: SloSpec,
) -> Option<(u64, f64)> {
    let below = stmt.bound?.count();
    let mut candidates: Vec<u64> = ALPHA_GRID
        .iter()
        .map(|&a| a as u64)
        .filter(|&a| a < below)
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    if candidates.is_empty() {
        return None;
    }
    // probe compiles can only fail on optimizer bugs (a smaller bound of a
    // query that already compiled); drop the probe rather than panic
    let mut compiled_ok = true;
    let heatmap = Heatmap::build(
        predictor,
        "result limit",
        "-",
        candidates,
        vec![0],
        |limit, _| match optimizer.compile(catalog, &rebound(stmt, limit)) {
            Ok(c) => c,
            Err(_) => {
                compiled_ok = false;
                // a harmless stand-in; the flag discards the whole probe
                optimizer
                    .compile(catalog, stmt)
                    .expect("statement compiled before probing")
            }
        },
    );
    if !compiled_ok {
        return None;
    }
    let limit = heatmap.suggest_row_limit(0, slo.slo_ms)?;
    let probe = predictor
        .predict(&optimizer.compile(catalog, &rebound(stmt, limit)).ok()?)
        .max_p99_ms;
    Some((limit, probe))
}

/// `stmt` with its LIMIT/PAGINATE count swapped (kind preserved).
fn rebound(stmt: &SelectStmt, limit: u64) -> SelectStmt {
    let mut s = stmt.clone();
    s.bound = Some(match stmt.bound {
        Some(RowBound::Paginate(_)) => RowBound::Paginate(limit),
        _ => RowBound::Limit(limit),
    });
    s
}

/// The diagnostic for a not-scale-independent rejection: the unbounded
/// operator term dominates every SLO, so it is named as the dominating
/// term, and the Insight Assistant's suggestions carry over verbatim.
fn unbounded_diagnostic(name: &str, report: &InsightReport) -> Diagnostic {
    let operator = match &report.relation {
        Some(rel) => format!("the scan of `{rel}`"),
        None => "the unbounded plan segment".to_string(),
    };
    let mut suggestions: Vec<String> = report.suggestions.iter().map(|s| s.to_string()).collect();
    if suggestions.is_empty() {
        suggestions.push("add a LIMIT or PAGINATE clause to bound the result".into());
    }
    Diagnostic {
        severity: Severity::Error,
        code: "unbounded-operator".into(),
        message: format!(
            "statement `{name}` is not scale-independent: {}; {operator} has \
             no static bound, so its unbounded operator term dominates the \
             predicted latency at scale",
            report.problem.trim_end_matches('.')
        ),
        operator: Some(operator),
        dominant_term: Some("the unbounded operator term (α grows with the database)".into()),
        clause: report.relation.as_ref().map(|r| format!("FROM {r}")),
        line: 0,
        suggestions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearModelSpec;
    use piql_core::catalog::TableDef;
    use piql_core::value::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_table(
            TableDef::builder("subs")
                .column("owner", DataType::Varchar(32))
                .column("target", DataType::Varchar(32))
                .primary_key(&["owner", "target"])
                .cardinality_limit(100, &["owner"])
                .build(),
        )
        .unwrap();
        cat.create_table(
            TableDef::builder("thoughts")
                .column("owner", DataType::Varchar(32))
                .column("ts", DataType::Timestamp)
                .primary_key(&["owner", "ts"])
                .build(),
        )
        .unwrap();
        cat
    }

    fn predictor() -> SloPredictor {
        SloPredictor::new(LinearModelSpec::default().build())
    }

    const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subs s JOIN thoughts \
         WHERE thoughts.owner = s.target AND s.owner = <u> \
         ORDER BY thoughts.ts DESC LIMIT 10";

    #[test]
    fn feasible_statement_audits_clean() {
        let slo = SloSpec {
            slo_ms: 500.0,
            confidence: 0.9,
        };
        let audit = audit_statement(&catalog(), &predictor(), "stream", THOUGHTSTREAM, slo);
        assert!(
            matches!(audit.outcome, Outcome::Feasible { .. }),
            "{:?}",
            audit.outcome
        );
        assert!(!audit.outcome.gating());
        assert_eq!(audit.class.as_deref(), Some("Class II (bounded)"));
        let tree = audit.tree.as_ref().expect("tree present");
        assert!(
            tree.dominant_node().is_some(),
            "model data attributes a term"
        );
        // the Class II help note still names operator + term + suggestion
        let help = audit
            .diagnostics
            .iter()
            .find(|d| d.code == "cardinality-dependence")
            .expect("cardinality help note");
        assert!(help.operator.is_some());
        assert!(help.dominant_term.is_some());
        assert!(!help.suggestions.is_empty());
    }

    #[test]
    fn infeasible_statement_names_term_and_suggests_limit() {
        let slo = SloSpec {
            slo_ms: 50.0,
            confidence: 0.9,
        };
        let audit = audit_statement(&catalog(), &predictor(), "stream", THOUGHTSTREAM, slo);
        assert!(
            matches!(audit.outcome, Outcome::Infeasible { .. }),
            "{:?}",
            audit.outcome
        );
        assert!(audit.outcome.gating());
        let d = &audit.diagnostics[0];
        assert_eq!(d.code, "slo-infeasible");
        assert_eq!(d.severity, Severity::Error);
        let op = d.operator.as_ref().expect("names the operator");
        assert!(
            op.contains("SortedIndexJoin") || op.contains("IndexScan"),
            "{op}"
        );
        let term = d.dominant_term.as_ref().expect("names the dominating term");
        assert!(term.contains("αc="), "{term}");
        assert!(term.contains("% of predicted mean"), "{term}");
        assert!(!d.suggestions.is_empty());
    }

    #[test]
    fn unbounded_statement_carries_insight_suggestions() {
        let audit = audit_statement(
            &catalog(),
            &predictor(),
            "all",
            "SELECT * FROM thoughts WHERE owner = <u>",
            SloSpec::default(),
        );
        assert_eq!(audit.outcome, Outcome::Unbounded);
        assert!(audit.outcome.gating());
        let d = &audit.diagnostics[0];
        assert_eq!(d.code, "unbounded-operator");
        assert!(d.operator.is_some());
        assert!(d.dominant_term.is_some());
        assert!(
            d.suggestions
                .iter()
                .any(|s| s.contains("CARDINALITY") || s.contains("LIMIT")),
            "{:?}",
            d.suggestions
        );
    }

    #[test]
    fn parse_error_is_invalid_not_panic() {
        let audit = audit_statement(
            &catalog(),
            &predictor(),
            "junk",
            "SELEKT nonsense !!!",
            SloSpec::default(),
        );
        assert!(matches!(audit.outcome, Outcome::Invalid { .. }));
        assert!(audit.outcome.gating());
    }

    #[test]
    fn json_report_round_trips_key_fields() {
        let audit = audit_statement(
            &catalog(),
            &predictor(),
            "stream",
            THOUGHTSTREAM,
            SloSpec {
                slo_ms: 50.0,
                confidence: 0.9,
            },
        );
        let json = audit.to_json().to_string();
        for needle in [
            r#""outcome":"infeasible""#,
            r#""code":"slo-infeasible""#,
            r#""derivation_tree""#,
            r#""source_clause""#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
