//! The workload file format the offline auditor consumes.
//!
//! A `.piql` workload is the schema plus every statement an application
//! ships, with declared SLOs — enough to audit the whole workload without
//! touching storage:
//!
//! ```text
//! -- comments run to end of line
//! SLO 100ms CONFIDENCE 0.9          -- default for following statements
//!
//! CREATE TABLE subs (owner VARCHAR(32), target VARCHAR(32),
//!   PRIMARY KEY (owner, target), CARDINALITY LIMIT 100 (owner));
//!
//! STATEMENT thoughtstream SLO 50ms:
//! SELECT * FROM subs WHERE owner = <u>;
//!
//! SELECT * FROM subs WHERE owner = <u> LIMIT 10;   -- auto-named stmt2
//! ```
//!
//! `CREATE TABLE` / `CREATE INDEX` statements build a pure [`Catalog`]
//! (mirroring the engine's DDL path, minus storage); `SELECT` statements
//! become audit entries. Statements end at `;` outside string literals and
//! may span lines.

use crate::audit::SloSpec;
use piql_core::ast::Statement;
use piql_core::catalog::{Catalog, IndexDef, IndexKeyPart, TableDef};
use piql_core::parser::parse;
use std::fmt;

/// One auditable SELECT from the workload file.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    pub name: String,
    pub sql: String,
    /// 1-based line where the statement starts.
    pub line: usize,
    pub slo: SloSpec,
}

/// A parsed workload: the schema it declares and the statements to audit.
#[derive(Debug, Clone)]
pub struct Workload {
    pub catalog: Catalog,
    pub entries: Vec<WorkloadEntry>,
    /// Number of DDL statements applied to the catalog.
    pub ddl_count: usize,
}

/// A workload file error, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WorkloadError {}

fn err(line: usize, message: impl Into<String>) -> WorkloadError {
    WorkloadError {
        line,
        message: message.into(),
    }
}

/// Parse a workload file with the stock default SLO.
pub fn parse_workload(text: &str) -> Result<Workload, WorkloadError> {
    parse_workload_with(text, SloSpec::default())
}

/// Parse a workload file. `initial_slo` is the default applied to
/// statements until the file's first `SLO` directive (the CLI's
/// `--slo-ms` / `--confidence` flags feed in here).
pub fn parse_workload_with(text: &str, initial_slo: SloSpec) -> Result<Workload, WorkloadError> {
    let mut catalog = Catalog::new();
    let mut entries: Vec<WorkloadEntry> = Vec::new();
    let mut ddl_count = 0usize;
    let mut default_slo = initial_slo;

    let mut buffer = String::new();
    let mut buffer_line = 0usize;
    // header captured from a `STATEMENT name [SLO ...]:` prefix
    let mut pending: Option<(String, Option<SloSpec>)> = None;
    let mut auto_name = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let mut line = strip_comment(raw).trim_end().to_string();

        if buffer.trim().is_empty() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = keyword(trimmed, "SLO") {
                default_slo = parse_slo(rest.trim_end_matches(';').trim(), lineno, default_slo)?;
                continue;
            }
            if let Some(rest) = keyword(trimmed, "STATEMENT") {
                let colon = rest
                    .find(':')
                    .ok_or_else(|| err(lineno, "STATEMENT header needs `:` on the same line"))?;
                let header = rest[..colon].trim();
                let mut parts = header.splitn(2, char::is_whitespace);
                let name = parts
                    .next()
                    .filter(|n| !n.is_empty())
                    .ok_or_else(|| err(lineno, "STATEMENT header needs a name"))?
                    .to_string();
                let slo = match parts.next().map(str::trim).filter(|s| !s.is_empty()) {
                    Some(spec) => {
                        let rest = keyword(spec, "SLO").ok_or_else(|| {
                            err(lineno, format!("unexpected STATEMENT attribute `{spec}`"))
                        })?;
                        Some(parse_slo(rest.trim(), lineno, default_slo)?)
                    }
                    None => None,
                };
                pending = Some((name, slo));
                line = rest[colon + 1..].to_string();
                if line.trim().is_empty() {
                    buffer_line = lineno; // statement begins on a later line
                    buffer.push(' '); // mark the buffer as started
                    continue;
                }
            }
            buffer_line = lineno;
        }

        buffer.push_str(&line);
        buffer.push('\n');

        // complete any semicolon-terminated statements now in the buffer
        while let Some(pos) = semicolon_outside_strings(&buffer) {
            let chunk = buffer[..pos].trim().to_string();
            buffer = buffer[pos + 1..].to_string();
            if !chunk.is_empty() {
                handle_chunk(
                    &chunk,
                    buffer_line,
                    &mut catalog,
                    &mut entries,
                    &mut ddl_count,
                    &mut pending,
                    &mut auto_name,
                    default_slo,
                )?;
            }
            buffer_line = lineno;
        }
    }

    let tail = buffer.trim().to_string();
    if !tail.is_empty() {
        handle_chunk(
            &tail,
            buffer_line,
            &mut catalog,
            &mut entries,
            &mut ddl_count,
            &mut pending,
            &mut auto_name,
            default_slo,
        )?;
    }

    Ok(Workload {
        catalog,
        entries,
        ddl_count,
    })
}

#[allow(clippy::too_many_arguments)]
fn handle_chunk(
    chunk: &str,
    line: usize,
    catalog: &mut Catalog,
    entries: &mut Vec<WorkloadEntry>,
    ddl_count: &mut usize,
    pending: &mut Option<(String, Option<SloSpec>)>,
    auto_name: &mut usize,
    default_slo: SloSpec,
) -> Result<(), WorkloadError> {
    let first = chunk
        .split_whitespace()
        .next()
        .unwrap_or_default()
        .to_ascii_uppercase();
    match first.as_str() {
        "CREATE" => {
            if pending.is_some() {
                return Err(err(line, "STATEMENT header must precede a SELECT, not DDL"));
            }
            let stmt = parse(chunk).map_err(|e| err(line, e.to_string()))?;
            apply_ddl(catalog, stmt, line)?;
            *ddl_count += 1;
            Ok(())
        }
        "SELECT" => {
            let (name, slo) = match pending.take() {
                Some((name, slo)) => (name, slo.unwrap_or(default_slo)),
                None => {
                    *auto_name += 1;
                    (format!("stmt{auto_name}"), default_slo)
                }
            };
            if entries.iter().any(|e| e.name == name) {
                return Err(err(line, format!("duplicate statement name `{name}`")));
            }
            entries.push(WorkloadEntry {
                name,
                sql: chunk.to_string(),
                line,
                slo,
            });
            Ok(())
        }
        other => Err(err(
            line,
            format!(
                "unsupported workload statement starting with `{other}` \
                 (expected CREATE TABLE, CREATE INDEX, or SELECT)"
            ),
        )),
    }
}

/// Apply DDL to a pure catalog — the engine's `execute_ddl` minus storage
/// side effects, including the auto-created cardinality enforcement
/// indexes so compilation sees the same index set a live engine would.
fn apply_ddl(catalog: &mut Catalog, stmt: Statement, line: usize) -> Result<(), WorkloadError> {
    match stmt {
        Statement::CreateTable(stmt) => {
            let mut b = TableDef::builder(&stmt.name);
            for (name, ty, nullable) in &stmt.columns {
                b = if *nullable {
                    b.column(name.clone(), *ty)
                } else {
                    b.not_null_column(name.clone(), *ty)
                };
            }
            let mut def = b.build();
            def.primary_key = stmt.primary_key.clone();
            def.foreign_keys = stmt.foreign_keys.clone();
            def.cardinality_constraints = stmt.cardinality_constraints.clone();
            let id = catalog
                .create_table(def)
                .map_err(|e| err(line, e.to_string()))?;
            let table = catalog.table_by_id(id).clone();
            for cc in &table.cardinality_constraints {
                if let Some(col) = cc.token_column() {
                    let parts = vec![IndexKeyPart::token(col.to_string())];
                    let name = IndexDef::derived_name(&table, &parts);
                    catalog
                        .create_index(IndexDef::new(name, table.id, parts))
                        .map_err(|e| err(line, e.to_string()))?;
                    continue;
                }
                let pk_prefix_ok = cc.columns.len() <= table.primary_key.len()
                    && cc
                        .columns
                        .iter()
                        .zip(&table.primary_key)
                        .all(|(a, b)| a.eq_ignore_ascii_case(b));
                if !pk_prefix_ok {
                    let parts: Vec<IndexKeyPart> = cc
                        .columns
                        .iter()
                        .map(|c| IndexKeyPart::asc(c.clone()))
                        .collect();
                    let name = IndexDef::derived_name(&table, &parts);
                    catalog
                        .create_index(IndexDef::new(name, table.id, parts))
                        .map_err(|e| err(line, e.to_string()))?;
                }
            }
            Ok(())
        }
        Statement::CreateIndex(stmt) => {
            let table = catalog
                .table(&stmt.table)
                .ok_or_else(|| err(line, format!("unknown table `{}`", stmt.table)))?
                .clone();
            catalog
                .create_index(IndexDef::new(&stmt.name, table.id, stmt.parts.clone()))
                .map_err(|e| err(line, e.to_string()))?;
            Ok(())
        }
        _ => Err(err(line, "only CREATE TABLE / CREATE INDEX DDL supported")),
    }
}

/// `SLO <n>ms [CONFIDENCE <f>]`.
fn parse_slo(spec: &str, line: usize, base: SloSpec) -> Result<SloSpec, WorkloadError> {
    let mut out = base;
    let mut tokens = spec.split_whitespace().peekable();
    let ms = tokens
        .next()
        .ok_or_else(|| err(line, "SLO needs a value like `50ms`"))?;
    let num = ms
        .to_ascii_lowercase()
        .strip_suffix("ms")
        .and_then(|n| n.parse::<f64>().ok())
        .filter(|n| n.is_finite() && *n > 0.0)
        .ok_or_else(|| err(line, format!("bad SLO value `{ms}` (expected e.g. `50ms`)")))?;
    out.slo_ms = num;
    if let Some(tok) = tokens.next() {
        if !tok.eq_ignore_ascii_case("CONFIDENCE") {
            return Err(err(line, format!("unexpected SLO attribute `{tok}`")));
        }
        let c = tokens
            .next()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|c| (0.0..=1.0).contains(c))
            .ok_or_else(|| err(line, "CONFIDENCE needs a value in [0, 1]"))?;
        out.confidence = c;
    }
    if tokens.next().is_some() {
        return Err(err(line, format!("trailing tokens in SLO spec `{spec}`")));
    }
    Ok(out)
}

/// Case-insensitive keyword match at the start of `s`; returns the rest.
fn keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    if s.len() >= kw.len() && s[..kw.len()].eq_ignore_ascii_case(kw) {
        let rest = &s[kw.len()..];
        if rest.is_empty() || rest.starts_with(char::is_whitespace) {
            return Some(rest);
        }
    }
    None
}

/// Truncate a `--` comment, respecting single-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => in_string = !in_string,
            b'-' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Position of the first `;` outside single-quoted strings.
fn semicolon_outside_strings(s: &str) -> Option<usize> {
    let mut in_string = false;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'\'' => in_string = !in_string,
            b';' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORKLOAD: &str = r#"
-- the paper's thoughtstream schema
SLO 100ms CONFIDENCE 0.9

CREATE TABLE users (username VARCHAR(24), town VARCHAR(24),
  PRIMARY KEY (username));
CREATE TABLE subs (owner VARCHAR(24), target VARCHAR(24),
  PRIMARY KEY (owner, target), CARDINALITY LIMIT 100 (owner));

STATEMENT profile SLO 25ms:
SELECT * FROM users WHERE username = <u>;

SELECT * FROM subs WHERE owner = <u>; -- auto-named
"#;

    #[test]
    fn parses_schema_directives_and_statements() {
        let w = parse_workload(WORKLOAD).expect("parses");
        assert_eq!(w.ddl_count, 2);
        assert!(w.catalog.table("users").is_some());
        assert!(w.catalog.table("subs").is_some());
        assert_eq!(w.entries.len(), 2);
        assert_eq!(w.entries[0].name, "profile");
        assert_eq!(w.entries[0].slo.slo_ms, 25.0);
        assert_eq!(w.entries[0].slo.confidence, 0.9, "inherits default");
        assert_eq!(w.entries[1].name, "stmt1");
        assert_eq!(w.entries[1].slo.slo_ms, 100.0);
        assert!(w.entries[1].line > w.entries[0].line);
    }

    #[test]
    fn statement_may_follow_header_on_next_line() {
        let text = "CREATE TABLE t (a VARCHAR(8), PRIMARY KEY (a));\n\
                    STATEMENT one:\nSELECT *\nFROM t WHERE a = <x>;\n";
        let w = parse_workload(text).expect("parses");
        assert_eq!(w.entries.len(), 1);
        assert!(w.entries[0].sql.contains("FROM t"));
    }

    #[test]
    fn semicolons_in_strings_do_not_split() {
        let text = "CREATE TABLE t (a VARCHAR(8), PRIMARY KEY (a));\n\
                    SELECT * FROM t WHERE a = 'x;y' LIMIT 1;\n";
        let w = parse_workload(text).expect("parses");
        assert_eq!(w.entries.len(), 1);
        assert!(w.entries[0].sql.contains("'x;y'"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_workload("SLO nonsense\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_workload("\n\nDROP TABLE x;\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("DROP"), "{e}");
        let e = parse_workload("STATEMENT missing-colon\nSELECT 1;").unwrap_err();
        assert!(e.message.contains(':'), "{e}");
    }

    #[test]
    fn duplicate_statement_names_rejected() {
        let text = "CREATE TABLE t (a VARCHAR(8), PRIMARY KEY (a));\n\
                    STATEMENT q: SELECT * FROM t WHERE a = <x>;\n\
                    STATEMENT q: SELECT * FROM t WHERE a = <y>;\n";
        let e = parse_workload(text).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }
}
