//! A minimal JSON emitter for audit reports.
//!
//! The audit crate sits below the server, so it cannot use the server's
//! `Json` tree; it emits standard JSON text instead, which the server
//! parses back into its own tree for the `explain` verb. Keeping the one
//! emitter here makes the CLI report and the protocol response the same
//! shape by construction.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    Null,
    Bool(bool),
    /// Finite floats only; non-finite values render as `null`.
    Num(f64),
    Int(u64),
    Str(String),
    Arr(Vec<JsonVal>),
    /// Insertion-ordered object.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    pub fn str(s: impl Into<String>) -> JsonVal {
        JsonVal::Str(s.into())
    }

    /// Round a float to 3 decimals so reports are stable across platforms.
    pub fn ms(x: f64) -> JsonVal {
        JsonVal::Num((x * 1000.0).round() / 1000.0)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_val(v: &JsonVal, out: &mut String) {
    match v {
        JsonVal::Null => out.push_str("null"),
        JsonVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonVal::Num(x) => {
            if x.is_finite() {
                // always include a decimal point so the value parses as a
                // float on the other side
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        JsonVal::Int(n) => out.push_str(&n.to_string()),
        JsonVal::Str(s) => escape(s, out),
        JsonVal::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_val(item, out);
            }
            out.push(']');
        }
        JsonVal::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(k, out);
                out.push(':');
                write_val(val, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for JsonVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_val(self, &mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_standard_json() {
        let v = JsonVal::Obj(vec![
            ("name".into(), JsonVal::str("q\"1\"")),
            ("p99".into(), JsonVal::Num(12.5)),
            ("count".into(), JsonVal::Int(10)),
            (
                "tags".into(),
                JsonVal::Arr(vec![JsonVal::Bool(true), JsonVal::Null]),
            ),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"q\"1\"","p99":12.5,"count":10,"tags":[true,null]}"#
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(JsonVal::Num(50.0).to_string(), "50.0");
        assert_eq!(JsonVal::Num(f64::NAN).to_string(), "null");
    }
}
