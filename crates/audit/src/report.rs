//! Whole-workload audits and report rendering (human + JSON).

use crate::audit::{audit_statement, Severity, StatementAudit};
use crate::json::JsonVal;
use crate::tree::DerivationNode;
use crate::workload::Workload;
use piql_predict::SloPredictor;
use std::fmt::Write as _;

/// The audit of a whole workload file.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload file name, for rendering.
    pub source: String,
    pub statements: Vec<StatementAudit>,
}

/// Audit every statement of a parsed workload against one model snapshot.
pub fn audit_workload(
    source: &str,
    workload: &Workload,
    predictor: &SloPredictor,
) -> WorkloadReport {
    let statements = workload
        .entries
        .iter()
        .map(|entry| {
            let mut audit = audit_statement(
                &workload.catalog,
                predictor,
                &entry.name,
                &entry.sql,
                entry.slo,
            );
            audit.line = entry.line;
            for d in &mut audit.diagnostics {
                d.line = entry.line;
            }
            audit
        })
        .collect();
    WorkloadReport {
        source: source.to_string(),
        statements,
    }
}

impl WorkloadReport {
    /// Statements that fail the CI gate (unbounded / SLO-infeasible /
    /// invalid).
    pub fn gating(&self) -> Vec<&StatementAudit> {
        self.statements
            .iter()
            .filter(|s| s.outcome.gating())
            .collect()
    }

    pub fn to_json(&self) -> JsonVal {
        let count = |pred: &dyn Fn(&StatementAudit) -> bool| {
            JsonVal::Int(self.statements.iter().filter(|s| pred(s)).count() as u64)
        };
        JsonVal::Obj(vec![
            ("workload".into(), JsonVal::str(&self.source)),
            (
                "summary".into(),
                JsonVal::Obj(vec![
                    (
                        "statements".into(),
                        JsonVal::Int(self.statements.len() as u64),
                    ),
                    ("gating".into(), JsonVal::Int(self.gating().len() as u64)),
                    (
                        "feasible".into(),
                        count(&|s| s.outcome.label() == "feasible"),
                    ),
                    (
                        "marginal".into(),
                        count(&|s| s.outcome.label() == "marginal"),
                    ),
                    (
                        "infeasible".into(),
                        count(&|s| s.outcome.label() == "infeasible"),
                    ),
                    (
                        "unbounded".into(),
                        count(&|s| s.outcome.label() == "unbounded"),
                    ),
                    ("invalid".into(), count(&|s| s.outcome.label() == "invalid")),
                ]),
            ),
            (
                "statements".into(),
                JsonVal::Arr(self.statements.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Render the report rustc-style for terminals.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for audit in &self.statements {
            let p99 = audit
                .outcome
                .predicted_p99_ms()
                .map(|p| format!("predicted p99 {p:.1} ms vs SLO {:.0} ms", audit.slo.slo_ms))
                .unwrap_or_else(|| format!("SLO {:.0} ms", audit.slo.slo_ms));
            let _ = writeln!(
                out,
                "statement `{}` (line {}) — {}, {p99}: {}",
                audit.name,
                audit.line,
                audit.class.as_deref().unwrap_or("unclassified"),
                audit.outcome.label(),
            );
            if let Some(tree) = &audit.tree {
                let _ = writeln!(out, "  bound derivation:");
                render_tree(tree, 2, &mut out);
            }
            for d in &audit.diagnostics {
                let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
                let _ = writeln!(out, "  --> {}:{}", self.source, d.line);
                if let Some(op) = &d.operator {
                    let _ = writeln!(out, "   = operator: {op}");
                }
                if let Some(term) = &d.dominant_term {
                    let _ = writeln!(out, "   = dominant term: {term}");
                }
                if let Some(clause) = &d.clause {
                    let _ = writeln!(out, "   = span: {clause}");
                }
                let help = match d.severity {
                    Severity::Help => "note",
                    _ => "help",
                };
                for s in &d.suggestions {
                    let _ = writeln!(out, "   = {help}: {s}");
                }
            }
            out.push('\n');
        }
        let gating = self.gating();
        let _ = writeln!(
            out,
            "audited {} statement(s): {} gate failure(s)",
            self.statements.len(),
            gating.len()
        );
        for s in gating {
            let _ = writeln!(out, "  FAIL `{}` — {}", s.name, s.outcome.label());
        }
        out
    }
}

fn render_tree(node: &DerivationNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let mut line = format!("{pad}{}", node.describe());
    if let Some(b) = &node.bound {
        let _ = write!(line, " ≤{} [{}]", b.count, b.provenance);
    }
    if let Some(est) = node.estimate {
        let _ = write!(line, " UNBOUNDED (est. {est})");
    }
    if node.remote {
        let _ = write!(
            line,
            " requests≤{} tuples≤{}",
            node.bounds.requests, node.bounds.tuples
        );
    }
    if node.dominant {
        if let Some(t) = node.cost_terms.iter().find(|t| t.dominant) {
            let _ = write!(
                line,
                " ★ dominates ({:.0}% of predicted mean)",
                t.share * 100.0
            );
        } else {
            let _ = write!(line, " ★ dominates");
        }
    }
    out.push_str(&line);
    out.push('\n');
    for c in &node.children {
        render_tree(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearModelSpec;
    use crate::workload::parse_workload;

    const WORKLOAD: &str = "\
CREATE TABLE subs (owner VARCHAR(24), target VARCHAR(24),
  PRIMARY KEY (owner, target), CARDINALITY LIMIT 100 (owner));
CREATE TABLE thoughts (owner VARCHAR(24), ts TIMESTAMP,
  PRIMARY KEY (owner, ts));

STATEMENT stream SLO 50ms:
SELECT thoughts.* FROM subs s JOIN thoughts
WHERE thoughts.owner = s.target AND s.owner = <u>
ORDER BY thoughts.ts DESC LIMIT 10;

STATEMENT unbounded SLO 50ms:
SELECT * FROM thoughts WHERE owner = <u>;
";

    #[test]
    fn report_renders_and_gates() {
        let workload = parse_workload(WORKLOAD).expect("parses");
        let predictor = SloPredictor::new(LinearModelSpec::default().build());
        let report = audit_workload("wl.piql", &workload, &predictor);
        assert_eq!(report.statements.len(), 2);
        assert!(!report.gating().is_empty(), "unbounded statement gates");
        let human = report.render_human();
        assert!(human.contains("bound derivation:"), "{human}");
        assert!(human.contains("error[unbounded-operator]"), "{human}");
        assert!(human.contains("--> wl.piql:"), "{human}");
        let json = report.to_json().to_string();
        assert!(json.contains(r#""summary""#), "{json}");
        assert!(json.contains(r#""unbounded":1"#), "{json}");
    }

    #[test]
    fn diagnostics_inherit_statement_lines() {
        let workload = parse_workload(WORKLOAD).expect("parses");
        let predictor = SloPredictor::new(LinearModelSpec::default().build());
        let report = audit_workload("wl.piql", &workload, &predictor);
        let unbounded = report
            .statements
            .iter()
            .find(|s| s.name == "unbounded")
            .unwrap();
        assert!(unbounded.line > 0);
        assert!(unbounded
            .diagnostics
            .iter()
            .all(|d| d.line == unbounded.line));
    }
}
