//! The bound-derivation tree.
//!
//! A compiled plan proves its scale-independence operator by operator:
//! every remote operator carries a static bound, and every bound is
//! justified by a [`Provenance`]. This module re-renders that proof as an
//! explicit tree — one node per physical operator, annotated with the
//! operator's op-count bounds, the clause or declaration the bound rests
//! on, and (when a model snapshot is available) the operator's predicted
//! share of the plan's latency.

use crate::json::JsonVal;
use piql_core::opt::Compiled;
use piql_core::plan::physical::{PhysicalPlan, ScanLimit};
use piql_core::plan::Provenance;
use piql_predict::ThetaAttribution;

/// Static per-operator op-count bounds (a plain-data copy of the plan's
/// `OpBounds`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeBounds {
    pub requests: u64,
    pub rounds: u64,
    pub tuples: u64,
    pub bytes: u64,
}

/// One justified static limit.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundInfo {
    /// The bound's value (rows fetched / emitted, per probe for joins).
    pub count: u64,
    /// Machine-readable provenance tag (`Provenance::kind`).
    pub kind: String,
    /// Human rendering (`Provenance` display, as plan printers show it).
    pub provenance: String,
    /// The clause a developer would edit to change the bound.
    pub source_clause: String,
}

impl BoundInfo {
    fn from_provenance(count: u64, p: &Provenance) -> BoundInfo {
        BoundInfo {
            count,
            kind: p.kind().to_string(),
            provenance: p.to_string(),
            source_clause: p.source_clause(),
        }
    }
}

/// One operator model term's predicted contribution, attached to the node
/// it models.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTerm {
    /// Model operator kind (`IndexScan` / `IndexFKJoin` / `SortedIndexJoin`;
    /// a deref round shows up as an extra `IndexFKJoin` term on its scan).
    pub op: String,
    pub alpha_c: u32,
    pub alpha_j: u32,
    pub beta: u32,
    pub mean_ms: f64,
    pub p99_ms: f64,
    /// Fraction of the plan's predicted mean latency, in `[0, 1]`.
    pub share: f64,
    /// Whether this is the plan's dominating term.
    pub dominant: bool,
}

impl CostTerm {
    fn from_attribution(a: &ThetaAttribution, dominant: bool) -> CostTerm {
        CostTerm {
            op: a.key.op.name().to_string(),
            alpha_c: a.key.alpha_c,
            alpha_j: a.key.alpha_j,
            beta: a.key.beta,
            mean_ms: a.mean_ms,
            p99_ms: a.p99_ms,
            share: a.share,
            dominant,
        }
    }

    /// `IndexScan(αc=100, αj=1, β=160)` — how diagnostics name the term.
    pub fn describe(&self) -> String {
        format!(
            "{}(αc={}, αj={}, β={})",
            self.op, self.alpha_c, self.alpha_j, self.beta
        )
    }
}

/// One node of the derivation tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationNode {
    /// Physical operator name (`IndexScan`, `LocalStop`, ...).
    pub operator: String,
    /// Resolved index / relation / key context.
    pub detail: String,
    /// Whether this operator issues key/value-store requests.
    pub remote: bool,
    /// Position in `remote_ops()` order (remote nodes only) — the join key
    /// to cost attributions.
    pub op_index: Option<usize>,
    pub bounds: NodeBounds,
    /// The node's justified static limit, when it has one.
    pub bound: Option<BoundInfo>,
    /// Cost-based plans only: a statistics estimate instead of a bound.
    pub estimate: Option<u64>,
    /// Latency model terms attached to this node (empty for local
    /// operators or when the model has no data).
    pub cost_terms: Vec<CostTerm>,
    /// Whether this node carries the plan's dominating cost term.
    pub dominant: bool,
    pub children: Vec<DerivationNode>,
}

impl DerivationNode {
    /// Depth-first walk, parents before children.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a DerivationNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// The node carrying the dominant cost term, if any.
    pub fn dominant_node(&self) -> Option<&DerivationNode> {
        let mut found = None;
        self.walk(&mut |n| {
            if n.dominant && found.is_none() {
                found = Some(n);
            }
        });
        found
    }

    /// `operator(detail)` — how diagnostics name the operator.
    pub fn describe(&self) -> String {
        if self.detail.is_empty() {
            self.operator.clone()
        } else {
            format!("{}({})", self.operator, self.detail)
        }
    }

    pub fn to_json(&self) -> JsonVal {
        let mut fields = vec![
            ("operator".to_string(), JsonVal::str(&self.operator)),
            ("detail".to_string(), JsonVal::str(&self.detail)),
            ("remote".to_string(), JsonVal::Bool(self.remote)),
        ];
        if let Some(idx) = self.op_index {
            fields.push(("op_index".into(), JsonVal::Int(idx as u64)));
        }
        fields.push((
            "bounds".into(),
            JsonVal::Obj(vec![
                ("requests".into(), JsonVal::Int(self.bounds.requests)),
                ("rounds".into(), JsonVal::Int(self.bounds.rounds)),
                ("tuples".into(), JsonVal::Int(self.bounds.tuples)),
                ("bytes".into(), JsonVal::Int(self.bounds.bytes)),
            ]),
        ));
        if let Some(b) = &self.bound {
            fields.push((
                "bound".into(),
                JsonVal::Obj(vec![
                    ("count".into(), JsonVal::Int(b.count)),
                    ("kind".into(), JsonVal::str(&b.kind)),
                    ("provenance".into(), JsonVal::str(&b.provenance)),
                    ("source_clause".into(), JsonVal::str(&b.source_clause)),
                ]),
            ));
        }
        if let Some(est) = self.estimate {
            fields.push(("estimate".into(), JsonVal::Int(est)));
        }
        if !self.cost_terms.is_empty() {
            fields.push((
                "cost_terms".into(),
                JsonVal::Arr(
                    self.cost_terms
                        .iter()
                        .map(|t| {
                            JsonVal::Obj(vec![
                                ("op".into(), JsonVal::str(&t.op)),
                                ("alpha_c".into(), JsonVal::Int(t.alpha_c as u64)),
                                ("alpha_j".into(), JsonVal::Int(t.alpha_j as u64)),
                                ("beta".into(), JsonVal::Int(t.beta as u64)),
                                ("mean_ms".into(), JsonVal::ms(t.mean_ms)),
                                ("p99_ms".into(), JsonVal::ms(t.p99_ms)),
                                ("share".into(), JsonVal::ms(t.share)),
                                ("dominant".into(), JsonVal::Bool(t.dominant)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        fields.push(("dominant".into(), JsonVal::Bool(self.dominant)));
        if !self.children.is_empty() {
            fields.push((
                "children".into(),
                JsonVal::Arr(self.children.iter().map(|c| c.to_json()).collect()),
            ));
        }
        JsonVal::Obj(fields)
    }
}

/// Build the derivation tree for a compiled plan. `attributions` comes from
/// [`piql_predict::SloPredictor::attribute`]; pass `&[]` to build a tree
/// without cost annotations.
pub fn derivation_tree(compiled: &Compiled, attributions: &[ThetaAttribution]) -> DerivationNode {
    let dominant_index: Option<usize> = attributions
        .iter()
        .max_by(|a, b| a.mean_ms.total_cmp(&b.mean_ms))
        .filter(|a| a.mean_ms > 0.0)
        .map(|a| a.op_index);
    let mut next_remote = 0usize;
    build(
        compiled,
        &compiled.physical,
        attributions,
        dominant_index,
        &mut next_remote,
    )
}

fn build(
    compiled: &Compiled,
    plan: &PhysicalPlan,
    attributions: &[ThetaAttribution],
    dominant_index: Option<usize>,
    next_remote: &mut usize,
) -> DerivationNode {
    // children first: remote_ops() numbers operators bottom-up
    let children: Vec<DerivationNode> = plan
        .child()
        .map(|c| {
            vec![build(
                compiled,
                c,
                attributions,
                dominant_index,
                next_remote,
            )]
        })
        .unwrap_or_default();

    let schema = &compiled.schema;
    let b = plan.bounds();
    let bounds = NodeBounds {
        requests: b.requests,
        rounds: b.rounds,
        tuples: b.tuples,
        bytes: b.bytes,
    };

    let (operator, detail, remote, bound, estimate) = match plan {
        PhysicalPlan::ParamSource { param, max, .. } => (
            "ParamSource",
            format!("{param}"),
            false,
            Some(BoundInfo::from_provenance(
                *max,
                &Provenance::ParamMax {
                    param: param.name.clone(),
                    max: *max,
                },
            )),
            None,
        ),
        PhysicalPlan::IndexScan { spec, .. } => {
            let rel = schema.relation(spec.index.rel);
            let (bound, estimate) = match &spec.limit {
                ScanLimit::Bounded { count, provenance } => {
                    (Some(BoundInfo::from_provenance(*count, provenance)), None)
                }
                ScanLimit::Unbounded { estimate } => (None, Some(*estimate)),
            };
            (
                "IndexScan",
                spec.index.display_name(&rel.binding),
                true,
                bound,
                estimate,
            )
        }
        PhysicalPlan::IndexFKJoin { rel, .. } => {
            let r = schema.relation(*rel);
            // one parallel pk get per child tuple: the bound is structural
            // (child tuples), not clause-derived, so there is no BoundInfo
            ("IndexFKJoin", r.binding.clone(), true, None, None)
        }
        PhysicalPlan::SortedIndexJoin { rel, spec, .. } => {
            let r = schema.relation(*rel);
            (
                "SortedIndexJoin",
                format!(
                    "{}, index={}",
                    r.binding,
                    spec.index.display_name(&r.binding)
                ),
                true,
                Some(BoundInfo::from_provenance(
                    spec.per_key,
                    &spec.per_key_provenance,
                )),
                None,
            )
        }
        PhysicalPlan::LocalSelection { predicates, .. } => (
            "LocalSelection",
            format!("{} predicate(s)", predicates.len()),
            false,
            None,
            None,
        ),
        PhysicalPlan::LocalSort { keys, .. } => (
            "LocalSort",
            format!("{} key(s)", keys.len()),
            false,
            None,
            None,
        ),
        PhysicalPlan::LocalStop { count, .. } => {
            // a standard stop folds the query's LIMIT/PAGINATE clause
            let p = match compiled.page_size {
                Some(page) => Provenance::Paginate { page },
                None => Provenance::Limit { count: *count },
            };
            (
                "LocalStop",
                String::new(),
                false,
                Some(BoundInfo::from_provenance(*count, &p)),
                None,
            )
        }
        PhysicalPlan::LocalProject { columns, .. } => (
            "LocalProject",
            format!("{} column(s)", columns.len()),
            false,
            None,
            None,
        ),
        PhysicalPlan::LocalAggregate { aggs, .. } => (
            "LocalAggregate",
            format!("{} aggregate(s)", aggs.len()),
            false,
            None,
            None,
        ),
    };

    let op_index = if remote {
        let idx = *next_remote;
        *next_remote += 1;
        Some(idx)
    } else {
        None
    };
    let cost_terms: Vec<CostTerm> = match op_index {
        Some(idx) => attributions
            .iter()
            .filter(|a| a.op_index == idx)
            .map(|a| {
                CostTerm::from_attribution(
                    a,
                    dominant_index == Some(idx) && {
                        // within the node, only the single largest term is dominant
                        let max_mean = attributions
                            .iter()
                            .filter(|x| x.op_index == idx)
                            .map(|x| x.mean_ms)
                            .fold(0.0f64, f64::max);
                        a.mean_ms == max_mean && max_mean > 0.0
                    },
                )
            })
            .collect(),
        None => Vec::new(),
    };
    let dominant = op_index.is_some() && op_index == dominant_index;

    DerivationNode {
        operator: operator.to_string(),
        detail,
        remote,
        op_index,
        bounds,
        bound,
        estimate,
        cost_terms,
        dominant,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_core::catalog::{Catalog, TableDef};
    use piql_core::opt::Optimizer;
    use piql_core::parser::parse_select;
    use piql_core::value::DataType;

    fn thoughtstream() -> Compiled {
        let mut cat = Catalog::new();
        cat.create_table(
            TableDef::builder("subs")
                .column("owner", DataType::Varchar(32))
                .column("target", DataType::Varchar(32))
                .primary_key(&["owner", "target"])
                .cardinality_limit(100, &["owner"])
                .build(),
        )
        .unwrap();
        cat.create_table(
            TableDef::builder("thoughts")
                .column("owner", DataType::Varchar(32))
                .column("ts", DataType::Timestamp)
                .primary_key(&["owner", "ts"])
                .build(),
        )
        .unwrap();
        Optimizer::scale_independent()
            .compile(
                &cat,
                &parse_select(
                    "SELECT thoughts.* FROM subs s JOIN thoughts \
                     WHERE thoughts.owner = s.target AND s.owner = <u> \
                     ORDER BY thoughts.ts DESC LIMIT 10",
                )
                .unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn tree_indexes_remote_ops_bottom_up() {
        let compiled = thoughtstream();
        let tree = derivation_tree(&compiled, &[]);
        let mut remote = Vec::new();
        tree.walk(&mut |n| {
            if let Some(i) = n.op_index {
                remote.push((i, n.operator.clone()));
            }
        });
        remote.sort();
        assert_eq!(remote.len(), compiled.physical.remote_ops().len());
        assert_eq!(remote[0].1, "IndexScan", "{remote:?}");
        // every remote node's bound names its justification
        tree.walk(&mut |n| {
            if n.operator == "IndexScan" {
                let b = n.bound.as_ref().expect("scan is bounded");
                assert_eq!(b.kind, "cardinality");
                assert!(b.source_clause.contains("CARDINALITY LIMIT 100"));
            }
        });
    }

    #[test]
    fn json_shape_is_stable() {
        let compiled = thoughtstream();
        let json = derivation_tree(&compiled, &[]).to_json().to_string();
        assert!(json.contains(r#""operator":"#), "{json}");
        assert!(json.contains(r#""bound":{"count":"#), "{json}");
        assert!(json.contains(r#""source_clause":"#), "{json}");
    }
}
