//! Synthetic model snapshots for offline audits.
//!
//! The CLI audits a workload without touching storage, so it cannot train
//! the §6.1 operator models from live observation. Instead it fabricates a
//! [`ModelStore`] from a linear cost model — an operator touching `r` rows
//! costs `base_us + per_row_us * r` microseconds (±25% spread so the
//! histograms are not degenerate) — mirroring the deterministic stores the
//! server's test harnesses use. A real deployment would instead point the
//! auditor at an exported snapshot of its live store.

use piql_predict::{ModelKey, ModelStore, OpKind, ALPHA_GRID, BETA_GRID};

/// α_j values fabricated for SortedIndexJoin keys; a subset of
/// [`ALPHA_GRID`] so ceil-lookups land on exact entries.
const ALPHA_J_GRID: &[u32] = &[1, 5, 10, 25, 50];

/// Parameters of the synthetic linear cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearModelSpec {
    /// Fixed per-operator cost, microseconds.
    pub base_us: u64,
    /// Marginal cost per row touched, microseconds.
    pub per_row_us: u64,
    /// Number of SLO intervals to fabricate.
    pub intervals: usize,
}

impl Default for LinearModelSpec {
    fn default() -> Self {
        LinearModelSpec {
            base_us: 200,
            per_row_us: 100,
            intervals: 4,
        }
    }
}

impl LinearModelSpec {
    /// Parse a `linear:<base_us>,<per_row_us>[,<intervals>]` spec string.
    pub fn parse(spec: &str) -> Result<LinearModelSpec, String> {
        let rest = spec
            .strip_prefix("linear:")
            .ok_or_else(|| format!("unknown model spec `{spec}` (expected `linear:...`)"))?;
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!(
                "model spec `{spec}` must be `linear:<base_us>,<per_row_us>[,<intervals>]`"
            ));
        }
        let num = |s: &str| -> Result<u64, String> {
            s.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad number `{s}` in model spec `{spec}`"))
        };
        let intervals = match parts.get(2) {
            Some(p) => num(p)?.clamp(1, 64) as usize,
            None => 4,
        };
        Ok(LinearModelSpec {
            base_us: num(parts[0])?,
            per_row_us: num(parts[1])?,
            intervals,
        })
    }

    /// Fabricate the store.
    pub fn build(&self) -> ModelStore {
        let mut store = ModelStore::new(self.intervals);
        for interval in 0..self.intervals {
            for &beta in BETA_GRID {
                for &alpha_c in ALPHA_GRID {
                    for (op, alpha_js) in [
                        (OpKind::IndexScan, &[1u32][..]),
                        (OpKind::IndexFKJoin, &[1u32][..]),
                        (OpKind::SortedIndexJoin, ALPHA_J_GRID),
                    ] {
                        for &alpha_j in alpha_js {
                            let key = ModelKey {
                                op,
                                alpha_c,
                                alpha_j,
                                beta,
                            };
                            let rows = alpha_c as u64 * alpha_j as u64;
                            let us = self.base_us + self.per_row_us * rows;
                            store.record(interval, key, us);
                            store.record(interval, key, us + us / 10);
                            store.record(interval, key, us + us / 4);
                        }
                    }
                }
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_defaults_and_rejects_junk() {
        let spec = LinearModelSpec::parse("linear:200,100").unwrap();
        assert_eq!(spec.base_us, 200);
        assert_eq!(spec.per_row_us, 100);
        assert_eq!(spec.intervals, 4);
        assert_eq!(
            LinearModelSpec::parse("linear:10,2,8").unwrap().intervals,
            8
        );
        assert!(LinearModelSpec::parse("quadratic:1,2").is_err());
        assert!(LinearModelSpec::parse("linear:1").is_err());
        assert!(LinearModelSpec::parse("linear:a,b").is_err());
    }

    #[test]
    fn fabricated_store_scales_with_rows() {
        let store = LinearModelSpec::default().build();
        let p99 = |alpha_c: u32, alpha_j: u32, op| {
            store
                .lookup_overall(ModelKey {
                    op,
                    alpha_c,
                    alpha_j,
                    beta: 40,
                })
                .expect("key present")
                .to_distribution()
                .quantile_ms(0.99)
        };
        assert!(p99(100, 1, OpKind::IndexScan) > 5.0 * p99(10, 1, OpKind::IndexScan));
        assert!(
            p99(100, 10, OpKind::SortedIndexJoin) > 5.0 * p99(100, 1, OpKind::IndexScan),
            "fan-out multiplies cost"
        );
    }
}
