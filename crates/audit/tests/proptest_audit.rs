//! Property tests for the auditor's total-function contract: auditing an
//! arbitrary generated statement never panics, and always yields either a
//! fully justified bound derivation (every remote node carries a bound
//! with provenance) or at least one diagnostic explaining why not.

use piql_audit::{audit_statement, LinearModelSpec, Outcome, SloSpec};
use piql_core::catalog::{Catalog, TableDef};
use piql_core::value::DataType;
use piql_predict::SloPredictor;
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("users")
            .column("username", DataType::Varchar(24))
            .column("town", DataType::Varchar(24))
            .primary_key(&["username"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("subs")
            .column("owner", DataType::Varchar(24))
            .column("target", DataType::Varchar(24))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(100, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(24))
            .column("ts", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "ts"])
            .build(),
    )
    .unwrap();
    cat
}

/// A generator over statement fragments: some compile to Class I/II, some
/// are unbounded, some do not even parse.
fn statement_strategy() -> impl Strategy<Value = String> {
    let projection = prop_oneof![
        Just("*".to_string()),
        Just("username".to_string()),
        Just("thoughts.*".to_string()),
        Just("COUNT(*)".to_string()),
    ];
    let source = prop_oneof![
        Just("users".to_string()),
        Just("subs".to_string()),
        Just("thoughts".to_string()),
        Just("subs s JOIN thoughts".to_string()),
        Just("nosuch".to_string()),
    ];
    let filter = prop_oneof![
        Just(String::new()),
        Just(" WHERE username = <u>".to_string()),
        Just(" WHERE owner = <u>".to_string()),
        Just(" WHERE thoughts.owner = s.target AND s.owner = <u>".to_string()),
        Just(" WHERE town = <t>".to_string()),
        Just(" WHERE owner IN [1: friends MAX 25]".to_string()),
        Just(" WHERE garbage !!!".to_string()),
    ];
    let bound = prop_oneof![
        Just(String::new()),
        Just(" LIMIT 10".to_string()),
        Just(" LIMIT 500".to_string()),
        Just(" PAGINATE 20".to_string()),
    ];
    (projection, (source, (filter, bound)))
        .prop_map(|(p, (s, (f, b)))| format!("SELECT {p} FROM {s}{f}{b}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn audit_never_panics_and_always_explains(
        sql in statement_strategy(),
        slo_ms in 1u64..400,
    ) {
        let cat = catalog();
        let predictor = SloPredictor::new(LinearModelSpec::default().build());
        let slo = SloSpec { slo_ms: slo_ms as f64, confidence: 0.9 };
        let audit = audit_statement(&cat, &predictor, "gen", &sql, slo);

        match &audit.outcome {
            Outcome::Feasible { .. } | Outcome::Marginal { .. } => {
                // bounded: the derivation tree must justify every remote op
                let tree = audit.tree.as_ref().expect("bounded statements carry a tree");
                let mut unjustified = 0usize;
                tree.walk(&mut |n| {
                    // IndexFKJoin's bound is structural (one get per child
                    // tuple); every other remote operator must name the
                    // clause its bound rests on
                    if n.remote && n.operator != "IndexFKJoin" && n.bound.is_none() {
                        unjustified += 1;
                    }
                });
                prop_assert_eq!(unjustified, 0, "unjustified remote bound in {}", sql);
            }
            Outcome::Infeasible { .. } | Outcome::Unbounded | Outcome::Invalid { .. } => {
                // not shippable: there must be a diagnostic saying why
                prop_assert!(
                    !audit.diagnostics.is_empty(),
                    "gating outcome without diagnostics for {}",
                    sql
                );
            }
        }

        // every error/warning diagnostic names an operator, a dominating
        // term, and at least one concrete suggestion (parse/bind errors
        // have no plan to point at and are exempt from the first two)
        for d in &audit.diagnostics {
            prop_assert!(!d.suggestions.is_empty(), "no suggestion in {:?}", d);
            if d.code != "parse-error" && d.code != "bind-error" {
                prop_assert!(d.operator.is_some(), "no operator in {:?}", d);
                prop_assert!(d.dominant_term.is_some(), "no dominant term in {:?}", d);
            }
        }

        // the JSON rendering is total too
        let _ = audit.to_json().to_string();
    }
}
