//! Scenario descriptions: tenants, load shape, faults, and the overload
//! controls under test. A [`ScenarioSpec`] is a pure value — the driver
//! derives every random choice from `seed`, so the same spec replays the
//! same operation stream byte for byte.

use std::time::Duration;

use piql_server::BudgetPolicy;

/// One tenant's slice of the workload.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name; statements register as `"{name}.point"` etc., so the
    /// registry's `tenant_of` prefix rule maps them back to this tenant.
    pub name: String,
    /// Steady-state connections this tenant keeps open.
    pub connections: usize,
    /// Fraction of this tenant's connections speaking the binary v3
    /// protocol (the rest use newline-delimited JSON).
    pub binary_share: f64,
    /// The tenant's latency target, used by the p99 invariant.
    pub slo_ms: f64,
    /// Enforce `p99 <= slo_ms` as a scenario invariant for this tenant.
    pub assert_slo: bool,
    /// Admission budget (in-flight executions) for this tenant, applied
    /// only when [`Controls::enabled`]. `None` = unlimited.
    pub budget: Option<u32>,
    /// What happens past the budget: reject, queue, or shed.
    pub policy: BudgetPolicy,
}

impl TenantSpec {
    /// A small read-mostly tenant named `name` with `connections`
    /// connections, a generous SLO, and no budget.
    pub fn new(name: &str, connections: usize) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            connections,
            binary_share: 0.25,
            slo_ms: 250.0,
            assert_slo: false,
            budget: None,
            policy: BudgetPolicy::Reject,
        }
    }
}

/// The server-side overload controls a scenario exercises. With
/// `enabled = false` the scenario runs the baseline (pre-controls)
/// configuration, which is how the flash-crowd benchmark demonstrates the
/// violation the controls prevent.
#[derive(Debug, Clone)]
pub struct Controls {
    pub enabled: bool,
    /// Per-connection decode window (`ServerTuning::max_in_flight_per_conn`);
    /// 0 = unlimited.
    pub max_in_flight_per_conn: usize,
    /// Auto-rebalance when a namespace's hottest shard exceeds this op
    /// share (0.0 disables).
    pub rebalance_max_op_share: f64,
    /// Minimum ops observed in a namespace before skew counts.
    pub rebalance_min_ops: u64,
}

impl Default for Controls {
    fn default() -> Self {
        Controls {
            enabled: true,
            max_in_flight_per_conn: 32,
            rebalance_max_op_share: 0.5,
            rebalance_min_ops: 2_000,
        }
    }
}

/// A fault injected at a wall-clock offset into the run.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Every storage request takes `delay_us` longer between `at` and
    /// `until` (a slow shard / degraded disk).
    SlowShard {
        at: Duration,
        until: Duration,
        delay_us: u64,
    },
    /// `extra_connections` zero-think pipelined connections hammer
    /// `tenant`'s point statement between `at` and `until`.
    FlashCrowd {
        at: Duration,
        until: Duration,
        tenant: String,
        extra_connections: usize,
    },
    /// At `at`, open a connection that writes `frames` requests and never
    /// reads a byte of response (a wedged/slow consumer). The socket is
    /// held open until the scenario ends.
    PausedReader {
        at: Duration,
        tenant: String,
        frames: usize,
    },
}

impl Fault {
    /// When the fault fires.
    pub fn at(&self) -> Duration {
        match self {
            Fault::SlowShard { at, .. }
            | Fault::FlashCrowd { at, .. }
            | Fault::PausedReader { at, .. } => *at,
        }
    }
}

/// A complete scenario: load shape, tenants, faults, controls.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Master seed; every per-connection RNG derives from it.
    pub seed: u64,
    /// Wall-clock run length (ignored when `requests_per_conn` is set).
    pub duration: Duration,
    /// Fixed-count mode: each connection issues exactly this many
    /// requests then stops — the fully deterministic mode used by the
    /// reproducibility tests. `None` = run for `duration`.
    pub requests_per_conn: Option<u64>,
    pub tenants: Vec<TenantSpec>,
    /// Keys preloaded per tenant (the read key space).
    pub keys_per_tenant: u64,
    /// Zipf exponent for read-key popularity (0 = uniform, 0.99 = YCSB).
    pub zipf_exponent: f64,
    /// Fraction of operations that are writes (acked-write tracking).
    pub write_fraction: f64,
    /// Base think time between a connection's operations.
    pub think: Duration,
    /// Diurnal load cycles over the run: think time swings between 25%
    /// (peak) and 100% (trough) of `think`, `diurnal_cycles` times.
    /// 0 disables the swing.
    pub diurnal_cycles: u32,
    /// Server dispatch-pool width (0 = inline handling).
    pub dispatch_threads: usize,
    /// Baseline per-request storage delay in microseconds.
    pub request_delay_us: u64,
    pub controls: Controls,
    pub faults: Vec<Fault>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 0x5ca1ab1e,
            duration: Duration::from_secs(5),
            requests_per_conn: None,
            tenants: vec![TenantSpec::new("t0", 4)],
            keys_per_tenant: 1_000,
            zipf_exponent: 0.99,
            write_fraction: 0.1,
            think: Duration::from_millis(2),
            diurnal_cycles: 2,
            dispatch_threads: 4,
            request_delay_us: 0,
            controls: Controls::default(),
            faults: Vec::new(),
        }
    }
}

impl ScenarioSpec {
    /// Total steady-state connections across tenants (excludes flash
    /// crowds).
    pub fn total_connections(&self) -> usize {
        self.tenants.iter().map(|t| t.connections).sum()
    }
}
