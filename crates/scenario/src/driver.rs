//! The scenario driver: boots a real [`PiqlServer`] on a live cluster,
//! opens every tenant's connections, replays a seeded operation stream
//! against it while a fault injector perturbs the run, then verifies the
//! scenario invariants:
//!
//! 1. **No acked write is ever lost** — every write the server
//!    acknowledged is re-read after the run (with faults cleared) and
//!    must still be there.
//! 2. **Per-tenant p99 vs SLO** — tenants marked `assert_slo` must see
//!    their measured p99 under their target, faults and flash crowds
//!    notwithstanding.
//! 3. **No connection starves** — every steady-state connection that
//!    issued requests got at least one response (success or a clean
//!    rejection), even with slow consumers wedged on other sockets.
//! 4. **No unexpected errors** — the only allowed failure is the typed
//!    `budget-exceeded` rejection.
//!
//! Determinism: every random choice derives from `ScenarioSpec::seed`
//! via per-connection RNGs, and each connection folds its operation
//! stream into an FNV-1a fingerprint *before* sending, so the combined
//! fingerprint (and, in fixed-count mode, every admission/rejection
//! count driven purely by budget configuration) reproduces exactly
//! across runs.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use piql_core::tuple;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use piql_server::protocol::request_to_line;
use piql_server::testkit::linear_predictor;
use piql_server::{
    Admission, BudgetPolicy, Client, Json, OverloadConfig, PiqlServer, Request, ServerTuning,
    SloConfig, StatementRegistry,
};

use crate::report::{percentile_ms, ScenarioReport, ServerOverload, TenantReport};
use crate::spec::{Fault, ScenarioSpec, TenantSpec};
use crate::zipf::Zipfian;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable per-connection RNG seed: mixes the master seed with the
/// connection's coordinates (splitmix-style odd multiplier).
fn conn_seed(master: u64, tenant_idx: usize, conn_idx: usize) -> u64 {
    let coord = (tenant_idx as u64) << 20 | conn_idx as u64;
    master ^ (coord.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn key_label(rank: u64) -> String {
    format!("k{rank:08}")
}

/// Think-time multiplier in `[0.25, 1.0]`: starts at the trough (full
/// think), dips to peak load (quarter think) mid-cycle, `cycles` times
/// over the run.
fn diurnal_factor(cycles: u32, progress: f64) -> f64 {
    if cycles == 0 {
        return 1.0;
    }
    let phase = std::f64::consts::TAU * f64::from(cycles) * progress.clamp(0.0, 1.0);
    0.625 + 0.375 * phase.cos()
}

/// Everything a steady-state connection worker needs, cheap to clone.
#[derive(Clone)]
struct WorkerCtx {
    addr: SocketAddr,
    seed: u64,
    requests_per_conn: Option<u64>,
    duration: Duration,
    keys: u64,
    zipf_exponent: f64,
    write_fraction: f64,
    think: Duration,
    diurnal_cycles: u32,
    stop: Arc<AtomicBool>,
}

/// One steady-state connection's raw outcome.
struct ConnOutcome {
    tenant_idx: usize,
    conn_idx: usize,
    sent: u64,
    ok: u64,
    degraded: u64,
    rejected: u64,
    errors: u64,
    latencies_us: Vec<u64>,
    /// Group every acked write of this connection landed in.
    write_group: String,
    /// Keys of acked writes, in ack order.
    acked: Vec<String>,
    fingerprint: u64,
    error_sample: Option<String>,
}

fn conn_worker(
    ctx: WorkerCtx,
    tenant: TenantSpec,
    tenant_idx: usize,
    conn_idx: usize,
) -> ConnOutcome {
    let mut out = ConnOutcome {
        tenant_idx,
        conn_idx,
        sent: 0,
        ok: 0,
        degraded: 0,
        rejected: 0,
        errors: 0,
        latencies_us: Vec::new(),
        write_group: format!("w.{tenant_idx}.{conn_idx}"),
        acked: Vec::new(),
        fingerprint: FNV_OFFSET,
        error_sample: None,
    };
    let binary_conns = (tenant.connections as f64 * tenant.binary_share).round() as usize;
    let connect = if conn_idx < binary_conns {
        Client::connect_binary(ctx.addr)
    } else {
        Client::connect(ctx.addr)
    };
    let mut client = match connect {
        Ok(c) => c,
        Err(e) => {
            out.errors = 1;
            out.error_sample = Some(format!("connect: {e}"));
            return out;
        }
    };
    let mut rng = StdRng::seed_from_u64(conn_seed(ctx.seed, tenant_idx, conn_idx));
    let zipf = Zipfian::new(ctx.keys, ctx.zipf_exponent);
    let point = format!("{}.point", tenant.name);
    let insert_sql = format!(
        "INSERT INTO {}_items (g, k, v) VALUES (<g>, <k>, <v>)",
        tenant.name
    );
    let started = Instant::now();
    let mut seq: u64 = 0;
    loop {
        match ctx.requests_per_conn {
            Some(n) => {
                if out.sent >= n {
                    break;
                }
            }
            None => {
                if ctx.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
        // Generate the operation *before* sending and fold it into the
        // fingerprint: the stream is a pure function of the seed, never
        // of outcomes or timing.
        let is_write = rng.gen_bool(ctx.write_fraction);
        let mut acked_key = None;
        let request = if is_write {
            seq += 1;
            let k = key_label(seq);
            out.fingerprint = fnv(out.fingerprint, b"w");
            out.fingerprint = fnv(out.fingerprint, k.as_bytes());
            let params = vec![
                Value::Varchar(out.write_group.clone()).into(),
                Value::Varchar(k.clone()).into(),
                Value::Varchar(format!("v{seq}")).into(),
            ];
            acked_key = Some(k);
            Request::Dml {
                sql: insert_sql.clone(),
                params,
            }
        } else {
            let k = key_label(zipf.sample(&mut rng));
            out.fingerprint = fnv(out.fingerprint, b"r");
            out.fingerprint = fnv(out.fingerprint, k.as_bytes());
            Request::Execute {
                name: point.clone(),
                params: vec![Value::Varchar("r".into()).into(), Value::Varchar(k).into()],
                cursor: None,
            }
        };
        out.sent += 1;
        let t0 = Instant::now();
        match client.request_raw(&request) {
            Ok(resp) => {
                let us = t0.elapsed().as_micros() as u64;
                if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                    if resp.get("degraded").and_then(Json::as_bool) == Some(true) {
                        out.degraded += 1;
                    } else {
                        out.ok += 1;
                    }
                    out.latencies_us.push(us);
                    if let Some(k) = acked_key {
                        out.acked.push(k);
                    }
                } else if resp.get("code").and_then(Json::as_str) == Some("budget-exceeded") {
                    out.rejected += 1;
                } else {
                    out.errors += 1;
                    if out.error_sample.is_none() {
                        out.error_sample = resp
                            .get("error")
                            .and_then(Json::as_str)
                            .map(|s| s.to_string());
                    }
                }
            }
            Err(e) => {
                out.errors += 1;
                if out.error_sample.is_none() {
                    out.error_sample = Some(format!("transport: {e}"));
                }
                break;
            }
        }
        if !ctx.think.is_zero() {
            let progress = match ctx.requests_per_conn {
                Some(n) if n > 0 => out.sent as f64 / n as f64,
                _ => (started.elapsed().as_secs_f64() / ctx.duration.as_secs_f64().max(1e-9))
                    .min(1.0),
            };
            thread::sleep(
                ctx.think
                    .mul_f64(diurnal_factor(ctx.diurnal_cycles, progress)),
            );
        }
    }
    out
}

/// A flash-crowd connection's outcome (tracked apart from steady state).
struct CrowdOutcome {
    tenant: String,
    sent: u64,
    ok: u64,
    rejected: u64,
    errors: u64,
}

const CROWD_PIPELINE: usize = 16;

/// When an entire crowd flush comes back `budget-exceeded`, the crowd
/// connection backs off briefly before retrying (the retry-after pattern
/// rejected clients follow). The baseline run never rejects, so the
/// crowd never backs off there — the overload stays unthrottled.
const CROWD_REJECT_BACKOFF: Duration = Duration::from_millis(5);

fn crowd_worker(
    addr: SocketAddr,
    tenant: String,
    keys: u64,
    zipf_exponent: f64,
    seed: u64,
    crowd_stop: Arc<AtomicBool>,
    global_stop: Arc<AtomicBool>,
) -> CrowdOutcome {
    let mut out = CrowdOutcome {
        tenant: tenant.clone(),
        sent: 0,
        ok: 0,
        rejected: 0,
        errors: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        out.errors = 1;
        return out;
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipfian::new(keys, zipf_exponent);
    let point = format!("{tenant}.point");
    while !crowd_stop.load(Ordering::Relaxed) && !global_stop.load(Ordering::Relaxed) {
        let mut pipe = client.pipeline();
        for _ in 0..CROWD_PIPELINE {
            let k = key_label(zipf.sample(&mut rng));
            pipe.queue_execute(
                &point,
                &[Value::Varchar("r".into()).into(), Value::Varchar(k).into()],
            );
        }
        out.sent += CROWD_PIPELINE as u64;
        match pipe.flush() {
            Ok(responses) => {
                let batch = responses.len() as u64;
                let mut rejected_in_batch = 0;
                for resp in responses {
                    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                        out.ok += 1;
                    } else if resp.get("code").and_then(Json::as_str) == Some("budget-exceeded") {
                        out.rejected += 1;
                        rejected_in_batch += 1;
                    } else {
                        out.errors += 1;
                    }
                }
                if rejected_in_batch == batch && batch > 0 {
                    thread::sleep(CROWD_REJECT_BACKOFF);
                }
            }
            Err(_) => {
                out.errors += 1;
                break;
            }
        }
    }
    out
}

/// A paused reader: writes `frames` requests then never reads a byte, so
/// the server's responses back up on this socket. With backpressure
/// enabled the reader lane parks at the in-flight cap; either way the
/// socket is held open until the scenario ends.
fn paused_reader(addr: SocketAddr, tenant: String, frames: usize, global_stop: Arc<AtomicBool>) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    stream.set_nodelay(true).ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(200)))
        .ok();
    let line = request_to_line(&Request::Execute {
        name: format!("{tenant}.scan"),
        params: vec![Value::Varchar("r".into()).into()],
        cursor: None,
    });
    let frame = format!("{line}\n");
    let mut written = 0;
    while written < frames && !global_stop.load(Ordering::Relaxed) {
        match stream.write_all(frame.as_bytes()) {
            Ok(()) => written += 1,
            // Socket buffer full: the wedge is in effect; stop writing
            // (a retry could split a frame) and just hold the socket.
            Err(_) => break,
        }
    }
    while !global_stop.load(Ordering::Relaxed) {
        thread::sleep(Duration::from_millis(20));
    }
}

enum TimedAction {
    Delay(u64),
    CrowdStart {
        tenant: String,
        extra: usize,
        stop: Arc<AtomicBool>,
    },
    CrowdStop(Arc<AtomicBool>),
    PausedReader {
        tenant: String,
        frames: usize,
    },
}

/// Expand the fault list into a time-sorted action timeline.
fn build_timeline(spec: &ScenarioSpec) -> Vec<(Duration, TimedAction)> {
    let mut timeline = Vec::new();
    for fault in &spec.faults {
        match fault {
            Fault::SlowShard {
                at,
                until,
                delay_us,
            } => {
                timeline.push((*at, TimedAction::Delay(*delay_us)));
                timeline.push((*until, TimedAction::Delay(spec.request_delay_us)));
            }
            Fault::FlashCrowd {
                at,
                until,
                tenant,
                extra_connections,
            } => {
                let stop = Arc::new(AtomicBool::new(false));
                timeline.push((
                    *at,
                    TimedAction::CrowdStart {
                        tenant: tenant.clone(),
                        extra: *extra_connections,
                        stop: stop.clone(),
                    },
                ));
                timeline.push((*until, TimedAction::CrowdStop(stop)));
            }
            Fault::PausedReader { at, tenant, frames } => {
                timeline.push((
                    *at,
                    TimedAction::PausedReader {
                        tenant: tenant.clone(),
                        frames: *frames,
                    },
                ));
            }
        }
    }
    timeline.sort_by_key(|(at, _)| *at);
    timeline
}

/// Runs the fault timeline against the cluster/server, spawning crowd and
/// paused-reader threads; joins them all and returns the crowd outcomes.
#[allow(clippy::too_many_arguments)]
fn inject_faults(
    timeline: Vec<(Duration, TimedAction)>,
    cluster: Arc<LiveCluster>,
    addr: SocketAddr,
    keys: u64,
    zipf_exponent: f64,
    seed: u64,
    global_stop: Arc<AtomicBool>,
) -> Vec<CrowdOutcome> {
    let started = Instant::now();
    let mut crowd_handles: Vec<JoinHandle<CrowdOutcome>> = Vec::new();
    let mut reader_handles: Vec<JoinHandle<()>> = Vec::new();
    for (at, action) in timeline {
        while started.elapsed() < at && !global_stop.load(Ordering::Relaxed) {
            thread::sleep(Duration::from_millis(5));
        }
        if global_stop.load(Ordering::Relaxed) {
            break;
        }
        match action {
            TimedAction::Delay(us) => cluster.set_request_delay_us(us),
            TimedAction::CrowdStart {
                tenant,
                extra,
                stop,
            } => {
                for i in 0..extra {
                    let tenant = tenant.clone();
                    let stop = stop.clone();
                    let global_stop = global_stop.clone();
                    let crowd_seed = seed ^ 0xc0ffee ^ (i as u64) << 32;
                    if let Ok(h) =
                        thread::Builder::new()
                            .name(format!("scn-crowd-{i}"))
                            .spawn(move || {
                                crowd_worker(
                                    addr,
                                    tenant,
                                    keys,
                                    zipf_exponent,
                                    crowd_seed,
                                    stop,
                                    global_stop,
                                )
                            })
                    {
                        crowd_handles.push(h);
                    }
                }
            }
            TimedAction::CrowdStop(stop) => stop.store(true, Ordering::Relaxed),
            TimedAction::PausedReader { tenant, frames } => {
                let global_stop = global_stop.clone();
                if let Ok(h) = thread::Builder::new()
                    .name("scn-paused-reader".into())
                    .spawn(move || paused_reader(addr, tenant, frames, global_stop))
                {
                    reader_handles.push(h);
                }
            }
        }
    }
    // Crowd threads exit on their own stop flag or the global one; the
    // driver sets the global flag before joining us.
    let outcomes = crowd_handles
        .into_iter()
        .filter_map(|h| h.join().ok())
        .collect();
    for h in reader_handles {
        h.join().ok();
    }
    outcomes
}

/// How many acked writes per connection the verification phase re-reads.
const VERIFY_PER_CONN: usize = 64;

/// Run one scenario end to end and return its report (invariant
/// violations included — callers assert `report.passed()`).
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    let t_start = Instant::now();
    let cluster = Arc::new(LiveCluster::new(LiveConfig {
        request_delay_us: spec.request_delay_us,
        ..LiveConfig::default()
    }));
    let db = Arc::new(Database::new(cluster.clone()));
    for t in &spec.tenants {
        db.execute_ddl(&format!(
            "CREATE TABLE {}_items ( \
               g VARCHAR(24) NOT NULL, \
               k VARCHAR(24) NOT NULL, \
               v VARCHAR(64), \
               PRIMARY KEY (g, k) )",
            t.name
        ))
        .expect("scenario DDL");
        db.bulk_load(
            &format!("{}_items", t.name),
            (0..spec.keys_per_tenant).map(|i| tuple!["r", key_label(i).as_str(), "seed"]),
        )
        .expect("scenario preload");
    }
    // Generous SLO at the registry: scenario statements must admit; the
    // per-tenant SLOs are asserted from the *client-measured* side.
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 50, 2),
        SloConfig {
            slo_ms: 1e9,
            interval_confidence: 1.0,
            allow_degrade: true,
        },
    ));
    for t in &spec.tenants {
        let admission = registry
            .register(
                &format!("{}.point", t.name),
                &format!(
                    "SELECT * FROM {}_items WHERE g = <g> AND k = <k> LIMIT 1",
                    t.name
                ),
            )
            .expect("register point statement");
        assert!(
            matches!(
                admission,
                Admission::Admitted { .. } | Admission::Degraded { .. }
            ),
            "point statement not admitted: {admission:?}"
        );
        registry
            .register(
                &format!("{}.scan", t.name),
                &format!("SELECT * FROM {}_items WHERE g = <g> LIMIT 25", t.name),
            )
            .expect("register scan statement");
    }
    if spec.controls.enabled {
        registry.set_overload(OverloadConfig {
            default_tenant_capacity: None,
            default_policy: BudgetPolicy::Reject,
            rebalance_max_op_share: spec.controls.rebalance_max_op_share,
            rebalance_min_ops: spec.controls.rebalance_min_ops,
        });
        for t in &spec.tenants {
            if t.budget.is_some() {
                registry.set_tenant_budget(&t.name, t.budget, t.policy);
            }
        }
    }
    let mut server = PiqlServer::start_tuned(
        registry.clone(),
        "127.0.0.1:0",
        ServerTuning {
            dispatch_threads: spec.dispatch_threads,
            max_in_flight_per_conn: if spec.controls.enabled {
                spec.controls.max_in_flight_per_conn
            } else {
                0
            },
        },
    )
    .expect("scenario server start");
    if spec.controls.enabled && spec.controls.rebalance_max_op_share > 0.0 {
        // Auto-rebalance rides the revalidation sweep.
        server.enable_revalidation(Duration::from_millis(200));
    }
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let ctx = WorkerCtx {
        addr,
        seed: spec.seed,
        requests_per_conn: spec.requests_per_conn,
        duration: spec.duration,
        keys: spec.keys_per_tenant,
        zipf_exponent: spec.zipf_exponent,
        write_fraction: spec.write_fraction,
        think: spec.think,
        diurnal_cycles: spec.diurnal_cycles,
        stop: stop.clone(),
    };
    let mut worker_handles: Vec<JoinHandle<ConnOutcome>> = Vec::new();
    for (ti, t) in spec.tenants.iter().enumerate() {
        for ci in 0..t.connections {
            let ctx = ctx.clone();
            let t = t.clone();
            let h = thread::Builder::new()
                .name(format!("scn-{ti}-{ci}"))
                .spawn(move || conn_worker(ctx, t, ti, ci))
                .expect("spawn scenario worker");
            worker_handles.push(h);
        }
    }
    let injector = {
        let timeline = build_timeline(spec);
        let cluster = cluster.clone();
        let global_stop = stop.clone();
        let keys = spec.keys_per_tenant;
        let zipf_exponent = spec.zipf_exponent;
        let seed = spec.seed;
        thread::Builder::new()
            .name("scn-faults".into())
            .spawn(move || {
                inject_faults(
                    timeline,
                    cluster,
                    addr,
                    keys,
                    zipf_exponent,
                    seed,
                    global_stop,
                )
            })
            .expect("spawn fault injector")
    };
    // Wall-clock mode: cut the run after `duration`. Fixed-count mode:
    // workers stop on their own.
    if spec.requests_per_conn.is_none() {
        let deadline = Instant::now() + spec.duration;
        while Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    }
    let outcomes: Vec<ConnOutcome> = worker_handles
        .into_iter()
        .filter_map(|h| h.join().ok())
        .collect();
    stop.store(true, Ordering::Relaxed);
    let crowd_outcomes = injector.join().unwrap_or_default();

    // ---- verification phase: clear faults and controls, then re-read
    // every sampled acked write through the public protocol.
    cluster.set_request_delay_us(0);
    for budget in registry.tenant_budgets() {
        budget.configure(None, BudgetPolicy::Reject);
    }
    let mut verified_per_tenant = vec![(0u64, 0u64); spec.tenants.len()];
    if let Ok(mut verifier) = Client::connect(addr) {
        for out in &outcomes {
            if out.acked.is_empty() {
                continue;
            }
            let point = format!("{}.point", spec.tenants[out.tenant_idx].name);
            let step = (out.acked.len() / VERIFY_PER_CONN).max(1);
            for k in out.acked.iter().step_by(step) {
                let found = verifier
                    .request_raw(&Request::Execute {
                        name: point.clone(),
                        params: vec![
                            Value::Varchar(out.write_group.clone()).into(),
                            Value::Varchar(k.clone()).into(),
                        ],
                        cursor: None,
                    })
                    .ok()
                    .filter(|resp| resp.get("ok").and_then(Json::as_bool) == Some(true))
                    .and_then(|resp| match resp.get("rows") {
                        Some(Json::Arr(rows)) => Some(rows.len()),
                        _ => None,
                    })
                    == Some(1);
                let slot = &mut verified_per_tenant[out.tenant_idx];
                if found {
                    slot.0 += 1;
                } else {
                    slot.1 += 1;
                }
            }
        }
    }
    let server_overload = sample_overload(addr);

    // ---- aggregate per tenant.
    let mut tenants = Vec::with_capacity(spec.tenants.len());
    let mut violations = Vec::new();
    for (ti, t) in spec.tenants.iter().enumerate() {
        let mine: Vec<&ConnOutcome> = outcomes.iter().filter(|o| o.tenant_idx == ti).collect();
        let mut latencies: Vec<u64> = mine
            .iter()
            .flat_map(|o| o.latencies_us.iter().copied())
            .collect();
        let (verified, lost) = verified_per_tenant[ti];
        let report = TenantReport {
            tenant: t.name.clone(),
            connections: t.connections,
            sent: mine.iter().map(|o| o.sent).sum(),
            ok: mine.iter().map(|o| o.ok).sum(),
            degraded: mine.iter().map(|o| o.degraded).sum(),
            rejected: mine.iter().map(|o| o.rejected).sum(),
            errors: mine.iter().map(|o| o.errors).sum(),
            acked_writes: mine.iter().map(|o| o.acked.len() as u64).sum(),
            verified_writes: verified,
            lost_writes: lost,
            p50_ms: percentile_ms(&mut latencies, 0.50),
            p99_ms: percentile_ms(&mut latencies, 0.99),
            slo_ms: t.slo_ms,
            crowd_sent: crowd_outcomes
                .iter()
                .filter(|c| c.tenant == t.name)
                .map(|c| c.sent)
                .sum(),
            crowd_ok: crowd_outcomes
                .iter()
                .filter(|c| c.tenant == t.name)
                .map(|c| c.ok)
                .sum(),
            crowd_rejected: crowd_outcomes
                .iter()
                .filter(|c| c.tenant == t.name)
                .map(|c| c.rejected)
                .sum(),
        };
        if report.lost_writes > 0 {
            violations.push(format!(
                "tenant {}: {} acked writes lost",
                t.name, report.lost_writes
            ));
        }
        if t.assert_slo && !latencies.is_empty() && report.p99_ms > t.slo_ms {
            violations.push(format!(
                "tenant {}: p99 {:.2}ms over SLO {:.2}ms",
                t.name, report.p99_ms, t.slo_ms
            ));
        }
        if report.errors > 0 {
            let sample = mine
                .iter()
                .find_map(|o| o.error_sample.clone())
                .unwrap_or_default();
            violations.push(format!(
                "tenant {}: {} unexpected errors ({sample})",
                t.name, report.errors
            ));
        }
        for o in &mine {
            if o.sent > 0 && o.ok + o.degraded + o.rejected == 0 {
                violations.push(format!(
                    "tenant {}: connection {} starved ({} sent, none answered)",
                    t.name, o.conn_idx, o.sent
                ));
            }
        }
        tenants.push(report);
    }
    if tenants.iter().map(|t| t.sent).sum::<u64>() == 0 {
        violations.push("no operations were issued".to_string());
    }
    let fingerprint = outcomes.iter().fold(0u64, |acc, o| acc ^ o.fingerprint);
    drop(server);
    ScenarioReport {
        seed: spec.seed,
        controls_enabled: spec.controls.enabled,
        fingerprint,
        elapsed_ms: t_start.elapsed().as_millis() as u64,
        tenants,
        server: server_overload,
        violations,
    }
}

/// Pull the server's overload counters from a `stats` call.
fn sample_overload(addr: SocketAddr) -> ServerOverload {
    let mut out = ServerOverload::default();
    if let Ok(mut client) = Client::connect(addr) {
        if let Ok(stats) = client.stats() {
            if let Some(ov) = stats.get("overload") {
                let grab =
                    |key: &str| ov.get(key).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
                out.backpressure_stalls = grab("backpressure_stalls");
                out.budget_rejected = grab("budget_rejected");
                out.budget_shed = grab("budget_shed");
                out.auto_rebalances = grab("auto_rebalances");
            }
        }
    }
    out
}
