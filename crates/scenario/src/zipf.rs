//! Zipfian key popularity, the standard skewed-access model for
//! social-network workloads (the paper's motivating domain, §2): a few
//! hot entities absorb most reads. The sampler is the classic
//! Gray et al. / YCSB construction — precompute the generalized
//! harmonic number `zeta(n, theta)` once, then each draw is O(1).

use rand::Rng;

/// O(1) Zipfian sampler over `0..n` with exponent `theta` in `[0, 1)`.
///
/// `theta = 0` degenerates to uniform; YCSB's default skew is `0.99`.
/// Draws are a pure function of the RNG stream, so a seeded generator
/// yields an identical key sequence on every run.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Build a sampler over `0..n`. `theta` is clamped to `[0, 0.999]`
    /// (the closed-form eta below requires `theta < 1`).
    pub fn new(n: u64, theta: f64) -> Zipfian {
        let n = n.max(1);
        let theta = theta.clamp(0.0, 0.999);
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Draw one rank; rank 0 is the hottest key.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n > 1 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn in_range_and_deterministic() {
        let z = Zipfian::new(1000, 0.99);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = z.sample(&mut a);
            assert!(x < 1000);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn skews_toward_low_ranks() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(11);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of keys takes well over half the
        // draws; uniform would give ~1%.
        assert!(
            head as f64 / draws as f64 > 0.4,
            "head share {head}/{draws}"
        );
    }

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0u32; 100];
        for _ in 0..50_000 {
            hits[z.sample(&mut rng) as usize] += 1;
        }
        let max = *hits.iter().max().unwrap_or(&0);
        let min = *hits.iter().min().unwrap_or(&0);
        assert!(min > 0 && max < 5 * min.max(1), "min {min} max {max}");
    }
}
