//! Scenario outcomes: per-tenant counters, latency percentiles, the
//! deterministic operation-stream fingerprint, and the invariant
//! violations (if any). Reports render to the same tiny JSON the server
//! speaks, so benches can write them straight into `BENCH_scenario.json`.

use piql_server::Json;

/// Latency percentile over a sample of microsecond measurements.
/// Sorts in place; empty samples report 0.
pub fn percentile_ms(samples: &mut [u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 * p).ceil() as usize)
        .saturating_sub(1)
        .min(samples.len() - 1);
    samples[rank] as f64 / 1_000.0
}

/// One tenant's aggregated outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub tenant: String,
    pub connections: usize,
    /// Requests issued by steady-state connections.
    pub sent: u64,
    /// Successful full-plan responses.
    pub ok: u64,
    /// Successful responses served from the shed (degraded) plan.
    pub degraded: u64,
    /// `budget-exceeded` rejections.
    pub rejected: u64,
    /// Any other failure (transport errors, unexpected server errors).
    pub errors: u64,
    /// Acked writes recorded by this tenant's connections.
    pub acked_writes: u64,
    /// Acked writes re-read and found intact during verification.
    pub verified_writes: u64,
    /// Acked writes that verification could not find (must be 0).
    pub lost_writes: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub slo_ms: f64,
    /// Flash-crowd traffic against this tenant (tracked separately so
    /// crowd rejections don't pollute steady-state counters).
    pub crowd_sent: u64,
    pub crowd_ok: u64,
    pub crowd_rejected: u64,
}

impl TenantReport {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tenant", Json::str(self.tenant.clone())),
            ("connections", Json::Int(self.connections as i64)),
            ("sent", Json::Int(self.sent as i64)),
            ("ok", Json::Int(self.ok as i64)),
            ("degraded", Json::Int(self.degraded as i64)),
            ("rejected", Json::Int(self.rejected as i64)),
            ("errors", Json::Int(self.errors as i64)),
            ("acked_writes", Json::Int(self.acked_writes as i64)),
            ("verified_writes", Json::Int(self.verified_writes as i64)),
            ("lost_writes", Json::Int(self.lost_writes as i64)),
            ("p50_ms", Json::Float(self.p50_ms)),
            ("p99_ms", Json::Float(self.p99_ms)),
            ("slo_ms", Json::Float(self.slo_ms)),
            ("crowd_sent", Json::Int(self.crowd_sent as i64)),
            ("crowd_ok", Json::Int(self.crowd_ok as i64)),
            ("crowd_rejected", Json::Int(self.crowd_rejected as i64)),
        ])
    }
}

/// Server-side overload counters sampled from `stats` at the end of the
/// run (0 when the stats call failed).
#[derive(Debug, Clone, Default)]
pub struct ServerOverload {
    pub backpressure_stalls: u64,
    pub budget_rejected: u64,
    pub budget_shed: u64,
    pub auto_rebalances: u64,
}

impl ServerOverload {
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "backpressure_stalls",
                Json::Int(self.backpressure_stalls as i64),
            ),
            ("budget_rejected", Json::Int(self.budget_rejected as i64)),
            ("budget_shed", Json::Int(self.budget_shed as i64)),
            ("auto_rebalances", Json::Int(self.auto_rebalances as i64)),
        ])
    }
}

/// The full outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub seed: u64,
    pub controls_enabled: bool,
    /// XOR of every steady-state connection's FNV op-stream fingerprint —
    /// order-independent, so a re-run with the same seed must reproduce
    /// it exactly (fixed-count mode).
    pub fingerprint: u64,
    pub elapsed_ms: u64,
    pub tenants: Vec<TenantReport>,
    pub server: ServerOverload,
    /// Invariant violations; an empty list means the run passed.
    pub violations: Vec<String>,
}

impl ScenarioReport {
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == name)
    }

    pub fn total_sent(&self) -> u64 {
        self.tenants.iter().map(|t| t.sent).sum()
    }

    pub fn total_rejected(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.rejected + t.crowd_rejected)
            .sum()
    }

    pub fn total_lost_writes(&self) -> u64 {
        self.tenants.iter().map(|t| t.lost_writes).sum()
    }

    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn to_json(&self) -> Json {
        Json::Arr(vec![self.to_json_obj()])
    }

    /// The report as a single JSON object (what benches embed).
    pub fn to_json_obj(&self) -> Json {
        Json::obj([
            ("seed", Json::Int(self.seed as i64)),
            ("controls_enabled", Json::Bool(self.controls_enabled)),
            (
                "fingerprint",
                Json::str(format!("{:016x}", self.fingerprint)),
            ),
            ("elapsed_ms", Json::Int(self.elapsed_ms as i64)),
            (
                "tenants",
                Json::Arr(self.tenants.iter().map(TenantReport::to_json).collect()),
            ),
            ("server", self.server.to_json()),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}
