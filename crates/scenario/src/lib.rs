//! # piql-scenario
//!
//! A deterministic, fault-injecting workload harness for the PIQL query
//! service — the "million-user Tuesday" the paper's SLO machinery exists
//! for (§2, §10): many tenants sharing one server, Zipf-skewed key
//! popularity, diurnal load swings, and the faults that turn a busy day
//! into an incident (a slow shard, a flash crowd, a wedged consumer).
//!
//! Unlike a benchmark, a scenario *asserts invariants* rather than just
//! printing numbers:
//!
//! * acked writes are never lost,
//! * tenants marked `assert_slo` keep their measured p99 under target,
//! * no connection starves, and
//! * the only tolerated failure is the typed `budget-exceeded` reject.
//!
//! Every random choice derives from [`ScenarioSpec::seed`], and each
//! connection fingerprints its operation stream before sending, so a
//! re-run with the same spec reproduces the same stream (and, in
//! fixed-count mode, the same admission/rejection counts).
//!
//! The harness drives the server's three overload controls end to end:
//! per-connection in-flight backpressure (`ServerTuning`), per-tenant
//! admission budgets (`OverloadConfig` / `TenantBudget`), and skew-
//! triggered auto-rebalance — see `ARCHITECTURE.md` §"Overload control
//! & scenario harness".

pub mod driver;
pub mod report;
pub mod spec;
pub mod zipf;

pub use driver::run_scenario;
pub use report::{percentile_ms, ScenarioReport, ServerOverload, TenantReport};
pub use spec::{Controls, Fault, ScenarioSpec, TenantSpec};
pub use zipf::Zipfian;
