//! Scenario-harness integration tests: seeded reproducibility, the
//! flash-crowd isolation e2e, and a fault-mix smoke run. Sizes are kept
//! small (debug build, possibly one core); the 30-second version lives
//! in `crates/bench/benches/scenario.rs`.

use std::time::Duration;

use piql_scenario::{run_scenario, Controls, Fault, ScenarioSpec, TenantSpec};
use piql_server::BudgetPolicy;

/// Fixed-count spec: every connection issues exactly `n` requests, think
/// time zero, so the operation stream — and every admission decision
/// driven purely by budget configuration — is a pure function of the
/// seed.
fn fixed_spec(seed: u64, n: u64) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        requests_per_conn: Some(n),
        tenants: vec![
            // Capacity-zero reject budget: every read is deterministically
            // rejected at admission (writes are DML and bypass budgets).
            TenantSpec {
                budget: Some(0),
                policy: BudgetPolicy::Reject,
                ..TenantSpec::new("busy", 3)
            },
            TenantSpec::new("calm", 3),
        ],
        keys_per_tenant: 200,
        zipf_exponent: 0.99,
        write_fraction: 0.25,
        think: Duration::ZERO,
        diurnal_cycles: 0,
        dispatch_threads: 2,
        request_delay_us: 0,
        controls: Controls {
            enabled: true,
            max_in_flight_per_conn: 8,
            rebalance_max_op_share: 0.0,
            rebalance_min_ops: 0,
        },
        faults: Vec::new(),
        duration: Duration::from_secs(30),
    }
}

#[test]
fn same_seed_reproduces_stream_and_admission_counts() {
    let a = run_scenario(&fixed_spec(42, 40));
    let b = run_scenario(&fixed_spec(42, 40));
    assert!(a.passed(), "first run violations: {:?}", a.violations);
    assert!(b.passed(), "second run violations: {:?}", b.violations);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "op-stream fingerprint drifted"
    );
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.tenant, tb.tenant);
        assert_eq!(ta.sent, tb.sent, "tenant {} sent", ta.tenant);
        assert_eq!(ta.rejected, tb.rejected, "tenant {} rejected", ta.tenant);
        assert_eq!(
            ta.acked_writes, tb.acked_writes,
            "tenant {} acked writes",
            ta.tenant
        );
    }
    // The capacity-zero tenant must have had every read rejected and
    // every write (DML, budget-exempt) acked — and a different seed must
    // produce a different stream.
    let busy = a.tenant("busy").expect("busy tenant report");
    assert_eq!(busy.sent, 3 * 40);
    assert!(busy.rejected > 0, "no reads rejected: {busy:?}");
    assert_eq!(busy.ok + busy.rejected, busy.sent, "busy: {busy:?}");
    assert_eq!(busy.ok as u64, busy.acked_writes, "busy: {busy:?}");
    let c = run_scenario(&fixed_spec(43, 40));
    assert_ne!(a.fingerprint, c.fingerprint, "seed not driving the stream");
}

#[test]
fn acked_writes_survive_reported_loss_free() {
    let mut spec = fixed_spec(7, 60);
    spec.write_fraction = 0.5;
    let report = run_scenario(&spec);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.total_lost_writes(), 0);
    let calm = report.tenant("calm").expect("calm tenant report");
    assert!(calm.acked_writes > 0, "no writes acked: {calm:?}");
    assert!(
        calm.verified_writes > 0,
        "verification did not run: {calm:?}"
    );
}

/// The satellite e2e: with overload controls on, a flash crowd against a
/// budgeted tenant is rejected at admission while an idle tenant's p99
/// holds under its SLO.
#[test]
fn flash_crowd_is_rejected_and_idle_tenant_p99_holds() {
    let spec = ScenarioSpec {
        seed: 0xf1a5,
        duration: Duration::from_millis(2_500),
        requests_per_conn: None,
        tenants: vec![
            TenantSpec {
                slo_ms: 250.0,
                assert_slo: true,
                ..TenantSpec::new("calm", 4)
            },
            TenantSpec {
                budget: Some(4),
                policy: BudgetPolicy::Reject,
                ..TenantSpec::new("burst", 2)
            },
        ],
        keys_per_tenant: 500,
        zipf_exponent: 0.99,
        write_fraction: 0.1,
        think: Duration::from_millis(1),
        diurnal_cycles: 0,
        dispatch_threads: 4,
        request_delay_us: 100,
        controls: Controls {
            enabled: true,
            max_in_flight_per_conn: 16,
            rebalance_max_op_share: 0.0,
            rebalance_min_ops: 0,
        },
        faults: vec![Fault::FlashCrowd {
            at: Duration::from_millis(300),
            until: Duration::from_millis(2_000),
            tenant: "burst".to_string(),
            extra_connections: 6,
        }],
    };
    let report = run_scenario(&spec);
    assert!(report.passed(), "violations: {:?}", report.violations);
    let burst = report.tenant("burst").expect("burst tenant report");
    assert!(
        burst.crowd_rejected > 0,
        "flash crowd was never rejected: {burst:?}"
    );
    assert!(
        report.server.budget_rejected >= burst.crowd_rejected,
        "server counters disagree: {:?} vs {burst:?}",
        report.server
    );
    let calm = report.tenant("calm").expect("calm tenant report");
    assert!(
        calm.sent > 0 && calm.p99_ms <= calm.slo_ms,
        "calm: {calm:?}"
    );
}

/// Fault-mix smoke: a slow shard and a paused (never-reading) consumer
/// must not lose acked writes, starve connections, or surface untyped
/// errors while backpressure and budgets are active.
#[test]
fn fault_mix_preserves_invariants() {
    let spec = ScenarioSpec {
        seed: 99,
        duration: Duration::from_millis(1_500),
        requests_per_conn: None,
        tenants: vec![
            TenantSpec::new("t0", 2),
            TenantSpec {
                budget: Some(8),
                policy: BudgetPolicy::Shed,
                ..TenantSpec::new("t1", 2)
            },
        ],
        keys_per_tenant: 300,
        zipf_exponent: 0.9,
        write_fraction: 0.3,
        think: Duration::from_millis(1),
        diurnal_cycles: 2,
        dispatch_threads: 2,
        request_delay_us: 0,
        controls: Controls {
            enabled: true,
            max_in_flight_per_conn: 8,
            rebalance_max_op_share: 0.0,
            rebalance_min_ops: 0,
        },
        faults: vec![
            Fault::SlowShard {
                at: Duration::from_millis(200),
                until: Duration::from_millis(700),
                delay_us: 2_000,
            },
            Fault::PausedReader {
                at: Duration::from_millis(200),
                tenant: "t0".to_string(),
                frames: 64,
            },
        ],
    };
    let report = run_scenario(&spec);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.total_lost_writes(), 0);
    assert!(report.total_sent() > 0);
}
