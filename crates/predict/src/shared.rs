//! Concurrent model ingest — the online half of §6.1.
//!
//! The original pipeline trains a [`ModelStore`] once and freezes it; a
//! serving system needs the opposite: histograms that keep absorbing live
//! operator samples while admission predictions read a consistent state.
//! [`SharedModelStore`] splits those concerns:
//!
//! * **Readers** take an immutable `Arc<ModelStore>` *snapshot* (one
//!   cheap read-lock hit) and predict lock-free against it.
//! * **Writers** append into a *current-interval* accumulator behind its
//!   own short mutex ([`SharedModelStore::record_live`]) — the published
//!   snapshot is never touched mid-prediction.
//! * **Rotation** ([`SharedModelStore::rotate`]) folds the accumulator in
//!   as the newest interval of a fresh snapshot (dropping the oldest, a
//!   ring over time — each rotation is one observed SLO interval, Figure
//!   5(a)) and atomically swaps the published `Arc`.
//!
//! After `n_intervals` rotations the seed model (trained offline or
//! fabricated by a test kit) has been fully replaced by live observation —
//! predictions track the store the service actually runs on.

use crate::histogram::LatencyHistogram;
use crate::model::{ModelKey, ModelStore};
use crate::predict::SloPredictor;
use piql_analysis::ordered::{Mutex, RwLock};
use piql_analysis::rank;
use piql_kv::{Micros, OpSample};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Current-interval accumulator.
#[derive(Default)]
struct LiveInterval {
    histograms: BTreeMap<ModelKey, LatencyHistogram>,
    samples: u64,
}

/// Callback invoked under the rotation lock with each drained interval —
/// the journaling hook durability uses to persist rotations in order.
pub type RotationObserver = Box<dyn Fn(&BTreeMap<ModelKey, LatencyHistogram>) + Send + Sync>;

/// A [`ModelStore`] that can be read consistently while being appended to.
pub struct SharedModelStore {
    published: RwLock<Arc<ModelStore>>,
    live: Mutex<LiveInterval>,
    /// Serializes rotations: two concurrent `rotate` calls would otherwise
    /// both build from the same snapshot and the losing swap would silently
    /// discard the winner's drained interval.
    rotate_lock: Mutex<()>,
    /// Observer for drained intervals (see [`RotationObserver`]). Called
    /// with the rotation lock held, so observed intervals arrive in
    /// exactly the order they were folded into the published store.
    observer: RwLock<Option<RotationObserver>>,
    rotations: std::sync::atomic::AtomicU64,
}

impl SharedModelStore {
    /// Seed with an initial (offline-trained or fabricated) store.
    pub fn new(seed: ModelStore) -> Self {
        Self::from_snapshot(Arc::new(seed))
    }

    /// Seed from an already-shared snapshot (no copy).
    pub fn from_snapshot(seed: Arc<ModelStore>) -> Self {
        SharedModelStore {
            published: RwLock::new(rank::MODEL_PUBLISHED, "model.published", seed),
            live: Mutex::new(rank::MODEL_LIVE, "model.live", LiveInterval::default()),
            rotate_lock: Mutex::new(rank::MODEL_ROTATE, "model.rotate", ()),
            observer: RwLock::new(rank::MODEL_OBSERVER, "model.observer", None),
            rotations: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Install (or clear) the rotation observer. Durability uses this to
    /// append each drained interval to the write-ahead log; a restarted
    /// process replays them with [`ModelStore::rotated`] and arrives at
    /// the same published models.
    pub fn set_rotation_observer(&self, observer: Option<RotationObserver>) {
        *self.observer.write() = observer;
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<ModelStore> {
        self.published.read().clone()
    }

    /// The published snapshot paired with the number of rotations that
    /// produced it, read atomically (takes the rotation lock, so no
    /// rotation is mid-flight between the two reads). Durability uses the
    /// pair to checkpoint models with an exact rotation sequence number.
    pub fn snapshot_with_rotations(&self) -> (Arc<ModelStore>, u64) {
        let _rotating = self.rotate_lock.lock();
        (
            self.snapshot(),
            self.rotations.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// A predictor over the current snapshot. Successive calls may see
    /// newer models; one predictor instance never does.
    pub fn predictor(&self) -> SloPredictor {
        SloPredictor::from_snapshot(self.snapshot())
    }

    /// Append one live sample to the current (unpublished) interval. The
    /// key is snapped to the training lattice so live mass accumulates on
    /// the same grid points lookups resolve to.
    pub fn record_live(&self, key: ModelKey, latency: Micros) {
        let mut live = self.live.lock();
        live.histograms
            .entry(key.snapped())
            .or_insert_with(LatencyHistogram::standard)
            .record(latency);
        live.samples += 1;
    }

    /// Fold a batch of storage-layer samples (see
    /// [`piql_kv::KvStore::drain_samples`]) into the current interval.
    pub fn ingest(&self, samples: &[OpSample]) {
        if samples.is_empty() {
            return;
        }
        let mut live = self.live.lock();
        for s in samples {
            live.histograms
                .entry(ModelKey::from_tag(&s.tag))
                .or_insert_with(LatencyHistogram::standard)
                .record(s.micros);
            live.samples += 1;
        }
    }

    /// Samples recorded since the last rotation.
    pub fn pending_samples(&self) -> u64 {
        self.live.lock().samples
    }

    /// Intervals rotated in so far.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Publish the current live interval: the accumulator becomes the
    /// newest interval of a new snapshot (the oldest rotates out) and a
    /// fresh accumulator starts. Returns the number of samples folded;
    /// an empty accumulator is a no-op (the snapshot is left untouched
    /// rather than diluted with an all-empty interval).
    pub fn rotate(&self) -> u64 {
        // One rotation at a time: the read-build-swap below must not
        // interleave with another rotation's, or one drained interval
        // would be lost to the losing Arc swap.
        let _rotating = self.rotate_lock.lock();
        let interval = {
            let mut live = self.live.lock();
            if live.samples == 0 {
                return 0;
            }
            std::mem::take(&mut *live)
        };
        // Build the new store outside any lock the readers or writers
        // need: `published` is only write-locked for the Arc swap.
        let current = self.snapshot();
        let next = Arc::new(current.rotated(interval.histograms.clone()));
        *self.published.write() = next;
        // journal the drained interval while still holding the rotation
        // lock: log order == fold order, so replay converges
        if let Some(observer) = self.observer.read().as_ref() {
            observer(&interval.histograms);
        }
        self.rotations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        interval.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OpKind;
    use piql_kv::MILLIS;

    fn key(alpha_c: u32) -> ModelKey {
        ModelKey {
            op: OpKind::IndexScan,
            alpha_c,
            alpha_j: 1,
            beta: 40,
        }
    }

    fn seeded(n_intervals: usize, latency: Micros) -> SharedModelStore {
        let mut store = ModelStore::new(n_intervals);
        for i in 0..n_intervals {
            for _ in 0..10 {
                store.record(i, key(10), latency);
            }
        }
        SharedModelStore::new(store)
    }

    #[test]
    fn rotation_replaces_oldest_interval_and_updates_overall() {
        let shared = seeded(3, 5 * MILLIS);
        assert_eq!(shared.rotate(), 0, "empty accumulator is a no-op");
        for _ in 0..20 {
            shared.record_live(key(7), 50 * MILLIS); // snaps to α=10
        }
        assert_eq!(shared.pending_samples(), 20);
        assert_eq!(shared.rotate(), 20);
        assert_eq!(shared.pending_samples(), 0);
        let snap = shared.snapshot();
        assert_eq!(snap.n_intervals(), 3, "interval count is a ring");
        // newest interval holds the slow live data
        let newest = snap.lookup(2, key(10)).unwrap();
        assert!(newest.quantile_ms(0.5) > 40.0);
        // older intervals still fast
        assert!(snap.lookup(0, key(10)).unwrap().quantile_ms(1.0) <= 6.0);
        // overall mixes 20 fast (one seed interval rotated out) + 20 slow
        assert_eq!(snap.lookup_overall(key(10)).unwrap().count(), 40);
    }

    #[test]
    fn seed_is_fully_replaced_after_n_rotations() {
        let shared = seeded(2, 5 * MILLIS);
        for _ in 0..2 {
            shared.record_live(key(10), 100 * MILLIS);
            shared.rotate();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.lookup_overall(key(10)).unwrap().count(), 2);
        assert!(snap.lookup_overall(key(10)).unwrap().quantile_ms(0.5) > 90.0);
    }

    #[test]
    fn predictor_snapshot_is_isolated_from_concurrent_rotation() {
        let shared = seeded(2, 5 * MILLIS);
        let before = shared.predictor();
        shared.record_live(key(10), 200 * MILLIS);
        shared.rotate();
        let after = shared.predictor();
        let h_before = before.models.lookup_overall(key(10)).unwrap();
        let h_after = after.models.lookup_overall(key(10)).unwrap();
        assert!(h_before.quantile_ms(1.0) <= 6.0, "old snapshot unchanged");
        assert!(h_after.quantile_ms(1.0) > 100.0, "new snapshot sees drift");
    }
}
