//! Query-plan prediction (§6.2) and SLO-violation risk (§6.3, Figure 5).
//!
//! Serial plan sections sum (convolve); the model treats operators as
//! blocking, which ignores pipeline overlap and therefore errs on the
//! conservative side — the goal is predicting SLO *compliance*, not exact
//! response time. The per-interval histograms turn the p99 into a
//! distribution over intervals, from which the violation risk is read.

use crate::histogram::Distribution;
use crate::model::{ModelKey, ModelStore, OpKind};
use piql_core::opt::Compiled;
use piql_core::plan::physical::{PhysicalPlan, ScanLimit};

/// One operator's model parameters extracted from the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTheta {
    pub key: ModelKey,
}

/// The remote-operator chain of a plan as model keys, including the extra
/// dereference rounds of non-covering secondary-index reads (modeled as an
/// [`OpKind::IndexFKJoin`] of the fetched entries, which is exactly what
/// the executor issues).
pub fn plan_thetas(compiled: &Compiled) -> Vec<OpTheta> {
    plan_thetas_indexed(compiled)
        .into_iter()
        .map(|(_, t)| t)
        .collect()
}

/// Like [`plan_thetas`], but each theta is tagged with the index of the
/// remote operator (in [`PhysicalPlan::remote_ops`] order) it models — a
/// deref theta shares its scan's index. This is the join key the audit
/// subsystem uses to attach cost terms to bound-derivation tree nodes.
pub fn plan_thetas_indexed(compiled: &Compiled) -> Vec<(usize, OpTheta)> {
    let mut out = Vec::new();
    for (idx, op) in compiled.physical.remote_ops().into_iter().enumerate() {
        collect_op_thetas(idx, op, &mut out);
    }
    out
}

fn collect_op_thetas(idx: usize, op: &PhysicalPlan, out: &mut Vec<(usize, OpTheta)>) {
    match op {
        PhysicalPlan::IndexScan { spec, .. } => {
            let alpha = match &spec.limit {
                ScanLimit::Bounded { count, .. } => *count,
                ScanLimit::Unbounded { estimate } => *estimate,
            };
            out.push((
                idx,
                OpTheta {
                    key: ModelKey {
                        op: OpKind::IndexScan,
                        alpha_c: alpha.min(u32::MAX as u64) as u32,
                        alpha_j: 1,
                        beta: spec.row_bytes.min(u32::MAX as u64) as u32,
                    },
                },
            ));
            if spec.deref {
                out.push((
                    idx,
                    OpTheta {
                        key: ModelKey {
                            op: OpKind::IndexFKJoin,
                            alpha_c: alpha.min(u32::MAX as u64) as u32,
                            alpha_j: 1,
                            beta: spec.row_bytes.min(u32::MAX as u64) as u32,
                        },
                    },
                ));
            }
        }
        PhysicalPlan::IndexFKJoin {
            child, row_bytes, ..
        } => {
            let alpha_c = child.bounds().tuples.min(u32::MAX as u64) as u32;
            out.push((
                idx,
                OpTheta {
                    key: ModelKey {
                        op: OpKind::IndexFKJoin,
                        alpha_c,
                        alpha_j: 1,
                        beta: (*row_bytes).min(u32::MAX as u64) as u32,
                    },
                },
            ));
        }
        PhysicalPlan::SortedIndexJoin { child, spec, .. } => {
            let alpha_c = child.bounds().tuples.min(u32::MAX as u64) as u32;
            let alpha_j = spec.per_key.min(u32::MAX as u64) as u32;
            out.push((
                idx,
                OpTheta {
                    key: ModelKey {
                        op: OpKind::SortedIndexJoin,
                        alpha_c,
                        alpha_j,
                        beta: spec.row_bytes.min(u32::MAX as u64) as u32,
                    },
                },
            ));
            if spec.deref {
                out.push((
                    idx,
                    OpTheta {
                        key: ModelKey {
                            op: OpKind::IndexFKJoin,
                            alpha_c: alpha_c.saturating_mul(alpha_j),
                            alpha_j: 1,
                            beta: spec.row_bytes.min(u32::MAX as u64) as u32,
                        },
                    },
                ));
            }
        }
        _ => {}
    }
}

/// One operator term's contribution to a plan's predicted latency
/// (dominance attribution for audit diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaAttribution {
    /// Index of the remote operator (in `remote_ops()` order) this term
    /// models; deref terms share their operator's index.
    pub op_index: usize,
    pub key: ModelKey,
    /// Mean of the term's pooled latency distribution, ms (0 when the
    /// model store has no data for the key).
    pub mean_ms: f64,
    /// p99 of the term's pooled latency distribution, ms.
    pub p99_ms: f64,
    /// Fraction of the plan's total predicted mean this term accounts
    /// for, in `[0, 1]` (0 when no term has model data).
    pub share: f64,
}

/// Per-query prediction output.
#[derive(Debug, Clone)]
pub struct QueryPrediction {
    /// Predicted p99 (ms) for every training interval (Figure 5(c)).
    pub p99_per_interval_ms: Vec<f64>,
    /// The conservative headline number Table 1 reports: the max interval
    /// p99.
    pub max_p99_ms: f64,
    /// Aggregate (all intervals pooled) latency distribution.
    pub overall: Distribution,
}

impl QueryPrediction {
    /// The q-quantile of the per-interval p99 distribution (e.g. 0.9 →
    /// "the p99 stays below this in 90% of intervals").
    pub fn p99_quantile_ms(&self, q: f64) -> f64 {
        if self.p99_per_interval_ms.is_empty() {
            return 0.0;
        }
        let mut xs = self.p99_per_interval_ms.clone();
        xs.sort_by(|a, b| a.total_cmp(b));
        let idx = ((q.clamp(0.0, 1.0) * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
        xs[idx]
    }

    /// Fraction of intervals whose predicted p99 exceeds `slo_ms` — the
    /// §6.3 SLO-violation risk.
    pub fn violation_risk(&self, slo_ms: f64) -> f64 {
        if self.p99_per_interval_ms.is_empty() {
            return 0.0;
        }
        let violations = self
            .p99_per_interval_ms
            .iter()
            .filter(|&&p| p > slo_ms)
            .count();
        violations as f64 / self.p99_per_interval_ms.len() as f64
    }

    /// Whether the query is predicted to meet "`pct` of queries in each
    /// interval under `slo_ms`" for at least `interval_confidence` of
    /// intervals.
    pub fn meets_slo(&self, slo_ms: f64, interval_confidence: f64) -> bool {
        self.violation_risk(slo_ms) <= 1.0 - interval_confidence
    }
}

/// The predictor: a trained model store applied to compiled plans.
///
/// Holds an immutable **snapshot** (`Arc`) of the models: predictions over
/// one predictor instance are internally consistent even while a
/// [`SharedModelStore`](crate::SharedModelStore) concurrently ingests live
/// samples and publishes newer snapshots. Cloning a predictor is cheap.
#[derive(Debug, Clone)]
pub struct SloPredictor {
    pub models: std::sync::Arc<ModelStore>,
}

impl SloPredictor {
    pub fn new(models: ModelStore) -> Self {
        Self::from_snapshot(std::sync::Arc::new(models))
    }

    /// Wrap an already-shared snapshot (no copy).
    pub fn from_snapshot(models: std::sync::Arc<ModelStore>) -> Self {
        SloPredictor { models }
    }

    /// Predict the latency distribution of a compiled query.
    pub fn predict(&self, compiled: &Compiled) -> QueryPrediction {
        let thetas = plan_thetas(compiled);
        let mut p99s = Vec::with_capacity(self.models.n_intervals());
        for interval in 0..self.models.n_intervals() {
            if let Some(d) = self.compose(&thetas, Some(interval)) {
                p99s.push(d.quantile_ms(0.99));
            }
        }
        let overall = self
            .compose(&thetas, None)
            .unwrap_or_else(|| Distribution::point(0));
        let max_p99 = p99s.iter().cloned().fold(0.0f64, f64::max);
        QueryPrediction {
            p99_per_interval_ms: p99s,
            max_p99_ms: max_p99,
            overall,
        }
    }

    /// Per-term latency attribution: how much each operator theta
    /// contributes to the plan's predicted latency, from the pooled
    /// histograms. `share` is the fraction of the summed per-term means
    /// (means are additive under convolution, so this is the exact
    /// decomposition of the predicted total mean; p99 is reported per
    /// term for context but does not decompose additively).
    pub fn attribute(&self, compiled: &Compiled) -> Vec<ThetaAttribution> {
        let mut out: Vec<ThetaAttribution> = plan_thetas_indexed(compiled)
            .into_iter()
            .map(|(op_index, theta)| {
                let (mean_ms, p99_ms) = match self.models.lookup_overall(theta.key) {
                    Some(h) => {
                        let d = h.to_distribution();
                        (d.mean_ms(), d.quantile_ms(0.99))
                    }
                    None => (0.0, 0.0),
                };
                ThetaAttribution {
                    op_index,
                    key: theta.key,
                    mean_ms,
                    p99_ms,
                    share: 0.0,
                }
            })
            .collect();
        let total: f64 = out.iter().map(|a| a.mean_ms).sum();
        if total > 0.0 {
            for a in &mut out {
                a.share = a.mean_ms / total;
            }
        }
        out
    }

    /// The term that dominates the predicted latency (largest mean share),
    /// or `None` for plans with no remote operators.
    pub fn dominant_term(&self, compiled: &Compiled) -> Option<ThetaAttribution> {
        self.attribute(compiled)
            .into_iter()
            .max_by(|a, b| a.mean_ms.total_cmp(&b.mean_ms))
    }

    /// Convolve the operator distributions of one interval (`None` = pooled).
    fn compose(&self, thetas: &[OpTheta], interval: Option<usize>) -> Option<Distribution> {
        let mut acc: Option<Distribution> = None;
        for t in thetas {
            let hist = match interval {
                Some(i) => self.models.lookup(i, t.key)?,
                None => self.models.lookup_overall(t.key)?,
            };
            let d = hist.to_distribution();
            acc = Some(match acc {
                None => d,
                Some(prev) => prev.convolve(&d),
            });
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_core::catalog::{Catalog, TableDef};
    use piql_core::opt::Optimizer;
    use piql_core::parser::parse_select;
    use piql_core::value::DataType;
    use piql_kv::MILLIS;

    fn compile_thoughtstream() -> Compiled {
        let mut cat = Catalog::new();
        cat.create_table(
            TableDef::builder("subscriptions")
                .column("owner", DataType::Varchar(32))
                .column("target", DataType::Varchar(32))
                .column("approved", DataType::Bool)
                .primary_key(&["owner", "target"])
                .cardinality_limit(100, &["owner"])
                .build(),
        )
        .unwrap();
        cat.create_table(
            TableDef::builder("thoughts")
                .column("owner", DataType::Varchar(32))
                .column("timestamp", DataType::Timestamp)
                .column("text", DataType::Varchar(140))
                .primary_key(&["owner", "timestamp"])
                .build(),
        )
        .unwrap();
        Optimizer::scale_independent()
            .compile(
                &cat,
                &parse_select(
                    "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
                     WHERE thoughts.owner = s.target AND s.owner = <u> \
                     ORDER BY thoughts.timestamp DESC LIMIT 10",
                )
                .unwrap(),
            )
            .unwrap()
    }

    #[test]
    fn thoughtstream_thetas_match_section_6_2() {
        // Q = Θ_IndexScan(SubscrCard, SubscrSize) ∗
        //     Θ_SortedJoin(SubscrCard, ThoughtsCard, ThoughtSize)
        let compiled = compile_thoughtstream();
        let thetas = plan_thetas(&compiled);
        assert_eq!(thetas.len(), 2);
        assert_eq!(thetas[0].key.op, OpKind::IndexScan);
        assert_eq!(thetas[0].key.alpha_c, 100);
        assert_eq!(thetas[1].key.op, OpKind::SortedIndexJoin);
        assert_eq!(thetas[1].key.alpha_c, 100);
        assert_eq!(thetas[1].key.alpha_j, 10);
    }

    #[test]
    fn prediction_composes_and_reports_risk() {
        let mut models = ModelStore::new(4);
        // interval 3 is "slow"
        for interval in 0..4 {
            let slow = if interval == 3 { 5 } else { 1 };
            for sample in 0..50u64 {
                let scan = ModelKey {
                    op: OpKind::IndexScan,
                    alpha_c: 100,
                    alpha_j: 1,
                    beta: 40,
                };
                let join = ModelKey {
                    op: OpKind::SortedIndexJoin,
                    alpha_c: 100,
                    alpha_j: 10,
                    beta: 160,
                };
                models.record(interval, scan, (10 + sample % 5) * slow * MILLIS);
                models.record(interval, join, (20 + sample % 7) * slow * MILLIS);
            }
        }
        let predictor = SloPredictor::new(models);
        let pred = predictor.predict(&compile_thoughtstream());
        assert_eq!(pred.p99_per_interval_ms.len(), 4);
        // normal intervals: ~14+26 ≈ 40ms p99; slow interval ≈ 5x
        assert!(pred.p99_per_interval_ms[0] < 50.0);
        assert!(pred.p99_per_interval_ms[3] > 150.0);
        assert_eq!(pred.max_p99_ms, pred.p99_per_interval_ms[3]);
        // SLO 100ms: 1 of 4 intervals violates
        assert!((pred.violation_risk(100.0) - 0.25).abs() < 1e-9);
        assert!(pred.meets_slo(100.0, 0.75));
        assert!(!pred.meets_slo(100.0, 0.9));
        assert!(pred.meets_slo(1_000.0, 1.0));
    }
}
