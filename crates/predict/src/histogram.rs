//! Latency histograms — the representation of the paper's operator random
//! variables Θ (§6.1).
//!
//! Millisecond resolution is enough for interactive SLOs, so a histogram is
//! ~a few thousand u32 bins ("a kilobyte or two", §6.1). Serial plan
//! composition convolves probability masses (§6.2: summing independent
//! random variables); parallel sections combine by the distribution of the
//! max.

use piql_kv::{Micros, MILLIS};

/// Bin width: 1 ms.
const BIN_US: u64 = MILLIS;

/// A latency distribution in 1 ms bins with an overflow bin at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    bins: Vec<u64>,
    count: u64,
}

impl LatencyHistogram {
    /// `max_ms` is the largest representable latency; anything above lands
    /// in the overflow bin.
    pub fn new(max_ms: usize) -> Self {
        LatencyHistogram {
            bins: vec![0; max_ms + 1],
            count: 0,
        }
    }

    /// Default range: 0..4 s, plenty for sub-second SLOs.
    pub fn standard() -> Self {
        Self::new(4_000)
    }

    pub fn record(&mut self, latency: Micros) {
        let bin = ((latency / BIN_US) as usize).min(self.bins.len() - 1);
        self.bins[bin] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold `other`'s mass into this histogram (used when rotating live
    /// intervals into an aggregate). Bins beyond this histogram's range
    /// land in its overflow bin, preserving the conservative tail.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        let last = self.bins.len() - 1;
        for (i, &c) in other.bins.iter().enumerate() {
            self.bins[i.min(last)] += c;
        }
        self.count += other.count;
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The q-quantile (0..=1) in milliseconds (bin upper edge).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return (i + 1) as f64;
            }
        }
        self.bins.len() as f64
    }

    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 0.5) * c as f64)
            .sum();
        sum / self.count as f64
    }

    /// Sparse export for durability: ascending `(bin, count)` pairs for
    /// every nonzero bin. Round-trips through [`Self::from_sparse`].
    pub fn nonzero_bins(&self) -> Vec<(u32, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuild a standard-range histogram from [`Self::nonzero_bins`]
    /// output. Bins beyond the standard range fold into the overflow bin
    /// (same conservative tail as [`Self::merge`]).
    pub fn from_sparse(bins: impl IntoIterator<Item = (u32, u64)>) -> Self {
        let mut h = Self::standard();
        let last = h.bins.len() - 1;
        for (bin, count) in bins {
            h.bins[(bin as usize).min(last)] += count;
            h.count += count;
        }
        h
    }

    /// Probability mass function over bins (sparse: only nonzero entries).
    fn pmf(&self) -> Vec<(usize, f64)> {
        if self.count == 0 {
            return vec![(0, 1.0)];
        }
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c as f64 / self.count as f64))
            .collect()
    }

    /// Distribution of the *sum* of two independent latencies (§6.2's
    /// convolution of operator densities).
    pub fn convolve(&self, other: &LatencyHistogram) -> Distribution {
        Distribution::from_pmf(self.pmf()).convolve(&Distribution::from_pmf(other.pmf()))
    }

    /// Continuous view for further composition.
    pub fn to_distribution(&self) -> Distribution {
        Distribution::from_pmf(self.pmf())
    }
}

/// A normalized latency distribution over 1 ms bins (the result of
/// composing operator histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Sparse ascending (bin, probability) pairs.
    pmf: Vec<(usize, f64)>,
}

impl Distribution {
    pub fn point(ms: usize) -> Self {
        Distribution {
            pmf: vec![(ms, 1.0)],
        }
    }

    fn from_pmf(pmf: Vec<(usize, f64)>) -> Self {
        Distribution { pmf }
    }

    /// Sum of independent variables: PMF convolution. The support is
    /// re-compacted to at most `MAX_SUPPORT` bins to keep long chains cheap.
    pub fn convolve(&self, other: &Distribution) -> Distribution {
        const MAX_SUPPORT: usize = 4_096;
        let mut acc: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &(a, pa) in &self.pmf {
            for &(b, pb) in &other.pmf {
                *acc.entry(a + b).or_insert(0.0) += pa * pb;
            }
        }
        let mut pmf: Vec<(usize, f64)> = acc.into_iter().collect();
        if pmf.len() > MAX_SUPPORT {
            // merge adjacent bins pairwise until within budget
            while pmf.len() > MAX_SUPPORT {
                pmf = pmf
                    .chunks(2)
                    .map(|c| {
                        if c.len() == 2 {
                            (c[1].0, c[0].1 + c[1].1)
                        } else {
                            c[0]
                        }
                    })
                    .collect();
            }
        }
        Distribution { pmf }
    }

    /// Max of independent variables (parallel plan sections, §6.2):
    /// `P(max <= x) = P(a <= x) * P(b <= x)`.
    pub fn max_with(&self, other: &Distribution) -> Distribution {
        let bins: std::collections::BTreeSet<usize> =
            self.pmf.iter().chain(&other.pmf).map(|&(b, _)| b).collect();
        let cdf_at = |d: &Distribution, x: usize| -> f64 {
            d.pmf
                .iter()
                .take_while(|&&(b, _)| b <= x)
                .map(|&(_, p)| p)
                .sum()
        };
        let mut pmf = Vec::new();
        let mut prev = 0.0;
        for &b in &bins {
            let cdf = cdf_at(self, b) * cdf_at(other, b);
            if cdf > prev {
                pmf.push((b, cdf - prev));
                prev = cdf;
            }
        }
        Distribution { pmf }
    }

    /// The q-quantile in ms.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for &(b, p) in &self.pmf {
            acc += p;
            if acc + 1e-12 >= q {
                return (b + 1) as f64;
            }
        }
        self.pmf.last().map(|&(b, _)| (b + 1) as f64).unwrap_or(0.0)
    }

    pub fn mean_ms(&self) -> f64 {
        self.pmf.iter().map(|&(b, p)| (b as f64 + 0.5) * p).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(samples_ms: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::standard();
        for &s in samples_ms {
            h.record(s * MILLIS);
        }
        h
    }

    #[test]
    fn quantiles_of_simple_data() {
        let h = hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.quantile_ms(0.5), 6.0); // bin upper edge
        assert_eq!(h.quantile_ms(1.0), 11.0);
        assert_eq!(h.count(), 10);
        assert!((h.mean_ms() - 6.0).abs() < 0.6);
    }

    #[test]
    fn overflow_bin_catches_outliers() {
        let mut h = LatencyHistogram::new(10);
        h.record(3 * MILLIS);
        h.record(100 * MILLIS);
        assert_eq!(h.quantile_ms(1.0), 11.0);
    }

    #[test]
    fn convolution_shifts_support() {
        let a = hist(&[10]);
        let b = hist(&[5]);
        let d = a.convolve(&b);
        assert_eq!(d.quantile_ms(0.5), 16.0);
        // sum of uniform{1,3} and uniform{2,4} spans 3..7
        let d2 = hist(&[1, 3]).convolve(&hist(&[2, 4]));
        assert!(d2.quantile_ms(0.01) >= 3.0);
        assert!(d2.quantile_ms(1.0) <= 8.0);
        assert!((d2.mean_ms() - 5.0).abs() < 1.1);
    }

    #[test]
    fn max_of_independent_variables() {
        let a = hist(&[1, 10]).to_distribution();
        let b = hist(&[1, 10]).to_distribution();
        let m = a.max_with(&b);
        // P(max = ~1ms) = 0.25
        assert!((m.quantile_ms(0.2) - 2.0).abs() < 1.0);
        assert!((m.quantile_ms(0.9) - 11.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = LatencyHistogram::standard();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        let d = h.to_distribution();
        assert_eq!(d.quantile_ms(0.99), 1.0, "degenerate point at zero bin");
    }

    #[test]
    fn long_chain_convolution_stays_bounded() {
        let h = hist(&[3, 5, 8, 13, 21, 34]);
        let mut d = h.to_distribution();
        for _ in 0..6 {
            d = d.convolve(&h.to_distribution());
        }
        // 7 ops, each 3..34ms -> support within 21..238ms
        assert!(d.quantile_ms(0.001) >= 21.0);
        assert!(d.quantile_ms(1.0) <= 240.0);
    }
}
