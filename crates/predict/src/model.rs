//! The operator model store: per-(operator, α, β) histograms, collected per
//! SLO interval (§6.1, Figure 5(a)).

use crate::histogram::LatencyHistogram;
use piql_kv::Micros;
use std::collections::BTreeMap;

/// The three remote operators the model covers (§6.1 ignores local
/// operators: key/value-store latency dominates interactive queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Θ(α, β): one bounded range read of α entries of β bytes.
    IndexScan,
    /// Θ(αc, β): αc parallel primary-key gets.
    IndexFKJoin,
    /// Θ(αc, αj, β): αc parallel bounded range reads of αj entries each.
    SortedIndexJoin,
}

impl OpKind {
    pub fn name(self) -> &'static str {
        match self {
            OpKind::IndexScan => "IndexScan",
            OpKind::IndexFKJoin => "IndexFKJoin",
            OpKind::SortedIndexJoin => "SortedIndexJoin",
        }
    }

    /// Map the storage layer's live-sample vocabulary onto the model's.
    pub fn from_live(op: piql_kv::LiveOpKind) -> OpKind {
        match op {
            piql_kv::LiveOpKind::IndexScan => OpKind::IndexScan,
            piql_kv::LiveOpKind::IndexFKJoin => OpKind::IndexFKJoin,
            piql_kv::LiveOpKind::SortedIndexJoin => OpKind::SortedIndexJoin,
        }
    }
}

/// A model grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelKey {
    pub op: OpKind,
    /// Child-side cardinality (scan: the limit hint; joins: child tuples).
    pub alpha_c: u32,
    /// Per-key fan-out (1 except SortedIndexJoin).
    pub alpha_j: u32,
    /// Tuple size in bytes.
    pub beta: u32,
}

/// Default training grids (the paper pre-computes histograms for a lattice
/// of α and β values and looks up the closest while still larger, §6.1).
pub const ALPHA_GRID: &[u32] = &[
    1, 2, 5, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500,
];
pub const BETA_GRID: &[u32] = &[40, 160, 640, 2560];

/// Smallest grid value ≥ x (saturating at the top, which keeps predictions
/// conservative for in-range values and best-effort beyond).
pub fn grid_ceil(grid: &[u32], x: u64) -> u32 {
    for &g in grid {
        if x <= g as u64 {
            return g;
        }
    }
    *grid.last().expect("nonempty grid")
}

impl ModelKey {
    /// Snap to the training lattice (ceil in every parameter — the same
    /// rounding lookups use, so recorded live samples and later lookups
    /// meet at the same grid point).
    pub fn snapped(self) -> ModelKey {
        ModelKey {
            op: self.op,
            alpha_c: grid_ceil(ALPHA_GRID, self.alpha_c as u64),
            alpha_j: grid_ceil(ALPHA_GRID, self.alpha_j as u64),
            beta: grid_ceil(BETA_GRID, self.beta as u64),
        }
    }

    /// The grid point a live operator sample belongs to.
    pub fn from_tag(tag: &piql_kv::OpTag) -> ModelKey {
        ModelKey {
            op: OpKind::from_live(tag.op),
            alpha_c: tag.alpha_c,
            alpha_j: tag.alpha_j,
            beta: tag.beta,
        }
        .snapped()
    }
}

/// The trained model store: per interval, per key, one histogram.
#[derive(Debug, Clone, Default)]
pub struct ModelStore {
    /// `intervals[i][key]` = histogram observed during interval i.
    intervals: Vec<BTreeMap<ModelKey, LatencyHistogram>>,
    /// Aggregate over all intervals.
    overall: BTreeMap<ModelKey, LatencyHistogram>,
}

impl ModelStore {
    pub fn new(n_intervals: usize) -> Self {
        ModelStore {
            intervals: vec![BTreeMap::new(); n_intervals],
            overall: BTreeMap::new(),
        }
    }

    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    pub fn record(&mut self, interval: usize, key: ModelKey, latency: Micros) {
        if let Some(m) = self.intervals.get_mut(interval) {
            m.entry(key)
                .or_insert_with(LatencyHistogram::standard)
                .record(latency);
        }
        self.overall
            .entry(key)
            .or_insert_with(LatencyHistogram::standard)
            .record(latency);
    }

    /// The histogram for `key` during `interval`, with ceil lookup in both
    /// α and β (choose the closest stored setting that is still larger —
    /// overestimating, never under, §6.1).
    pub fn lookup(&self, interval: usize, key: ModelKey) -> Option<&LatencyHistogram> {
        let map = self.intervals.get(interval)?;
        Self::lookup_in(map, key)
    }

    /// Aggregate histogram over all intervals.
    pub fn lookup_overall(&self, key: ModelKey) -> Option<&LatencyHistogram> {
        Self::lookup_in(&self.overall, key)
    }

    fn lookup_in(
        map: &BTreeMap<ModelKey, LatencyHistogram>,
        key: ModelKey,
    ) -> Option<&LatencyHistogram> {
        let snapped = key.snapped();
        if let Some(h) = map.get(&snapped) {
            return Some(h);
        }
        // fall back to the nearest stored key with same op and params >= snapped
        map.iter()
            .find(|(k, _)| {
                k.op == key.op
                    && k.alpha_c >= snapped.alpha_c.min(*ALPHA_GRID.last().unwrap())
                    && k.alpha_j >= snapped.alpha_j.min(*ALPHA_GRID.last().unwrap())
            })
            .map(|(_, h)| h)
            .or_else(|| map.iter().find(|(k, _)| k.op == key.op).map(|(_, h)| h))
    }

    /// A copy of this store with `newest` appended as the most recent
    /// interval. The interval count stays fixed: the oldest interval is
    /// rotated out (a ring over time), so after enough rotations the
    /// store reflects only live observations. The aggregate is recomputed
    /// from the surviving intervals so rotated-out history stops
    /// influencing pooled predictions too.
    pub fn rotated(&self, newest: BTreeMap<ModelKey, LatencyHistogram>) -> ModelStore {
        let mut intervals: Vec<BTreeMap<ModelKey, LatencyHistogram>> = self
            .intervals
            .iter()
            .skip(usize::from(!self.intervals.is_empty()))
            .cloned()
            .collect();
        intervals.push(newest);
        let mut overall: BTreeMap<ModelKey, LatencyHistogram> = BTreeMap::new();
        for interval in &intervals {
            for (key, hist) in interval {
                overall
                    .entry(*key)
                    .or_insert_with(LatencyHistogram::standard)
                    .merge(hist);
            }
        }
        ModelStore { intervals, overall }
    }

    /// The per-interval histogram maps, oldest first — the durable form of
    /// the store (the aggregate is derived, so it is not exported).
    pub fn interval_maps(&self) -> &[BTreeMap<ModelKey, LatencyHistogram>] {
        &self.intervals
    }

    /// Rebuild a store from exported interval maps (recovery). The
    /// aggregate is recomputed, so
    /// `ModelStore::from_intervals(s.interval_maps().to_vec())` predicts
    /// identically to `s`.
    pub fn from_intervals(intervals: Vec<BTreeMap<ModelKey, LatencyHistogram>>) -> ModelStore {
        let mut overall: BTreeMap<ModelKey, LatencyHistogram> = BTreeMap::new();
        for interval in &intervals {
            for (key, hist) in interval {
                overall
                    .entry(*key)
                    .or_insert_with(LatencyHistogram::standard)
                    .merge(hist);
            }
        }
        ModelStore { intervals, overall }
    }

    /// Total recorded samples (sanity checks / reporting).
    pub fn total_samples(&self) -> u64 {
        self.overall.values().map(|h| h.count()).sum()
    }

    /// All trained keys (reporting).
    pub fn keys(&self) -> Vec<ModelKey> {
        self.overall.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_kv::MILLIS;

    #[test]
    fn grid_ceil_snaps_up() {
        assert_eq!(grid_ceil(ALPHA_GRID, 1), 1);
        assert_eq!(grid_ceil(ALPHA_GRID, 3), 5);
        assert_eq!(grid_ceil(ALPHA_GRID, 100), 100);
        assert_eq!(grid_ceil(ALPHA_GRID, 101), 150);
        assert_eq!(grid_ceil(ALPHA_GRID, 9_999), 500, "saturates");
    }

    #[test]
    fn record_and_lookup_with_ceil() {
        let mut store = ModelStore::new(2);
        let key = ModelKey {
            op: OpKind::IndexScan,
            alpha_c: 100,
            alpha_j: 1,
            beta: 40,
        };
        for i in 0..10 {
            store.record(0, key, (10 + i) * MILLIS);
        }
        // querying α=64 snaps up to the α=100 histogram
        let q = ModelKey {
            op: OpKind::IndexScan,
            alpha_c: 64,
            alpha_j: 1,
            beta: 33,
        };
        let h = store.lookup(0, q).expect("found via ceil");
        assert_eq!(h.count(), 10);
        assert!(store.lookup(1, q).is_none(), "other interval untouched");
        assert_eq!(store.lookup_overall(q).unwrap().count(), 10);
        assert_eq!(store.total_samples(), 10);
    }
}
