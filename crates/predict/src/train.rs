//! Operator benchmarking — model training (§6.1, §8.6).
//!
//! The paper trains by "setting up a production system in the cloud for a
//! short period of time" and sampling every operator in parallel across
//! many SLO intervals. This trainer does the same against the simulated
//! cluster: it creates a synthetic namespace, loads β-sized entries, and
//! repeatedly executes each (operator, α, β) grid point inside each
//! interval while optional background sessions keep the cluster at a
//! production-like utilization. Statistics are *not* application-specific
//! (they could be shipped per public cloud, §6.1) — only the cluster
//! configuration matters.

use crate::model::{ModelKey, ModelStore, OpKind, ALPHA_GRID, BETA_GRID};
use piql_kv::{KvRequest, KvStore, Micros, NsId, Session, SimCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// SLO interval length (the paper uses 10-minute intervals).
    pub interval_us: Micros,
    /// Number of intervals to observe (paper: 35).
    pub intervals: usize,
    /// Samples per grid point per interval.
    pub samples_per_interval: usize,
    /// Concurrent background sessions issuing random gets, keeping node
    /// utilization realistic during training.
    pub background_sessions: usize,
    pub seed: u64,
    /// α grid (child cardinalities / limit hints).
    pub alphas: Vec<u32>,
    /// α_j grid for SortedIndexJoin per-key fan-out.
    pub alpha_js: Vec<u32>,
    /// β grid (tuple sizes).
    pub betas: Vec<u32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            interval_us: 10 * 60 * piql_kv::SECONDS,
            intervals: 35,
            samples_per_interval: 12,
            background_sessions: 4,
            seed: 0x7EA1,
            alphas: ALPHA_GRID.to_vec(),
            alpha_js: vec![1, 5, 10, 15, 20, 25, 30, 40, 50],
            betas: BETA_GRID.to_vec(),
        }
    }
}

impl TrainConfig {
    /// A much smaller configuration for unit tests and quick demos.
    pub fn quick() -> Self {
        TrainConfig {
            interval_us: 10 * piql_kv::SECONDS,
            intervals: 5,
            samples_per_interval: 5,
            background_sessions: 2,
            seed: 7,
            alphas: vec![1, 10, 50, 100, 150, 500],
            alpha_js: vec![1, 10, 50],
            betas: vec![40, 160],
        }
    }
}

/// Train a [`ModelStore`] against `cluster`.
pub fn train(cluster: &SimCluster, config: &TrainConfig) -> ModelStore {
    let mut store = ModelStore::new(config.intervals);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // synthetic data: for each β, max(α)*max(αj) contiguous entries
    let max_alpha = *config.alphas.iter().max().unwrap_or(&500) as u64;
    let max_aj = *config.alpha_js.iter().max().unwrap_or(&50) as u64;
    let rows = (max_alpha * max_aj).max(max_alpha);
    let mut namespaces: Vec<(u32, NsId)> = Vec::new();
    for &beta in &config.betas {
        let ns = cluster.namespace(&format!("train/beta{beta}"));
        for i in 0..rows {
            cluster.bulk_put(ns, i.to_be_bytes().to_vec(), vec![0xAB; beta as usize]);
        }
        namespaces.push((beta, ns));
    }
    cluster.rebalance();

    let key_of = |i: u64| i.to_be_bytes().to_vec();

    for interval in 0..config.intervals {
        let interval_start = interval as Micros * config.interval_us;
        // background load sessions spread over the interval
        let mut bg: Vec<Session> = (0..config.background_sessions)
            .map(|_| Session::at(interval_start))
            .collect();
        for sample in 0..config.samples_per_interval {
            // keep background sessions busy (closed loop of random gets)
            for s in &mut bg {
                if let Some(&(_, ns)) = namespaces.first() {
                    let k = key_of(rng.gen_range(0..rows));
                    cluster.execute_round(s, vec![KvRequest::Get { ns, key: k }]);
                }
            }
            let jitter =
                (sample as Micros * config.interval_us) / config.samples_per_interval as Micros;
            let at = interval_start + jitter % config.interval_us;
            // measurements drain between operator executions so each grid
            // point sees comparable (light) load rather than queueing
            // behind earlier grid points
            let mut t = at;
            for &(beta, ns) in &namespaces {
                for &alpha in &config.alphas {
                    // Θ_IndexScan(α, β): one bounded range read
                    let start_i = rng.gen_range(0..rows.saturating_sub(alpha as u64).max(1));
                    let mut s = Session::at(t);
                    let t0 = s.begin();
                    cluster.execute_round(
                        &mut s,
                        vec![KvRequest::GetRange {
                            ns,
                            start: key_of(start_i),
                            end: None,
                            limit: Some(alpha as u64),
                            reverse: false,
                        }],
                    );
                    store.record(
                        interval,
                        ModelKey {
                            op: OpKind::IndexScan,
                            alpha_c: alpha,
                            alpha_j: 1,
                            beta,
                        },
                        s.elapsed_since(t0),
                    );
                    t = s.now + 2_000;

                    // Θ_IndexFKJoin(αc, β): αc parallel gets
                    let mut s = Session::at(t);
                    let t0 = s.begin();
                    let gets: Vec<KvRequest> = (0..alpha as u64)
                        .map(|_| KvRequest::Get {
                            ns,
                            key: key_of(rng.gen_range(0..rows)),
                        })
                        .collect();
                    cluster.execute_round(&mut s, gets);
                    store.record(
                        interval,
                        ModelKey {
                            op: OpKind::IndexFKJoin,
                            alpha_c: alpha,
                            alpha_j: 1,
                            beta,
                        },
                        s.elapsed_since(t0),
                    );
                    t = s.now + 2_000;

                    // Θ_SortedIndexJoin(αc, αj, β): αc parallel bounded
                    // range reads of αj entries each
                    for &aj in &config.alpha_js {
                        let mut s = Session::at(t);
                        let t0 = s.begin();
                        let ranges: Vec<KvRequest> = (0..alpha as u64)
                            .map(|_| {
                                let st = rng.gen_range(0..rows.saturating_sub(aj as u64).max(1));
                                KvRequest::GetRange {
                                    ns,
                                    start: key_of(st),
                                    end: None,
                                    limit: Some(aj as u64),
                                    reverse: false,
                                }
                            })
                            .collect();
                        cluster.execute_round(&mut s, ranges);
                        store.record(
                            interval,
                            ModelKey {
                                op: OpKind::SortedIndexJoin,
                                alpha_c: alpha,
                                alpha_j: aj,
                                beta,
                            },
                            s.elapsed_since(t0),
                        );
                        t = s.now + 2_000;
                    }
                }
            }
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_kv::ClusterConfig;

    #[test]
    fn training_populates_all_grid_points() {
        let cluster = SimCluster::new(ClusterConfig::default().with_nodes(4).with_seed(3));
        let cfg = TrainConfig {
            intervals: 3,
            samples_per_interval: 3,
            alphas: vec![1, 10, 100],
            alpha_js: vec![1, 10],
            betas: vec![40],
            ..TrainConfig::quick()
        };
        let store = train(&cluster, &cfg);
        // 3 alphas * (scan + fk) + 3 alphas * 2 ajs (sorted) = 12 keys
        assert_eq!(store.keys().len(), 12);
        assert!(store.total_samples() >= 12 * 9);
        // bigger fan-out must not be predicted faster at the median
        let h10 = store
            .lookup_overall(ModelKey {
                op: OpKind::IndexScan,
                alpha_c: 10,
                alpha_j: 1,
                beta: 40,
            })
            .unwrap();
        let h100 = store
            .lookup_overall(ModelKey {
                op: OpKind::IndexScan,
                alpha_c: 100,
                alpha_j: 1,
                beta: 40,
            })
            .unwrap();
        assert!(h100.quantile_ms(0.5) >= h10.quantile_ms(0.5) * 0.8);
    }

    #[test]
    fn per_interval_histograms_differ_under_interference() {
        let mut config = ClusterConfig::default().with_nodes(3).with_seed(17);
        config.interference.prob = 0.5;
        config.interference.multiplier = (2.0, 4.0);
        let cluster = SimCluster::new(config);
        let store = train(&cluster, &TrainConfig::quick());
        let key = ModelKey {
            op: OpKind::IndexScan,
            alpha_c: 100,
            alpha_j: 1,
            beta: 40,
        };
        let p99s: Vec<f64> = (0..store.n_intervals())
            .filter_map(|i| store.lookup(i, key))
            .map(|h| h.quantile_ms(0.99))
            .collect();
        assert!(p99s.len() >= 2);
        let min = p99s.iter().cloned().fold(f64::MAX, f64::min);
        let max = p99s.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > min,
            "interference should make interval p99s vary: {p99s:?}"
        );
    }
}
