//! # piql-predict
//!
//! The PIQL SLO compliance prediction framework (§6 of the paper): operator
//! latency models as per-interval histograms (Figure 5a), plan-level
//! composition by convolution (Figure 5b), the per-interval p99
//! distribution that quantifies SLO-violation risk in a volatile cloud
//! (Figure 5c), and the Performance Insight Assistant's heatmap/limit
//! advisor (§6.4, Figure 6).

pub mod advisor;
pub mod histogram;
pub mod model;
pub mod predict;
pub mod shared;
pub mod train;

pub use advisor::Heatmap;
pub use histogram::{Distribution, LatencyHistogram};
pub use model::{ModelKey, ModelStore, OpKind, ALPHA_GRID, BETA_GRID};
pub use predict::{
    plan_thetas, plan_thetas_indexed, OpTheta, QueryPrediction, SloPredictor, ThetaAttribution,
};
pub use shared::{RotationObserver, SharedModelStore};
pub use train::{train, TrainConfig};
