//! The SLO half of the Performance Insight Assistant (§6.4): heatmaps over
//! cardinality parameters (Figure 6) and cardinality-limit suggestions that
//! maximize functionality while meeting the SLO.

use crate::predict::SloPredictor;
use piql_core::opt::Compiled;

/// A predicted-p99 heatmap over two cardinality parameters (Figure 6:
/// subscriptions-per-user × records-per-page for the thoughtstream query).
#[derive(Debug, Clone)]
pub struct Heatmap {
    pub row_param: String,
    pub col_param: String,
    pub rows: Vec<u64>,
    pub cols: Vec<u64>,
    /// `cells[r][c]` = predicted max-interval p99 in ms.
    pub cells: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Build by compiling the query for each (row, col) cardinality pair.
    /// `compile` returns the plan for a given pair (typically by swapping
    /// the schema's CARDINALITY LIMIT and the query's page size).
    pub fn build(
        predictor: &SloPredictor,
        row_param: &str,
        col_param: &str,
        rows: Vec<u64>,
        cols: Vec<u64>,
        mut compile: impl FnMut(u64, u64) -> Compiled,
    ) -> Heatmap {
        let cells = rows
            .iter()
            .map(|&r| {
                cols.iter()
                    .map(|&c| predictor.predict(&compile(r, c)).max_p99_ms)
                    .collect()
            })
            .collect();
        Heatmap {
            row_param: row_param.to_string(),
            col_param: col_param.to_string(),
            rows,
            cols,
            cells,
        }
    }

    /// All (row, col) pairs whose predicted p99 meets the SLO.
    pub fn feasible(&self, slo_ms: f64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (ri, &r) in self.rows.iter().enumerate() {
            for (ci, &c) in self.cols.iter().enumerate() {
                if self.cells[ri][ci] <= slo_ms {
                    out.push((r, c));
                }
            }
        }
        out
    }

    /// The largest row cardinality fully meeting the SLO for a given column
    /// value — the assistant's suggested CARDINALITY LIMIT (§6.4).
    pub fn suggest_row_limit(&self, col: u64, slo_ms: f64) -> Option<u64> {
        let ci = self.cols.iter().position(|&c| c == col)?;
        self.rows
            .iter()
            .enumerate()
            .filter(|(ri, _)| self.cells[*ri][ci] <= slo_ms)
            .map(|(_, &r)| r)
            .max()
    }

    /// Render like the paper's Figure 6 (rows descending, ms cells).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{: >28} | predicted p99 latency (ms)\n",
            format!("{} \\ {}", self.row_param, self.col_param)
        ));
        s.push_str(&format!("{: >28} |", ""));
        for c in &self.cols {
            s.push_str(&format!(" {c: >5}"));
        }
        s.push('\n');
        for (ri, r) in self.rows.iter().enumerate().rev() {
            s.push_str(&format!("{r: >28} |"));
            for cell in &self.cells[ri] {
                s.push_str(&format!(" {cell: >5.0}"));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_heatmap() -> Heatmap {
        Heatmap {
            row_param: "subs".into(),
            col_param: "page".into(),
            rows: vec![100, 200, 300],
            cols: vec![10, 20],
            cells: vec![vec![100.0, 150.0], vec![200.0, 300.0], vec![400.0, 600.0]],
        }
    }

    #[test]
    fn feasibility_and_suggestion() {
        let h = diag_heatmap();
        assert_eq!(h.feasible(200.0).len(), 3);
        assert_eq!(h.suggest_row_limit(10, 250.0), Some(200));
        assert_eq!(h.suggest_row_limit(20, 250.0), Some(100));
        assert_eq!(h.suggest_row_limit(20, 50.0), None);
        assert_eq!(h.suggest_row_limit(99, 500.0), None, "unknown column");
    }

    #[test]
    fn render_contains_all_cells() {
        let text = diag_heatmap().render();
        for v in ["100", "150", "200", "300", "400", "600"] {
            assert!(text.contains(v), "{text}");
        }
    }
}
