//! Concurrency contract of [`SharedModelStore`]: writers append and rotate
//! while readers predict from snapshots — no torn reads, no lost samples,
//! and a predictor instance never observes a half-rotated store.

use piql_core::catalog::{Catalog, TableDef};
use piql_core::opt::{Compiled, Optimizer};
use piql_core::parser::parse_select;
use piql_core::value::DataType;
use piql_kv::MILLIS;
use piql_predict::{ModelKey, ModelStore, OpKind, SharedModelStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn scan_key(alpha_c: u32) -> ModelKey {
    ModelKey {
        op: OpKind::IndexScan,
        alpha_c,
        alpha_j: 1,
        beta: 40,
    }
}

/// A one-operator plan (bounded scan of 10) whose only theta is
/// `IndexScan(α=10, β≈users row)` — small enough that predictions are a
/// direct read of the α=10 histogram.
fn compile_scan() -> Compiled {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("events")
            .column("owner", DataType::Varchar(8))
            .column("seq", DataType::Int)
            .primary_key(&["owner", "seq"])
            .build(),
    )
    .unwrap();
    Optimizer::scale_independent()
        .compile(
            &cat,
            &parse_select("SELECT * FROM events WHERE owner = <o> ORDER BY seq LIMIT 10").unwrap(),
        )
        .unwrap()
}

#[test]
fn ingest_while_predicting_is_consistent() {
    let mut seed = ModelStore::new(4);
    for interval in 0..4 {
        for _ in 0..25 {
            seed.record(interval, scan_key(10), 5 * MILLIS);
        }
    }
    let shared = Arc::new(SharedModelStore::new(seed));
    let compiled = compile_scan();
    let stop = Arc::new(AtomicBool::new(false));
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000;

    std::thread::scope(|scope| {
        // writers: hammer record_live with slow samples
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        shared.record_live(scan_key((i % 10 + 1) as u32), 40 * MILLIS);
                    }
                })
            })
            .collect();
        // rotator: keep publishing new snapshots while writers run
        {
            let shared = shared.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    shared.rotate();
                    std::thread::yield_now();
                }
            });
        }
        // readers: every prediction must be finite and self-consistent
        for _ in 0..3 {
            let shared = shared.clone();
            let stop = stop.clone();
            let compiled = &compiled;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let predictor = shared.predictor();
                    let pred = predictor.predict(compiled);
                    assert!(pred.max_p99_ms.is_finite());
                    for &p in &pred.p99_per_interval_ms {
                        assert!(p.is_finite() && p <= pred.max_p99_ms + 1e-9);
                    }
                    std::thread::yield_now();
                }
            });
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // fold any un-rotated tail, then check the loop actually closed:
    // the newest interval reflects live (slow) observation only.
    shared.rotate();
    let snap = shared.snapshot();
    assert_eq!(snap.n_intervals(), 4);
    assert!(snap.total_samples() > 0);
    let newest = snap
        .lookup(snap.n_intervals() - 1, scan_key(10))
        .expect("live data present (directly or via same-op fallback)");
    assert!(newest.quantile_ms(0.99) >= 40.0);
}

#[test]
fn drained_kv_samples_land_on_grid_points() {
    use piql_kv::{LiveOpKind, OpSample, OpTag};
    let shared = SharedModelStore::new(ModelStore::new(2));
    let samples: Vec<OpSample> = (0..10)
        .map(|i| OpSample {
            tag: OpTag {
                op: LiveOpKind::SortedIndexJoin,
                alpha_c: 97, // snaps to 100
                alpha_j: 9,  // snaps to 10
                beta: 100,   // snaps to 160
            },
            micros: (10 + i) * MILLIS,
        })
        .collect();
    shared.ingest(&samples);
    assert_eq!(shared.pending_samples(), 10);
    assert_eq!(shared.rotate(), 10);
    let snap = shared.snapshot();
    let hist = snap
        .lookup_overall(ModelKey {
            op: OpKind::SortedIndexJoin,
            alpha_c: 100,
            alpha_j: 10,
            beta: 160,
        })
        .expect("snapped grid point exists");
    assert_eq!(hist.count(), 10);
}
