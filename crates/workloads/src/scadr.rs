//! SCADr — the paper's Twitter-like microblogging benchmark (§8.1.2).
//!
//! Three tables (users, subscriptions, thoughts), five queries ("List users
//! I'm following", "List my recent thoughts", the thoughtstream, "Find
//! user", and the 1%-probability "Post a new thought" update). One web
//! interaction renders the home page: the four read queries once each,
//! plus possibly the post.

use crate::driver::Workload;
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::{Database, DbError, ExecStrategy, Prepared};
use piql_kv::{KvStore, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SCADr sizing (defaults scaled down from the paper's 60k users/server so
/// laptop-size sweeps stay in memory; shapes are unaffected, see DESIGN.md).
#[derive(Debug, Clone)]
pub struct ScadrConfig {
    pub users_per_node: usize,
    pub thoughts_per_user: usize,
    pub subscriptions_per_user: usize,
    /// The schema's CARDINALITY LIMIT on subscriptions per owner (§8.2 uses
    /// 10 for the scale experiment).
    pub max_subscriptions: u64,
    /// Thoughtstream page size (§8.2 uses 10).
    pub page_size: u64,
    pub seed: u64,
}

impl Default for ScadrConfig {
    fn default() -> Self {
        ScadrConfig {
            users_per_node: 500,
            thoughts_per_user: 20,
            subscriptions_per_user: 10,
            max_subscriptions: 10,
            page_size: 10,
            seed: 0x5CAD,
        }
    }
}

/// DDL for the §8.1.2 schema.
pub fn ddl(config: &ScadrConfig) -> Vec<String> {
    vec![
        "CREATE TABLE users ( \
           username VARCHAR(24) NOT NULL, \
           password VARCHAR(24), \
           home_town VARCHAR(32), \
           PRIMARY KEY (username) )"
            .to_string(),
        format!(
            "CREATE TABLE subscriptions ( \
               owner VARCHAR(24) NOT NULL, \
               target VARCHAR(24) NOT NULL, \
               approved BOOL, \
               PRIMARY KEY (owner, target), \
               FOREIGN KEY (owner) REFERENCES users, \
               FOREIGN KEY (target) REFERENCES users, \
               CARDINALITY LIMIT {} (owner) )",
            config.max_subscriptions
        ),
        "CREATE TABLE thoughts ( \
           owner VARCHAR(24) NOT NULL, \
           timestamp TIMESTAMP NOT NULL, \
           text VARCHAR(140), \
           PRIMARY KEY (owner, timestamp), \
           FOREIGN KEY (owner) REFERENCES users )"
            .to_string(),
    ]
}

/// The five SCADr queries (§8.1.2), with the thoughtstream page size baked
/// in at prepare time.
pub fn queries(config: &ScadrConfig) -> ScadrQueries {
    ScadrQueries {
        users_followed: "SELECT u.* FROM subscriptions s JOIN users u \
             WHERE u.username = s.target AND s.owner = <uname>"
            .to_string(),
        recent_thoughts: format!(
            "SELECT * FROM thoughts WHERE owner = <uname> \
             ORDER BY timestamp DESC LIMIT {}",
            config.page_size
        ),
        thoughtstream: format!(
            "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
             WHERE thoughts.owner = s.target AND s.owner = <uname> AND s.approved = true \
             ORDER BY thoughts.timestamp DESC LIMIT {}",
            config.page_size
        ),
        find_user: "SELECT * FROM users WHERE username = <uname>".to_string(),
        post_thought: "INSERT INTO thoughts (owner, timestamp, text) \
             VALUES (<uname>, <ts>, <text>)"
            .to_string(),
    }
}

/// SCADr query texts.
#[derive(Debug, Clone)]
pub struct ScadrQueries {
    pub users_followed: String,
    pub recent_thoughts: String,
    pub thoughtstream: String,
    pub find_user: String,
    pub post_thought: String,
}

/// Canonical username.
pub fn username(i: usize) -> String {
    format!("u{i:07}")
}

/// Create schema and load data for an `n_nodes`-node cluster (data per
/// node constant, §8.4.2).
pub fn setup<S: KvStore>(
    db: &Database<S>,
    config: &ScadrConfig,
    n_nodes: usize,
) -> Result<usize, DbError> {
    for stmt in ddl(config) {
        db.execute_ddl(&stmt)?;
    }
    let n_users = config.users_per_node * n_nodes;
    let mut rng = StdRng::seed_from_u64(config.seed);
    db.bulk_load(
        "users",
        (0..n_users).map(|i| {
            Tuple::new(vec![
                Value::Varchar(username(i)),
                Value::Varchar(format!("pw{i}")),
                Value::Varchar(format!("town{:03}", i % 500)),
            ])
        }),
    )?;
    // random subscriptions: distinct targets per owner
    let mut subs = Vec::with_capacity(n_users * config.subscriptions_per_user);
    for i in 0..n_users {
        let mut seen = std::collections::BTreeSet::new();
        while seen.len() < config.subscriptions_per_user.min(n_users - 1) {
            let t = rng.gen_range(0..n_users);
            if t != i {
                seen.insert(t);
            }
        }
        for t in seen {
            subs.push(Tuple::new(vec![
                Value::Varchar(username(i)),
                Value::Varchar(username(t)),
                Value::Bool(rng.gen_bool(0.9)),
            ]));
        }
    }
    db.bulk_load("subscriptions", subs)?;
    db.bulk_load(
        "thoughts",
        (0..n_users).flat_map(|i| {
            (0..config.thoughts_per_user).map(move |p| {
                Tuple::new(vec![
                    Value::Varchar(username(i)),
                    Value::Timestamp(1_300_000_000_000_000 + (i * 613 + p * 10_007) as i64),
                    Value::Varchar(format!("thought {p} from user {i}")),
                ])
            })
        }),
    )?;
    db.cluster().rebalance();
    Ok(n_users)
}

/// The home-page interaction workload.
pub struct ScadrWorkload {
    pub n_users: usize,
    prepared: ScadrPrepared,
    post_sql: String,
    /// Probability of the "Post a new thought" update (§8.1.2: 1%).
    pub post_probability: f64,
}

#[derive(Debug, Clone)]
struct ScadrPrepared {
    users_followed: Prepared,
    recent_thoughts: Prepared,
    thoughtstream: Prepared,
    find_user: Prepared,
}

/// Interaction kind indexes (for metrics).
pub const KIND_HOME_PAGE: usize = 0;
pub const KIND_HOME_WITH_POST: usize = 1;

impl ScadrWorkload {
    pub fn new<S: KvStore>(
        db: &Database<S>,
        config: &ScadrConfig,
        n_users: usize,
    ) -> Result<Self, DbError> {
        let q = queries(config);
        Ok(ScadrWorkload {
            n_users,
            prepared: ScadrPrepared {
                users_followed: db.prepare(&q.users_followed)?,
                recent_thoughts: db.prepare(&q.recent_thoughts)?,
                thoughtstream: db.prepare(&q.thoughtstream)?,
                find_user: db.prepare(&q.find_user)?,
            },
            post_sql: q.post_thought,
            post_probability: 0.01,
        })
    }

    /// The prepared thoughtstream (used by Table 1 / prediction harnesses).
    pub fn thoughtstream(&self) -> &Prepared {
        &self.prepared.thoughtstream
    }

    pub fn all_prepared(&self) -> Vec<(&'static str, &Prepared)> {
        vec![
            ("Users Followed", &self.prepared.users_followed),
            ("Recent Thoughts", &self.prepared.recent_thoughts),
            ("Thoughtstream", &self.prepared.thoughtstream),
            ("Find User", &self.prepared.find_user),
        ]
    }
}

impl Workload for ScadrWorkload {
    fn kinds(&self) -> Vec<&'static str> {
        vec!["home page", "home page + post"]
    }

    fn interaction(
        &self,
        db: &Database,
        session: &mut Session,
        rng: &mut StdRng,
        strategy: ExecStrategy,
    ) -> Result<usize, DbError> {
        let me = username(rng.gen_range(0..self.n_users));
        let other = username(rng.gen_range(0..self.n_users));
        let mut p_me = Params::new();
        p_me.set(0, Value::Varchar(me.clone()));
        let mut p_other = Params::new();
        p_other.set(0, Value::Varchar(other));

        db.execute_with(
            session,
            &self.prepared.users_followed,
            &p_me,
            strategy,
            None,
        )?;
        db.execute_with(
            session,
            &self.prepared.recent_thoughts,
            &p_me,
            strategy,
            None,
        )?;
        db.execute_with(session, &self.prepared.thoughtstream, &p_me, strategy, None)?;
        db.execute_with(session, &self.prepared.find_user, &p_other, strategy, None)?;

        if rng.gen_bool(self.post_probability) {
            let mut p = Params::new();
            p.set(0, Value::Varchar(me));
            p.set(
                1,
                Value::Timestamp(session.now as i64 + rng.gen_range(0..1000i64)),
            );
            p.set(2, Value::Varchar("a fresh thought".into()));
            // ignore pk collisions from the synthetic timestamp
            let _ = db.execute_dml(session, &self.post_sql, &p);
            return Ok(KIND_HOME_WITH_POST);
        }
        Ok(KIND_HOME_PAGE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_closed_loop, DriverConfig};
    use piql_kv::{ClusterConfig, SimCluster};
    use std::sync::Arc;

    #[test]
    fn scadr_sets_up_and_runs() {
        let cluster = Arc::new(SimCluster::new(
            ClusterConfig::default().with_nodes(4).with_seed(9),
        ));
        let db = Database::new(cluster);
        let config = ScadrConfig {
            users_per_node: 50,
            thoughts_per_user: 5,
            subscriptions_per_user: 4,
            ..Default::default()
        };
        let n_users = setup(&db, &config, 4).unwrap();
        assert_eq!(n_users, 200);
        let workload = ScadrWorkload::new(&db, &config, n_users).unwrap();
        let cfg = DriverConfig {
            sessions: 4,
            duration_us: 5 * piql_kv::SECONDS,
            warmup_us: piql_kv::SECONDS,
            ..Default::default()
        };
        let m = run_closed_loop(&db, &workload, &cfg).unwrap();
        assert!(m.count() > 20, "completed {}", m.count());
        assert!(m.quantile_ms(0.99) > 0.0);
        // every query stayed within its compiled bound is enforced by the
        // engine tests; here we sanity-check the workload's own shape
        assert!(m.throughput_per_sec() > 1.0);
    }

    #[test]
    fn scadr_queries_all_compile_scale_independent() {
        let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(2)));
        let db = Database::new(cluster);
        let config = ScadrConfig::default();
        for stmt in ddl(&config) {
            db.execute_ddl(&stmt).unwrap();
        }
        let q = queries(&config);
        for sql in [
            &q.users_followed,
            &q.recent_thoughts,
            &q.thoughtstream,
            &q.find_user,
        ] {
            let prepared = db.prepare(sql).unwrap();
            assert!(
                prepared.compiled.bounds.guaranteed,
                "{sql} must be scale-independent"
            );
            assert!(prepared.compiled.class.is_scale_independent());
        }
    }
}
