//! # piql-workloads
//!
//! The paper's two benchmarks — TPC-W's customer-facing queries (§8.1.1)
//! and the SCADr microblogging service (§8.1.2) — plus the closed-loop
//! driver and metrics used by every scale experiment (§8.4).

pub mod driver;
pub mod metrics;
pub mod scadr;
pub mod tpcw;

pub use driver::{run_closed_loop, DriverConfig, Workload};
pub use metrics::{linear_fit, RunMetrics, Sample};
