//! Experiment metrics: throughput, percentile latencies per interval, and
//! the linear-fit R² the paper reports on its scale-up figures (§8.4).

use piql_kv::Micros;

/// One completed interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Virtual start time.
    pub start: Micros,
    /// Virtual latency.
    pub latency: Micros,
    /// Interaction kind (workload-defined label index).
    pub kind: usize,
}

/// A run's collected samples.
///
/// By default every sample is retained (experiment runs have a bounded
/// horizon). Long-running consumers — the server keeps one `RunMetrics`
/// per registered statement for its entire uptime — set
/// [`RunMetrics::capacity`] (or use [`RunMetrics::bounded`]): once full,
/// `record` overwrites the **oldest** retained sample, so memory stays
/// fixed and every report reflects the most recent `capacity`
/// observations.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    pub samples: Vec<Sample>,
    /// Samples before this time are warm-up and excluded from reports (the
    /// paper discards the first run of each setup, §8.4.1).
    pub warmup_us: Micros,
    /// End of the measurement window.
    pub horizon_us: Micros,
    /// Maximum retained samples; `0` = unbounded.
    pub capacity: usize,
    /// Samples ever recorded, including ones the ring has overwritten.
    pub recorded: u64,
}

impl RunMetrics {
    /// A ring-buffered collector for open-ended measurement: at most
    /// `capacity` recent samples, full time window (no warm-up cutoff).
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RunMetrics {
            samples: Vec::with_capacity(capacity),
            warmup_us: 0,
            horizon_us: u64::MAX,
            capacity,
            ..Default::default()
        }
    }

    pub fn record(&mut self, start: Micros, latency: Micros, kind: usize) {
        let sample = Sample {
            start,
            latency,
            kind,
        };
        if self.capacity == 0 || self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            // ring: `recorded` counts all prior records, so modulo the
            // capacity it walks the slots oldest-first
            let slot = (self.recorded % self.capacity as u64) as usize;
            self.samples[slot] = sample;
        }
        self.recorded += 1;
    }

    fn measured(&self) -> impl Iterator<Item = &Sample> {
        self.samples
            .iter()
            .filter(|s| s.start >= self.warmup_us && s.start < self.horizon_us)
    }

    /// Completed interactions per second of virtual time (WIPS for TPC-W).
    pub fn throughput_per_sec(&self) -> f64 {
        let n = self.measured().count() as f64;
        let window = self.horizon_us.saturating_sub(self.warmup_us) as f64 / 1e6;
        if window <= 0.0 {
            0.0
        } else {
            n / window
        }
    }

    /// Pooled latency quantile in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let mut lat: Vec<Micros> = self.measured().map(|s| s.latency).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_unstable();
        let idx = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx] as f64 / 1_000.0
    }

    /// Pooled quantile for one interaction kind.
    pub fn quantile_ms_of(&self, kind: usize, q: f64) -> f64 {
        let mut lat: Vec<Micros> = self
            .measured()
            .filter(|s| s.kind == kind)
            .map(|s| s.latency)
            .collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_unstable();
        let idx = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx] as f64 / 1_000.0
    }

    /// Per-interval quantiles over the measurement window (Figure 5(c)).
    ///
    /// The series is **dense and index-aligned**: element `i` is interval
    /// `i` counted from the warm-up cutoff, and an interval with zero
    /// samples reports `0.0` (the empty-set quantile convention used
    /// throughout) instead of being silently skipped — so plotting the
    /// series against interval numbers never misaligns the x-axis.
    pub fn interval_quantiles_ms(&self, interval_us: Micros, q: f64) -> Vec<f64> {
        if interval_us == 0 {
            return Vec::new();
        }
        let mut buckets: std::collections::BTreeMap<u64, Vec<Micros>> = Default::default();
        for s in self.measured() {
            buckets
                .entry((s.start - self.warmup_us) / interval_us)
                .or_default()
                .push(s.latency);
        }
        let Some((&last, _)) = buckets.last_key_value() else {
            return Vec::new();
        };
        (0..=last)
            .map(|i| match buckets.get_mut(&i) {
                Some(lat) => {
                    lat.sort_unstable();
                    let idx = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
                    lat[idx] as f64 / 1_000.0
                }
                None => 0.0,
            })
            .collect()
    }

    /// Max per-interval quantile — the conservative "actual" Table 1 uses.
    pub fn max_interval_quantile_ms(&self, interval_us: Micros, q: f64) -> f64 {
        self.interval_quantiles_ms(interval_us, q)
            .into_iter()
            .fold(0.0, f64::max)
    }

    pub fn count(&self) -> usize {
        self.measured().count()
    }
}

/// Least-squares linear fit; returns (slope, intercept, r²). The paper
/// reports R² = 0.99854 (TPC-W) and 0.98683 (SCADr) for throughput vs
/// cluster size.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return (0.0, my, 1.0);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = (sxy * sxy) / (sxx * syy);
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        let mut m = RunMetrics {
            warmup_us: 1_000_000,
            horizon_us: 11_000_000,
            ..Default::default()
        };
        // warm-up noise that must be excluded
        m.record(0, 999_000, 0);
        // 100 samples, latencies 1..100 ms
        for i in 0..100u64 {
            m.record(1_000_000 + i * 100_000, (i + 1) * 1_000, (i % 2) as usize);
        }
        m
    }

    #[test]
    fn throughput_and_quantiles() {
        let m = metrics();
        assert_eq!(m.count(), 100);
        assert!((m.throughput_per_sec() - 10.0).abs() < 1e-9);
        assert_eq!(m.quantile_ms(0.5), 50.0);
        assert_eq!(m.quantile_ms(0.99), 99.0);
        assert_eq!(m.quantile_ms(1.0), 100.0);
        // kind 0 has even latencies 1,3,..,99
        assert_eq!(m.quantile_ms_of(0, 1.0), 99.0);
    }

    #[test]
    fn bounded_metrics_hold_recent_samples_in_fixed_memory() {
        let mut m = RunMetrics::bounded(100);
        // 350 samples with monotonically increasing latency: after the ring
        // wraps, only the most recent 100 (latencies 251..=350 ms) remain
        for i in 0..350u64 {
            m.record(i * 1_000, (i + 1) * 1_000, 0);
        }
        assert_eq!(m.samples.len(), 100, "memory stays at capacity");
        assert_eq!(m.samples.capacity(), 100);
        assert_eq!(m.recorded, 350);
        assert_eq!(m.count(), 100);
        assert_eq!(m.quantile_ms(0.0), 251.0, "oldest retained is recent");
        assert_eq!(m.quantile_ms(0.5), 300.0);
        assert_eq!(m.quantile_ms(1.0), 350.0);
        // per-kind reports work over the retained window too
        let mut k = RunMetrics::bounded(10);
        for i in 0..25u64 {
            k.record(0, (i + 1) * 1_000, (i % 2) as usize);
        }
        assert_eq!(k.quantile_ms_of(0, 1.0), 25.0);
        assert_eq!(k.quantile_ms_of(1, 1.0), 24.0);
    }

    #[test]
    fn unbounded_default_retains_everything() {
        let mut m = RunMetrics {
            horizon_us: u64::MAX,
            ..Default::default()
        };
        for i in 0..1000u64 {
            m.record(i, 1_000, 0);
        }
        assert_eq!(m.samples.len(), 1000);
        assert_eq!(m.recorded, 1000);
    }

    #[test]
    fn interval_series_is_dense_across_empty_intervals() {
        let mut m = RunMetrics {
            warmup_us: 0,
            horizon_us: 100_000_000,
            ..Default::default()
        };
        // samples only in intervals 0 and 3 (1 s intervals); 1 and 2 are a
        // deliberate gap that must appear as explicit zeros, not vanish
        m.record(100_000, 5_000, 0);
        m.record(200_000, 7_000, 0);
        m.record(3_500_000, 50_000, 0);
        let qs = m.interval_quantiles_ms(1_000_000, 1.0);
        assert_eq!(qs.len(), 4, "index-aligned: intervals 0..=3");
        assert_eq!(qs[0], 7.0);
        assert_eq!(qs[1], 0.0, "empty interval is an explicit gap");
        assert_eq!(qs[2], 0.0);
        assert_eq!(qs[3], 50.0);
        assert_eq!(m.max_interval_quantile_ms(1_000_000, 1.0), 50.0);
        // no samples at all: empty series
        let empty = RunMetrics::default();
        assert!(empty.interval_quantiles_ms(1_000_000, 1.0).is_empty());
    }

    #[test]
    fn interval_quantiles_split_the_window() {
        let m = metrics();
        let qs = m.interval_quantiles_ms(5_000_000, 1.0);
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0], 50.0);
        assert_eq!(qs[1], 100.0);
        assert_eq!(m.max_interval_quantile_ms(5_000_000, 1.0), 100.0);
    }

    #[test]
    fn linear_fit_matches_perfect_line() {
        let xs = [20.0, 40.0, 60.0, 80.0, 100.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
        // noisy data still close
        let ys2 = [59.0, 133.0, 180.0, 255.0, 301.0];
        let (_, _, r2) = linear_fit(&xs, &ys2);
        assert!(r2 > 0.99);
    }
}
