//! The closed-loop workload driver (§8.4's measurement methodology).
//!
//! Simulated client threads (the paper runs one client machine per two
//! storage nodes, ten threads each) repeatedly execute web interactions
//! with no think time. Sessions are scheduled through a priority queue on
//! their next-start time, so node queueing and contention emerge from the
//! shared cluster timelines; the run is deterministic for a given seed.

use crate::metrics::RunMetrics;
use piql_engine::{Database, DbError, ExecStrategy};
use piql_kv::{Micros, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A benchmark workload: names its interaction kinds and executes one
/// interaction per call.
pub trait Workload {
    /// Labels for reporting, indexed by the `usize` returned from
    /// [`Workload::interaction`].
    fn kinds(&self) -> Vec<&'static str>;

    /// Run one complete web interaction on `session`; returns the kind
    /// index executed.
    fn interaction(
        &self,
        db: &Database,
        session: &mut Session,
        rng: &mut StdRng,
        strategy: ExecStrategy,
    ) -> Result<usize, DbError>;
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Concurrent closed-loop sessions (client threads).
    pub sessions: usize,
    /// Virtual measurement duration (after warm-up).
    pub duration_us: Micros,
    /// Warm-up discarded from metrics (the paper discards the first run).
    pub warmup_us: Micros,
    pub strategy: ExecStrategy,
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            sessions: 8,
            duration_us: 30 * piql_kv::SECONDS,
            warmup_us: 2 * piql_kv::SECONDS,
            strategy: ExecStrategy::Parallel,
            seed: 42,
        }
    }
}

/// Run `workload` closed-loop; returns collected metrics.
pub fn run_closed_loop(
    db: &Database,
    workload: &dyn Workload,
    config: &DriverConfig,
) -> Result<RunMetrics, DbError> {
    let horizon = config.warmup_us + config.duration_us;
    let mut metrics = RunMetrics {
        warmup_us: config.warmup_us,
        horizon_us: horizon,
        ..Default::default()
    };
    // (next start, session idx); sessions start staggered to avoid a
    // synchronized stampede at t=0
    let mut heap: BinaryHeap<Reverse<(Micros, usize)>> = BinaryHeap::new();
    let mut sessions: Vec<Session> = Vec::with_capacity(config.sessions);
    let mut rngs: Vec<StdRng> = Vec::with_capacity(config.sessions);
    for i in 0..config.sessions {
        let start = (i as Micros * 1_000) % 100_000;
        sessions.push(Session::at(start));
        rngs.push(StdRng::seed_from_u64(
            config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        heap.push(Reverse((start, i)));
    }
    while let Some(Reverse((at, idx))) = heap.pop() {
        if at >= horizon {
            break;
        }
        let session = &mut sessions[idx];
        session.now = at;
        let t0 = session.begin();
        let kind = workload.interaction(db, session, &mut rngs[idx], config.strategy)?;
        let latency = session.elapsed_since(t0);
        metrics.record(t0, latency, kind);
        heap.push(Reverse((session.now, idx)));
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piql_core::plan::params::Params;
    use piql_core::tuple;
    use piql_core::value::Value;
    use piql_kv::{ClusterConfig, SimCluster};
    use rand::Rng;
    use std::sync::Arc;

    struct PkLookups;

    impl Workload for PkLookups {
        fn kinds(&self) -> Vec<&'static str> {
            vec!["lookup"]
        }

        fn interaction(
            &self,
            db: &Database,
            session: &mut Session,
            rng: &mut StdRng,
            _strategy: ExecStrategy,
        ) -> Result<usize, DbError> {
            let mut params = Params::new();
            params.set(0, Value::Int(rng.gen_range(0..100)));
            db.query(session, "SELECT * FROM kv WHERE k = <k>", &params)?;
            Ok(0)
        }
    }

    #[test]
    fn closed_loop_is_deterministic_and_measures() {
        let run = || {
            let cluster = Arc::new(SimCluster::new(
                ClusterConfig::default().with_nodes(3).with_seed(5),
            ));
            let db = Database::new(cluster);
            db.execute_ddl("CREATE TABLE kv (k INT, v VARCHAR(16), PRIMARY KEY (k))")
                .unwrap();
            db.bulk_load("kv", (0..100).map(|i| tuple![i, "x"]))
                .unwrap();
            db.cluster().rebalance();
            let cfg = DriverConfig {
                sessions: 4,
                duration_us: 3 * piql_kv::SECONDS,
                warmup_us: piql_kv::SECONDS,
                ..Default::default()
            };
            let m = run_closed_loop(&db, &PkLookups, &cfg).unwrap();
            (m.count(), m.throughput_per_sec(), m.quantile_ms(0.99))
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same run");
        assert!(a.0 > 100, "interactions completed: {}", a.0);
        assert!(a.2 > 0.0);
    }
}
