//! TPC-W — the customer-facing query subset the paper evaluates (§8.1.1).
//!
//! Nine web interactions (the Table 1 rows): Home, New Products, Product
//! Detail, Search by Author, Search by Title, the three Order Display
//! queries, and Buy Request. "Best Sellers" and "Admin Confirm" are
//! analytical and excluded, as in the paper. The *ordering mix* is
//! approximated over these interactions so that ~30% of interactions
//! perform updates (cart and order creation).
//!
//! Schema notes (deviations recorded in DESIGN.md/EXPERIMENTS.md):
//! * the paper's one required modification — a cardinality constraint on
//!   shopping-cart size — appears on `shopping_cart_line(scl_sc_id)`, and
//!   its mirror on `order_line(ol_o_id)`;
//! * author-name search is bounded with this reproduction's
//!   `CARDINALITY LIMIT 25 (TOKEN(a_lname))` extension (the paper leaves
//!   the author-side bound implicit).

use crate::driver::Workload;
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::{Database, DbError, ExecStrategy, Prepared};
use piql_kv::{KvStore, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicI64, Ordering};

/// TPC-W sizing. The paper keeps 10,000 items constant and scales
/// customers with the cluster; we do the same at laptop scale.
#[derive(Debug, Clone)]
pub struct TpcwConfig {
    pub items: usize,
    pub customers_per_node: usize,
    /// Orders pre-loaded per customer.
    pub orders_per_customer: usize,
    pub cart_limit: u64,
    pub seed: u64,
}

impl Default for TpcwConfig {
    fn default() -> Self {
        TpcwConfig {
            items: 10_000,
            customers_per_node: 150,
            orders_per_customer: 1,
            cart_limit: 100,
            seed: 0x7BC1,
        }
    }
}

pub const SUBJECTS: [&str; 24] = [
    "ARTS",
    "BIOGRAPHIES",
    "BUSINESS",
    "CHILDREN",
    "COMPUTERS",
    "COOKING",
    "HEALTH",
    "HISTORY",
    "HOME",
    "HUMOR",
    "LITERATURE",
    "MYSTERY",
    "NONFICTION",
    "PARENTING",
    "POLITICS",
    "REFERENCE",
    "RELIGION",
    "ROMANCE",
    "SELFHELP",
    "SCIENCE",
    "SCIFI",
    "SPORTS",
    "TRAVEL",
    "YOUTH",
];

pub const TITLE_WORDS: [&str; 40] = [
    "shadow", "river", "empire", "garden", "winter", "summer", "night", "crystal", "silent",
    "broken", "golden", "hidden", "lost", "ancient", "burning", "frozen", "scarlet", "emerald",
    "iron", "velvet", "thunder", "whisper", "raven", "falcon", "harbor", "meadow", "canyon",
    "ember", "willow", "stone", "glass", "paper", "copper", "silver", "marble", "cedar", "amber",
    "ivory", "cobalt", "crimson",
];

pub const SURNAMES: [&str; 50] = [
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
];

/// TPC-W DDL.
pub fn ddl(config: &TpcwConfig) -> Vec<String> {
    vec![
        "CREATE TABLE country ( \
           co_id INT NOT NULL, co_name VARCHAR(50), PRIMARY KEY (co_id) )"
            .into(),
        "CREATE TABLE address ( \
           addr_id INT NOT NULL, addr_street VARCHAR(40), addr_city VARCHAR(30), \
           addr_co_id INT, PRIMARY KEY (addr_id), \
           FOREIGN KEY (addr_co_id) REFERENCES country )"
            .into(),
        "CREATE TABLE customer ( \
           c_uname VARCHAR(20) NOT NULL, c_passwd VARCHAR(20), \
           c_fname VARCHAR(17), c_lname VARCHAR(17), c_addr_id INT, \
           c_discount DOUBLE, PRIMARY KEY (c_uname), \
           FOREIGN KEY (c_addr_id) REFERENCES address )"
            .into(),
        "CREATE TABLE author ( \
           a_id INT NOT NULL, a_fname VARCHAR(20), a_lname VARCHAR(20), \
           PRIMARY KEY (a_id), \
           CARDINALITY LIMIT 25 (TOKEN(a_lname)) )"
            .into(),
        "CREATE TABLE item ( \
           i_id INT NOT NULL, i_title VARCHAR(60), i_a_id INT, \
           i_subject VARCHAR(20), i_pub_date TIMESTAMP, i_cost DOUBLE, \
           i_stock INT, PRIMARY KEY (i_id), \
           FOREIGN KEY (i_a_id) REFERENCES author )"
            .into(),
        "CREATE TABLE orders ( \
           o_id INT NOT NULL, o_c_uname VARCHAR(20), o_date_time TIMESTAMP, \
           o_total DOUBLE, o_status VARCHAR(16), PRIMARY KEY (o_id), \
           FOREIGN KEY (o_c_uname) REFERENCES customer )"
            .into(),
        format!(
            "CREATE TABLE order_line ( \
               ol_o_id INT NOT NULL, ol_id INT NOT NULL, ol_i_id INT, ol_qty INT, \
               PRIMARY KEY (ol_o_id, ol_id), \
               FOREIGN KEY (ol_i_id) REFERENCES item, \
               FOREIGN KEY (ol_o_id) REFERENCES orders, \
               CARDINALITY LIMIT {} (ol_o_id) )",
            config.cart_limit
        ),
        "CREATE TABLE shopping_cart ( \
           sc_id INT NOT NULL, sc_time TIMESTAMP, PRIMARY KEY (sc_id) )"
            .into(),
        format!(
            "CREATE TABLE shopping_cart_line ( \
               scl_sc_id INT NOT NULL, scl_i_id INT NOT NULL, scl_qty INT, \
               PRIMARY KEY (scl_sc_id, scl_i_id), \
               FOREIGN KEY (scl_i_id) REFERENCES item, \
               CARDINALITY LIMIT {} (scl_sc_id) )",
            config.cart_limit
        ),
    ]
}

pub fn customer_uname(i: usize) -> String {
    format!("c{i:08}")
}

/// Initial order ids are spread uniformly over the positive i32 range so
/// range partitioning distributes them — and so ids minted at runtime
/// ([`spread_id`]) land across all partitions instead of hammering the
/// last one (monotonic keys are the classic range-partitioning hot-spot).
pub fn initial_order_id(i: usize, n_orders: usize) -> i32 {
    let step = (i32::MAX as i64) / (n_orders.max(1) as i64 + 1);
    ((i as i64 + 1) * step.max(1)) as i32
}

/// Pseudo-random positive id for runtime-created carts/orders (Fibonacci
/// hashing; collisions are handled by insert-retry).
pub fn spread_id(seq: i64) -> i32 {
    (((seq as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) & 0x7FFF_FFFF) as i32
}

/// Create schema and load data for an `n_nodes`-node cluster.
/// Returns (customers, items, initial orders).
pub fn setup<S: KvStore>(
    db: &Database<S>,
    config: &TpcwConfig,
    n_nodes: usize,
) -> Result<(usize, usize, usize), DbError> {
    for stmt in ddl(config) {
        db.execute_ddl(&stmt)?;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_customers = config.customers_per_node * n_nodes;
    let n_items = config.items;
    let n_authors = (n_items / 4).max(1);

    db.bulk_load(
        "country",
        (0..92).map(|i| Tuple::new(vec![Value::Int(i), Value::Varchar(format!("country {i}"))])),
    )?;
    db.bulk_load(
        "address",
        (0..n_customers as i32).map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Varchar(format!("{} main st", i)),
                Value::Varchar(format!("city{}", i % 997)),
                Value::Int(i % 92),
            ])
        }),
    )?;
    db.bulk_load(
        "customer",
        (0..n_customers).map(|i| {
            Tuple::new(vec![
                Value::Varchar(customer_uname(i)),
                Value::Varchar(format!("pw{i}")),
                Value::Varchar(format!("First{}", i % 311)),
                Value::Varchar(SURNAMES[i % SURNAMES.len()].to_string()),
                Value::Int(i as i32),
                Value::Double((i % 10) as f64 / 100.0),
            ])
        }),
    )?;
    // authors: keep every surname token under the declared limit of 25 by
    // suffixing a serial number once a name is "full"
    db.bulk_load(
        "author",
        (0..n_authors).map(|i| {
            let base = SURNAMES[i % SURNAMES.len()];
            let gen = i / (SURNAMES.len() * 20); // ≤20 per surname per gen
            let lname = if gen == 0 {
                base.to_string()
            } else {
                format!("{base}{gen}")
            };
            Tuple::new(vec![
                Value::Int(i as i32),
                Value::Varchar(format!("Auth{}", i % 409)),
                Value::Varchar(lname),
            ])
        }),
    )?;
    db.bulk_load(
        "item",
        (0..n_items).map(|i| {
            let w = |n: usize| TITLE_WORDS[(i * 7 + n * 13) % TITLE_WORDS.len()];
            Tuple::new(vec![
                Value::Int(i as i32),
                Value::Varchar(format!("{} {} {}", w(1), w(2), w(3))),
                Value::Int(rng.gen_range(0..n_authors) as i32),
                Value::Varchar(SUBJECTS[i % SUBJECTS.len()].to_string()),
                Value::Timestamp(1_000_000_000_000_000 + (i as i64) * 86_400_000_000),
                Value::Double(rng.gen_range(5.0..120.0)),
                Value::Int(rng.gen_range(10..500)),
            ])
        }),
    )?;
    let n_orders = n_customers * config.orders_per_customer;
    db.bulk_load(
        "orders",
        (0..n_orders).map(|i| {
            Tuple::new(vec![
                Value::Int(initial_order_id(i, n_orders)),
                Value::Varchar(customer_uname(i % n_customers)),
                Value::Timestamp(1_200_000_000_000_000 + (i as i64) * 61_000_000),
                Value::Double(rng.gen_range(10.0..500.0)),
                Value::Varchar("SHIPPED".into()),
            ])
        }),
    )?;
    let mut lines = Vec::new();
    for o in 0..n_orders {
        for l in 0..(1 + o % 3) {
            lines.push(Tuple::new(vec![
                Value::Int(initial_order_id(o, n_orders)),
                Value::Int(l as i32),
                Value::Int(rng.gen_range(0..n_items) as i32),
                Value::Int(rng.gen_range(1..4)),
            ]));
        }
    }
    db.bulk_load("order_line", lines)?;
    // seed carts across the id space so rebalance splits the cart
    // namespaces; runtime cart ids then spread over all partitions
    let n_seed = (n_nodes * 8).max(64);
    db.bulk_load(
        "shopping_cart",
        (0..n_seed).map(|i| {
            let id = ((i as i64 + 1) * ((i32::MAX as i64) / (n_seed as i64 + 1))) as i32;
            Tuple::new(vec![Value::Int(id), Value::Timestamp(0)])
        }),
    )?;
    db.bulk_load(
        "shopping_cart_line",
        (0..n_seed).map(|i| {
            let id = ((i as i64 + 1) * ((i32::MAX as i64) / (n_seed as i64 + 1))) as i32;
            Tuple::new(vec![Value::Int(id), Value::Int(0), Value::Int(1)])
        }),
    )?;
    db.cluster().rebalance();
    Ok((n_customers, n_items, n_orders))
}

/// The nine Table-1 queries.
#[derive(Debug)]
pub struct TpcwQueries {
    pub home_customer: Prepared,
    pub home_promotions: Prepared,
    pub new_products: Prepared,
    pub product_detail: Prepared,
    pub search_by_author: Prepared,
    pub search_by_title: Prepared,
    pub order_display_customer: Prepared,
    pub order_display_last_order: Prepared,
    pub order_display_lines: Prepared,
    pub buy_request_cart: Prepared,
}

/// The Table-1 TPC-W query texts, in the paper's row order. Exposed so
/// service harnesses can register the same queries through an API that
/// takes PIQL text (e.g. `piql-server`'s `prepare`).
pub const TABLE1_SQL: &[(&str, &str)] = &[
    ("Home WI", "SELECT * FROM customer WHERE c_uname = <uname>"),
    (
        "Home WI (promotions)",
        "SELECT i_id, i_title FROM item WHERE i_id IN [1: promo MAX 5]",
    ),
    (
        "New Products WI",
        "SELECT i_id, i_title, a_fname, a_lname FROM item, author \
         WHERE i_a_id = a_id AND i_subject LIKE [1: subject] \
         ORDER BY i_pub_date DESC LIMIT 50",
    ),
    (
        "Product Detail WI",
        "SELECT i.*, a.a_fname, a.a_lname FROM item i JOIN author a \
         WHERE i.i_id = <item> AND a.a_id = i.i_a_id",
    ),
    (
        "Search By Author WI",
        "SELECT i_title, i_id, a_fname, a_lname FROM author a JOIN item i \
         WHERE a.a_lname LIKE [1: name] AND i.i_a_id = a.a_id \
         ORDER BY i_title LIMIT 50",
    ),
    (
        "Search By Title WI",
        "SELECT I_TITLE, I_ID, A_FNAME, A_LNAME FROM ITEM, AUTHOR \
         WHERE I_A_ID = A_ID AND I_TITLE LIKE [1: titleWord] \
         ORDER BY I_TITLE LIMIT 50",
    ),
    (
        "Order Display WI Get Customer",
        "SELECT c.*, a.addr_street, a.addr_city, co.co_name \
         FROM customer c JOIN address a JOIN country co \
         WHERE c.c_uname = <uname> AND a.addr_id = c.c_addr_id \
           AND co.co_id = a.addr_co_id",
    ),
    (
        "Order Display WI Get Last Order",
        "SELECT * FROM orders WHERE o_c_uname = <uname> \
         ORDER BY o_date_time DESC LIMIT 1",
    ),
    (
        "Order Display WI Get OrderLines",
        "SELECT ol.*, i.i_title FROM order_line ol JOIN item i \
         WHERE ol.ol_o_id = <order> AND i.i_id = ol.ol_i_id",
    ),
    (
        "Buy Request WI",
        "SELECT scl.*, i.i_title, i.i_cost FROM shopping_cart_line scl JOIN item i \
         WHERE scl.scl_sc_id = <cart> AND i.i_id = scl.scl_i_id",
    ),
];

fn table1(label: &str) -> &'static str {
    TABLE1_SQL
        .iter()
        .find(|(l, _)| *l == label)
        .map(|(_, sql)| *sql)
        .expect("known Table-1 label")
}

impl TpcwQueries {
    pub fn prepare<S: KvStore>(db: &Database<S>) -> Result<Self, DbError> {
        Ok(TpcwQueries {
            home_customer: db.prepare(table1("Home WI"))?,
            home_promotions: db.prepare(table1("Home WI (promotions)"))?,
            new_products: db.prepare(table1("New Products WI"))?,
            product_detail: db.prepare(table1("Product Detail WI"))?,
            search_by_author: db.prepare(table1("Search By Author WI"))?,
            search_by_title: db.prepare(table1("Search By Title WI"))?,
            order_display_customer: db.prepare(table1("Order Display WI Get Customer"))?,
            order_display_last_order: db.prepare(table1("Order Display WI Get Last Order"))?,
            order_display_lines: db.prepare(table1("Order Display WI Get OrderLines"))?,
            buy_request_cart: db.prepare(table1("Buy Request WI"))?,
        })
    }

    /// (Table-1 label, prepared query) in the paper's row order; the two
    /// Home queries are exposed separately.
    pub fn labeled(&self) -> Vec<(&'static str, &Prepared)> {
        vec![
            ("Home WI", &self.home_customer),
            ("Home WI (promotions)", &self.home_promotions),
            ("New Products WI", &self.new_products),
            ("Product Detail WI", &self.product_detail),
            ("Search By Author WI", &self.search_by_author),
            ("Search By Title WI", &self.search_by_title),
            (
                "Order Display WI Get Customer",
                &self.order_display_customer,
            ),
            (
                "Order Display WI Get Last Order",
                &self.order_display_last_order,
            ),
            ("Order Display WI Get OrderLines", &self.order_display_lines),
            ("Buy Request WI", &self.buy_request_cart),
        ]
    }
}

/// Interaction kinds (metrics labels).
pub const KIND_HOME: usize = 0;
pub const KIND_NEW_PRODUCTS: usize = 1;
pub const KIND_PRODUCT_DETAIL: usize = 2;
pub const KIND_SEARCH_AUTHOR: usize = 3;
pub const KIND_SEARCH_TITLE: usize = 4;
pub const KIND_ORDER_DISPLAY: usize = 5;
pub const KIND_BUY_REQUEST: usize = 6;

/// The TPC-W workload with the (approximated) ordering mix.
pub struct TpcwWorkload {
    pub queries: TpcwQueries,
    pub n_customers: usize,
    pub n_items: usize,
    pub n_orders_initial: usize,
    next_cart_id: AtomicI64,
    next_order_id: AtomicI64,
}

impl TpcwWorkload {
    pub fn new<S: KvStore>(
        db: &Database<S>,
        n_customers: usize,
        n_items: usize,
        n_orders: usize,
    ) -> Result<Self, DbError> {
        Ok(TpcwWorkload {
            queries: TpcwQueries::prepare(db)?,
            n_customers,
            n_items,
            n_orders_initial: n_orders,
            next_cart_id: AtomicI64::new(1),
            next_order_id: AtomicI64::new((n_orders as i64) << 8),
        })
    }

    pub fn random_params(&self, kind: usize, rng: &mut StdRng) -> Params {
        let mut p = Params::new();
        match kind {
            KIND_HOME => {
                p.set(
                    0,
                    Value::Varchar(customer_uname(rng.gen_range(0..self.n_customers))),
                );
            }
            KIND_NEW_PRODUCTS => {
                p.set(
                    0,
                    Value::Varchar(SUBJECTS[rng.gen_range(0..SUBJECTS.len())].to_string()),
                );
            }
            KIND_PRODUCT_DETAIL => {
                p.set(0, Value::Int(rng.gen_range(0..self.n_items) as i32));
            }
            KIND_SEARCH_AUTHOR => {
                p.set(
                    0,
                    Value::Varchar(SURNAMES[rng.gen_range(0..SURNAMES.len())].to_string()),
                );
            }
            KIND_SEARCH_TITLE => {
                p.set(
                    0,
                    Value::Varchar(TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())].to_string()),
                );
            }
            _ => {}
        }
        p
    }
}

impl Workload for TpcwWorkload {
    fn kinds(&self) -> Vec<&'static str> {
        vec![
            "Home",
            "New Products",
            "Product Detail",
            "Search by Author",
            "Search by Title",
            "Order Display",
            "Buy Request",
        ]
    }

    fn interaction(
        &self,
        db: &Database,
        session: &mut Session,
        rng: &mut StdRng,
        strategy: ExecStrategy,
    ) -> Result<usize, DbError> {
        // ordering-mix approximation over the nine implemented interactions;
        // Buy Request's weight makes ~28% of interactions updating (§8.1.1:
        // "30% of all requests lead to an update")
        let dice: f64 = rng.gen();
        let q = &self.queries;
        let uname = customer_uname(rng.gen_range(0..self.n_customers));
        let mut p_uname = Params::new();
        p_uname.set(0, Value::Varchar(uname.clone()));
        if dice < 0.14 {
            // Home: customer + 5 promotional items
            db.execute_with(session, &q.home_customer, &p_uname, strategy, None)?;
            let promos: Vec<Value> = (0..5)
                .map(|_| Value::Int(rng.gen_range(0..self.n_items) as i32))
                .collect();
            let mut p = Params::new();
            p.set(0, promos);
            db.execute_with(session, &q.home_promotions, &p, strategy, None)?;
            Ok(KIND_HOME)
        } else if dice < 0.25 {
            let p = self.random_params(KIND_NEW_PRODUCTS, rng);
            db.execute_with(session, &q.new_products, &p, strategy, None)?;
            Ok(KIND_NEW_PRODUCTS)
        } else if dice < 0.41 {
            let p = self.random_params(KIND_PRODUCT_DETAIL, rng);
            db.execute_with(session, &q.product_detail, &p, strategy, None)?;
            Ok(KIND_PRODUCT_DETAIL)
        } else if dice < 0.50 {
            let p = self.random_params(KIND_SEARCH_AUTHOR, rng);
            db.execute_with(session, &q.search_by_author, &p, strategy, None)?;
            Ok(KIND_SEARCH_AUTHOR)
        } else if dice < 0.59 {
            let p = self.random_params(KIND_SEARCH_TITLE, rng);
            db.execute_with(session, &q.search_by_title, &p, strategy, None)?;
            Ok(KIND_SEARCH_TITLE)
        } else if dice < 0.72 {
            // Order Display: customer, last order, its lines
            db.execute_with(session, &q.order_display_customer, &p_uname, strategy, None)?;
            let r = db.execute_with(
                session,
                &q.order_display_last_order,
                &p_uname,
                strategy,
                None,
            )?;
            if let Some(order) = r.rows.first() {
                let mut p = Params::new();
                p.set(0, order[0].clone());
                db.execute_with(session, &q.order_display_lines, &p, strategy, None)?;
            }
            Ok(KIND_ORDER_DISPLAY)
        } else {
            // Buy Request: create a cart, add items, read it back, place
            // the order (the updating portion of the mix). Ids are spread
            // pseudo-randomly; retry on the (rare) collision.
            let mut cart = 0i32;
            for attempt in 0..8 {
                cart = spread_id(self.next_cart_id.fetch_add(1, Ordering::Relaxed));
                let mut p = Params::new();
                p.set(0, Value::Int(cart));
                p.set(1, Value::Timestamp(session.now as i64));
                match db.execute_dml(
                    session,
                    "INSERT INTO shopping_cart (sc_id, sc_time) VALUES (<cart>, <now>)",
                    &p,
                ) {
                    Ok(()) => break,
                    Err(DbError::Write(piql_engine::WriteError::DuplicateKey { .. }))
                        if attempt < 7 => {}
                    Err(e) => return Err(e),
                }
            }
            let n_lines = rng.gen_range(1..4usize);
            let mut line_items = Vec::new();
            for _ in 0..n_lines {
                let item = rng.gen_range(0..self.n_items) as i32;
                if line_items.contains(&item) {
                    continue;
                }
                line_items.push(item);
                let mut p = Params::new();
                p.set(0, Value::Int(cart));
                p.set(1, Value::Int(item));
                p.set(2, Value::Int(rng.gen_range(1..4)));
                db.execute_dml(
                    session,
                    "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) \
                     VALUES (<cart>, <item>, <qty>)",
                    &p,
                )?;
            }
            let mut p = Params::new();
            p.set(0, Value::Int(cart));
            db.execute_with(session, &q.buy_request_cart, &p, strategy, None)?;
            // place the order
            let mut order = 0i32;
            for attempt in 0..8 {
                order = spread_id(self.next_order_id.fetch_add(1, Ordering::Relaxed));
                let mut p = Params::new();
                p.set(0, Value::Int(order));
                p.set(1, Value::Varchar(uname.clone()));
                p.set(2, Value::Timestamp(session.now as i64));
                match db.execute_dml(
                    session,
                    "INSERT INTO orders (o_id, o_c_uname, o_date_time, o_total, o_status) \
                     VALUES (<o>, <uname>, <now>, 99.5, 'PENDING')",
                    &p,
                ) {
                    Ok(()) => break,
                    Err(DbError::Write(piql_engine::WriteError::DuplicateKey { .. }))
                        if attempt < 7 => {}
                    Err(e) => return Err(e),
                }
            }
            for (l, item) in line_items.iter().enumerate() {
                let mut p = Params::new();
                p.set(0, Value::Int(order));
                p.set(1, Value::Int(l as i32));
                p.set(2, Value::Int(*item));
                db.execute_dml(
                    session,
                    "INSERT INTO order_line (ol_o_id, ol_id, ol_i_id, ol_qty) \
                     VALUES (<o>, <l>, <item>, 1)",
                    &p,
                )?;
            }
            Ok(KIND_BUY_REQUEST)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_closed_loop, DriverConfig};
    use piql_kv::{ClusterConfig, SimCluster};
    use std::sync::Arc;

    fn small_config() -> TpcwConfig {
        TpcwConfig {
            items: 400,
            customers_per_node: 40,
            ..Default::default()
        }
    }

    #[test]
    fn all_nine_queries_compile_scale_independent() {
        let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(3)));
        let db = Database::new(cluster);
        let (c, i, o) = setup(&db, &small_config(), 3).unwrap();
        assert_eq!((c, i, o), (120, 400, 120));
        let w = TpcwWorkload::new(&db, c, i, o).unwrap();
        for (label, prepared) in w.queries.labeled() {
            assert!(
                prepared.compiled.bounds.guaranteed,
                "{label} must be scale-independent"
            );
            assert!(
                prepared.compiled.class.is_scale_independent(),
                "{label}: {:?}",
                prepared.compiled.class
            );
        }
    }

    #[test]
    fn expected_indexes_are_derived() {
        let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(2)));
        let db = Database::new(cluster);
        setup(&db, &small_config(), 2).unwrap();
        TpcwQueries::prepare(&db).unwrap();
        let catalog = db.catalog();
        let index_names: Vec<String> = catalog.indexes().map(|i| i.name.clone()).collect();
        // §8.2: the compiler creates 5 indexes beyond primary keys; ours:
        // items by (token(subject), pub_date), items by (token(title), title),
        // items by (a_id, title), orders by (c_uname, date), and the author
        // token enforcement index
        let expect_fragments = [
            "idx_item_tok_i_subject",
            "idx_item_tok_i_title",
            "idx_item_i_a_id_i_title",
            "idx_orders_o_c_uname",
            "idx_author_tok_a_lname",
        ];
        for frag in expect_fragments {
            assert!(
                index_names.iter().any(|n| n.starts_with(frag)),
                "missing index {frag}; have {index_names:?}"
            );
        }
    }

    #[test]
    fn mix_runs_and_updates_flow() {
        let cluster = Arc::new(SimCluster::new(
            ClusterConfig::default().with_nodes(4).with_seed(21),
        ));
        let db = Database::new(cluster);
        let (c, i, o) = setup(&db, &small_config(), 4).unwrap();
        let w = TpcwWorkload::new(&db, c, i, o).unwrap();
        let cfg = DriverConfig {
            sessions: 6,
            duration_us: 6 * piql_kv::SECONDS,
            warmup_us: piql_kv::SECONDS,
            ..Default::default()
        };
        let m = run_closed_loop(&db, &w, &cfg).unwrap();
        assert!(m.count() > 30, "completed {}", m.count());
        // buy requests happened and created orders
        let buys = m
            .samples
            .iter()
            .filter(|s| s.kind == KIND_BUY_REQUEST)
            .count();
        assert!(buys > 0);
        assert!(w.next_order_id.load(Ordering::Relaxed) > o as i64);
    }
}
