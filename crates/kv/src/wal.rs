//! Write-ahead-log hook: the narrow seam `piql-durability` plugs into.
//!
//! [`LiveCluster`](crate::LiveCluster) is in-memory; durability lives in a
//! separate crate that implements [`WalSink`] and attaches it via
//! [`LiveCluster::attach_wal`](crate::LiveCluster::attach_wal). The store
//! calls the sink at exactly the points where its memory state changes:
//!
//! * `append_*` — invoked **inside the owning shard's write lock**, after
//!   the mutation has been decided but in the same critical section that
//!   applies it. Holding the lock means the sink observes per-key effects
//!   in exactly the order memory applies them, so replaying the log
//!   reproduces the same final state (and a fuzzy snapshot plus tail
//!   replay converges — puts and deletes are idempotent). Implementations
//!   must therefore be cheap here: buffer the record and return; never
//!   block on I/O.
//! * `commit` — invoked once per [`execute_round`](crate::KvStore) that
//!   contained at least one write, *before* the round is acknowledged to
//!   the session. This is the durability barrier: block until every
//!   record appended so far is on stable storage (group commit
//!   implementations coalesce concurrent callers into one fsync) and
//!   report whether the barrier was actually reached — a sink whose
//!   backing log has failed returns `false`, and the store latches that
//!   into [`LiveCluster::wal_degraded`](crate::LiveCluster) so the
//!   serving layer can stop acknowledging writes as durable. Bulk loads
//!   (`bulk_put`) append without a barrier — they are recovery or seed
//!   traffic, made durable by the next commit or snapshot.
//!
//! The trait lives in `piql-kv` (not `piql-durability`) so the store has
//! no dependency on the durability crate; a cluster with no sink attached
//! pays one relaxed `RwLock` read per write.

use crate::op::NsId;

/// Receiver for the store's write-ahead stream. See the module docs for
/// the calling contract (`append_*` under the shard lock, `commit` as the
/// pre-acknowledgement barrier).
pub trait WalSink: Send + Sync {
    /// A namespace came into existence (or is being announced at attach
    /// time). Records carry the assigned id so recovery can verify that
    /// replay reproduces the same id assignment.
    fn append_ns(&self, ns: NsId, name: &str);
    /// `key` in `ns` now maps to `value`.
    fn append_put(&self, ns: NsId, key: &[u8], value: &[u8]);
    /// `key` in `ns` is now absent.
    fn append_delete(&self, ns: NsId, key: &[u8]);
    /// Block until everything appended so far is durable. Returns `false`
    /// when the sink can no longer make the barrier durable (its backing
    /// log is dead) — the caller must not treat the writes as durable.
    fn commit(&self) -> bool;
}
