//! Logical data storage.
//!
//! Data lives once per namespace in an ordered map; *placement* (which node
//! serves which key range) is modeled separately by the partition map, so
//! replication affects timing and visibility without duplicating bytes.
//!
//! Eventual consistency (§3, §7.2) is modeled with per-entry versions: each
//! write records its virtual commit time and keeps the previous version;
//! a read served by a non-primary replica only observes writes older than
//! the configured replica lag, otherwise it sees the previous version —
//! exactly the read-your-writes anomaly an asynchronously replicated store
//! exhibits.

use crate::time::Micros;
use piql_analysis::ordered::RwLock;
use piql_analysis::rank;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One versioned entry. `None` data = tombstone.
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned {
    pub data: Option<Vec<u8>>,
    pub written_at: Micros,
    pub prev: Option<(Option<Vec<u8>>, Micros)>,
}

impl Versioned {
    /// The value visible to a reader that only sees writes committed at or
    /// before `horizon`.
    pub fn visible_at(&self, horizon: Micros) -> Option<&[u8]> {
        if self.written_at <= horizon {
            self.data.as_deref()
        } else {
            match &self.prev {
                Some((data, at)) if *at <= horizon => data.as_deref(),
                _ => None,
            }
        }
    }
}

/// An ordered, versioned namespace.
#[derive(Debug)]
pub struct Namespace {
    entries: RwLock<BTreeMap<Vec<u8>, Versioned>>,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    pub fn new() -> Self {
        Namespace {
            entries: RwLock::new(rank::SIM_STORE, "sim.store", BTreeMap::new()),
        }
    }

    pub fn put(&self, key: Vec<u8>, value: Option<Vec<u8>>, at: Micros) {
        let mut map = self.entries.write();
        match map.get_mut(&key) {
            Some(v) => {
                let old = (v.data.take(), v.written_at);
                v.prev = Some(old);
                v.data = value;
                v.written_at = at;
            }
            None => {
                map.insert(
                    key,
                    Versioned {
                        data: value,
                        written_at: at,
                        prev: None,
                    },
                );
            }
        }
    }

    pub fn get(&self, key: &[u8], horizon: Micros) -> Option<Vec<u8>> {
        self.entries
            .read()
            .get(key)
            .and_then(|v| v.visible_at(horizon).map(<[u8]>::to_vec))
    }

    /// Atomic compare-and-swap against the *latest* version (the store's
    /// primary replica coordinates TAS, so no lag applies).
    pub fn test_and_set(
        &self,
        key: &[u8],
        expect: Option<&[u8]>,
        value: Option<Vec<u8>>,
        at: Micros,
    ) -> (bool, Option<Vec<u8>>) {
        let mut map = self.entries.write();
        let current = map.get(key).and_then(|v| v.data.clone());
        if current.as_deref() != expect {
            return (false, current);
        }
        match map.get_mut(key) {
            Some(v) => {
                let old = (v.data.take(), v.written_at);
                v.prev = Some(old);
                v.data = value.clone();
                v.written_at = at;
            }
            None => {
                map.insert(
                    key.to_vec(),
                    Versioned {
                        data: value.clone(),
                        written_at: at,
                        prev: None,
                    },
                );
            }
        }
        (true, value)
    }

    /// Scan `[start, end)` (or reversed), returning up to `limit` visible
    /// entries.
    pub fn range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<u64>,
        reverse: bool,
        horizon: Micros,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let map = self.entries.read();
        let lo = Bound::Included(start.to_vec());
        let hi = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        let limit = limit.unwrap_or(u64::MAX) as usize;
        let mut out = Vec::new();
        let iter = map.range::<Vec<u8>, _>((lo, hi));
        if reverse {
            for (k, v) in iter.rev() {
                if let Some(data) = v.visible_at(horizon) {
                    out.push((k.clone(), data.to_vec()));
                    if out.len() >= limit {
                        break;
                    }
                }
            }
        } else {
            for (k, v) in iter {
                if let Some(data) = v.visible_at(horizon) {
                    out.push((k.clone(), data.to_vec()));
                    if out.len() >= limit {
                        break;
                    }
                }
            }
        }
        out
    }

    pub fn count_range(&self, start: &[u8], end: Option<&[u8]>, horizon: Micros) -> u64 {
        let map = self.entries.read();
        let lo = Bound::Included(start.to_vec());
        let hi = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        map.range::<Vec<u8>, _>((lo, hi))
            .filter(|(_, v)| v.visible_at(horizon).is_some())
            .count() as u64
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Keys at the given quantile positions — used to compute partition
    /// split points.
    pub fn quantile_keys(&self, parts: usize) -> Vec<Vec<u8>> {
        let map = self.entries.read();
        let n = map.len();
        if parts <= 1 || n == 0 {
            return Vec::new();
        }
        let mut splits = Vec::with_capacity(parts - 1);
        let step = n / parts;
        if step == 0 {
            return Vec::new();
        }
        for (i, (k, _)) in map.iter().enumerate() {
            if i > 0 && i % step == 0 && splits.len() < parts - 1 {
                splits.push(k.clone());
            }
        }
        splits
    }

    /// Drop tombstones and old versions older than `horizon` (GC).
    pub fn compact(&self, horizon: Micros) {
        let mut map = self.entries.write();
        map.retain(|_, v| {
            if v.written_at <= horizon {
                v.prev = None;
            }
            !(v.data.is_none() && v.written_at <= horizon)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_and_tombstone() {
        let ns = Namespace::new();
        ns.put(b"a".to_vec(), Some(b"1".to_vec()), 10);
        assert_eq!(ns.get(b"a", 10), Some(b"1".to_vec()));
        ns.put(b"a".to_vec(), None, 20);
        assert_eq!(ns.get(b"a", 20), None);
        assert_eq!(ns.get(b"a", 15), Some(b"1".to_vec()), "old version visible");
    }

    #[test]
    fn replica_lag_hides_recent_writes() {
        let ns = Namespace::new();
        ns.put(b"k".to_vec(), Some(b"v1".to_vec()), 100);
        ns.put(b"k".to_vec(), Some(b"v2".to_vec()), 200);
        assert_eq!(ns.get(b"k", 250), Some(b"v2".to_vec()));
        assert_eq!(ns.get(b"k", 150), Some(b"v1".to_vec()));
        assert_eq!(ns.get(b"k", 50), None);
    }

    #[test]
    fn test_and_set_semantics() {
        let ns = Namespace::new();
        let (ok, cur) = ns.test_and_set(b"k", None, Some(b"v".to_vec()), 10);
        assert!(ok);
        assert_eq!(cur, Some(b"v".to_vec()));
        let (ok, cur) = ns.test_and_set(b"k", None, Some(b"w".to_vec()), 20);
        assert!(!ok, "expected-absent fails when present");
        assert_eq!(cur, Some(b"v".to_vec()));
        let (ok, _) = ns.test_and_set(b"k", Some(b"v"), None, 30);
        assert!(ok, "conditional delete");
        assert_eq!(ns.get(b"k", 30), None);
    }

    #[test]
    fn range_scans_forward_reverse_limit() {
        let ns = Namespace::new();
        for i in 0..10u8 {
            ns.put(vec![i], Some(vec![i]), 0);
        }
        let fwd = ns.range(&[2], Some(&[7]), None, false, 0);
        assert_eq!(fwd.len(), 5);
        assert_eq!(fwd[0].0, vec![2]);
        let rev = ns.range(&[2], Some(&[7]), Some(2), true, 0);
        assert_eq!(rev.len(), 2);
        assert_eq!(rev[0].0, vec![6]);
        assert_eq!(rev[1].0, vec![5]);
        assert_eq!(ns.count_range(&[0], None, 0), 10);
    }

    #[test]
    fn quantiles_and_compaction() {
        let ns = Namespace::new();
        for i in 0..100u8 {
            ns.put(vec![i], Some(vec![i]), 5);
        }
        let splits = ns.quantile_keys(4);
        assert_eq!(splits.len(), 3);
        assert!(splits[0] < splits[1] && splits[1] < splits[2]);
        ns.put(vec![5], None, 10);
        ns.compact(20);
        assert_eq!(ns.len(), 99, "tombstone collected");
    }
}
