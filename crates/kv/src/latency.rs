//! Cloud latency modeling.
//!
//! Per-operation service times are heavy-tailed lognormals (the shape
//! Dynamo-style stores exhibit, §3) plus payload-proportional terms, and
//! every node suffers *interference intervals* — randomly slowed stretches
//! of time modeling noisy multi-tenant neighbors (§6.3's motivation for
//! modeling the p99 as a distribution over intervals rather than a point).

use crate::op::KvRequest;
use crate::time::Micros;
use rand::Rng;

/// Latency model configuration.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Median of one op's base latency (network RTT + service), µs.
    pub median_us: f64,
    /// Lognormal sigma; 0.6 puts p99 ≈ 4× the median.
    pub sigma: f64,
    /// Added per entry returned by range scans / counted, µs.
    pub per_entry_us: f64,
    /// Added per KiB of payload, µs.
    pub per_kib_us: f64,
    /// Multiplier for writes (replica coordination overhead).
    pub write_factor: f64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        // Calibrated to 2011-era EC2 key/value stores: median get ≈ 4 ms,
        // p99 ≈ 16-20 ms unloaded.
        LatencyConfig {
            median_us: 4_000.0,
            sigma: 0.6,
            per_entry_us: 15.0,
            per_kib_us: 40.0,
            write_factor: 1.25,
        }
    }
}

impl LatencyConfig {
    /// Zero latency: pure-correctness tests.
    pub fn zero() -> Self {
        LatencyConfig {
            median_us: 0.0,
            sigma: 0.0,
            per_entry_us: 0.0,
            per_kib_us: 0.0,
            write_factor: 1.0,
        }
    }

    /// Sample one service time for `req` with the given result size.
    pub fn sample(
        &self,
        rng: &mut impl Rng,
        req: &KvRequest,
        result_entries: u64,
        result_bytes: u64,
    ) -> Micros {
        if self.median_us == 0.0 {
            return 0;
        }
        // lognormal via Box-Muller on two uniforms
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let base = self.median_us * (self.sigma * z).exp();
        let payload = result_entries as f64 * self.per_entry_us
            + result_bytes as f64 / 1024.0 * self.per_kib_us;
        let factor = if req.is_write() {
            self.write_factor
        } else {
            1.0
        };
        ((base + payload) * factor) as Micros
    }
}

/// Interference configuration: within each wall-clock interval a node is,
/// with probability `prob`, slowed by a multiplier drawn uniformly from
/// `multiplier`.
#[derive(Debug, Clone)]
pub struct InterferenceConfig {
    pub interval_us: Micros,
    pub prob: f64,
    pub multiplier: (f64, f64),
}

impl Default for InterferenceConfig {
    fn default() -> Self {
        InterferenceConfig {
            interval_us: 10 * crate::time::SECONDS,
            prob: 0.08,
            multiplier: (1.5, 3.0),
        }
    }
}

impl InterferenceConfig {
    pub fn none() -> Self {
        InterferenceConfig {
            interval_us: crate::time::SECONDS,
            prob: 0.0,
            multiplier: (1.0, 1.0),
        }
    }

    /// Deterministic slow-down factor for `node` during the interval
    /// containing `at`.
    pub fn factor(&self, seed: u64, node: usize, at: Micros) -> f64 {
        if self.prob == 0.0 {
            return 1.0;
        }
        let interval = at / self.interval_us.max(1);
        // splitmix-style hash of (seed, node, interval)
        let mut h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(node as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(interval);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.prob {
            // reuse upper hash bits for the multiplier draw
            let unit2 =
                ((h.wrapping_mul(0x2545_F491_4F6C_DD1D)) >> 11) as f64 / (1u64 << 53) as f64;
            self.multiplier.0 + unit2 * (self.multiplier.1 - self.multiplier.0)
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::NsId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn get_req() -> KvRequest {
        KvRequest::Get {
            ns: NsId(0),
            key: vec![1],
        }
    }

    #[test]
    fn lognormal_shape_roughly_calibrated() {
        let cfg = LatencyConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut samples: Vec<Micros> = (0..20_000)
            .map(|_| cfg.sample(&mut rng, &get_req(), 0, 0))
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let p99 = samples[samples.len() * 99 / 100];
        assert!((3_000..5_000).contains(&median), "median {median}");
        assert!((10_000..30_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn payload_terms_add_up() {
        let cfg = LatencyConfig {
            median_us: 1000.0,
            sigma: 0.0,
            per_entry_us: 10.0,
            per_kib_us: 100.0,
            write_factor: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let base = cfg.sample(&mut rng, &get_req(), 0, 0);
        assert_eq!(base, 1000);
        let with_payload = cfg.sample(&mut rng, &get_req(), 10, 2048);
        assert_eq!(with_payload, 1000 + 100 + 200);
        let write = KvRequest::Put {
            ns: NsId(0),
            key: vec![],
            value: vec![],
        };
        assert_eq!(cfg.sample(&mut rng, &write, 0, 0), 2000);
    }

    #[test]
    fn zero_config_is_zero() {
        let cfg = LatencyConfig::zero();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(cfg.sample(&mut rng, &get_req(), 100, 10000), 0);
    }

    #[test]
    fn interference_is_deterministic_and_bounded() {
        let cfg = InterferenceConfig {
            interval_us: 1_000_000,
            prob: 0.5,
            multiplier: (2.0, 3.0),
        };
        let mut slowed = 0;
        for interval in 0..1000 {
            let f1 = cfg.factor(42, 3, interval * 1_000_000);
            let f2 = cfg.factor(42, 3, interval * 1_000_000 + 500);
            assert_eq!(f1, f2, "same interval, same factor");
            assert!(f1 == 1.0 || (2.0..=3.0).contains(&f1));
            if f1 > 1.0 {
                slowed += 1;
            }
        }
        assert!(
            (300..700).contains(&slowed),
            "≈50% of intervals slowed: {slowed}"
        );
        assert_eq!(InterferenceConfig::none().factor(42, 0, 123), 1.0);
    }
}
