//! Live operator latency samples — the raw material of online model
//! training (§6.1 applied to the serving store instead of a training
//! cluster).
//!
//! The execution engine tags its session with an [`OpTag`] describing the
//! remote operator it is currently running (kind plus the model's
//! cardinality parameters); [`LiveCluster`](crate::LiveCluster) measures
//! every tagged round on the wall clock and pushes one [`OpSample`] per
//! round into its [`LiveSampleSink`]. A periodic consumer (the server's
//! `Revalidator`) drains the sink and folds the samples into the SLO
//! prediction models, closing the loop between the store the service
//! actually runs on and the admission decisions made against it.
//!
//! The sink is deliberately cheap on the hot path: samples are striped over
//! a handful of short-critical-section buffers, capacity is bounded (a
//! slow or absent consumer costs a counter bump, never memory), and
//! draining swaps the buffers out wholesale.

use crate::time::Micros;
use piql_analysis::ordered::Mutex;
use piql_analysis::rank;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Remote-operator kinds as the storage layer sees them — the same
/// vocabulary as the paper's three modeled operators (§6.1). The predictor
/// maps these onto its `OpKind`; the engine picks the tag from the plan
/// node it is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LiveOpKind {
    /// One bounded range read of α entries.
    IndexScan,
    /// α_c parallel primary-key gets.
    IndexFKJoin,
    /// α_c parallel bounded range reads of α_j entries each.
    SortedIndexJoin,
}

impl LiveOpKind {
    /// Stable index (also the `RunMetrics` interaction-kind label index
    /// the server records per statement).
    pub fn index(self) -> usize {
        match self {
            LiveOpKind::IndexScan => 0,
            LiveOpKind::IndexFKJoin => 1,
            LiveOpKind::SortedIndexJoin => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LiveOpKind::IndexScan => "IndexScan",
            LiveOpKind::IndexFKJoin => "IndexFKJoin",
            LiveOpKind::SortedIndexJoin => "SortedIndexJoin",
        }
    }
}

/// The operator context a session carries while one remote operator's
/// rounds execute: the operator kind and the model parameters Θ is indexed
/// by (child cardinality α_c, per-key fan-out α_j, tuple bytes β).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTag {
    pub op: LiveOpKind,
    pub alpha_c: u32,
    pub alpha_j: u32,
    pub beta: u32,
}

/// One observed operator execution: the tag (op kind + cardinality bucket
/// parameters) and the round's wall-clock latency in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSample {
    pub tag: OpTag,
    pub micros: Micros,
}

/// Number of stripe buffers. A small power of two: enough that concurrent
/// sessions rarely contend on the same stripe, small enough that draining
/// stays trivial.
const SINK_STRIPES: usize = 8;

/// Default bound on buffered samples (across all stripes). At ~32 bytes a
/// sample this caps an undrained sink near 2 MiB.
pub const DEFAULT_SINK_CAPACITY: usize = 65_536;

/// A bounded, striped buffer of [`OpSample`]s.
pub struct LiveSampleSink {
    stripes: Vec<Mutex<Vec<OpSample>>>,
    per_stripe_capacity: usize,
    /// Round-robin stripe selector (`Relaxed`: distribution, not ordering).
    cursor: AtomicUsize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Default for LiveSampleSink {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SINK_CAPACITY)
    }
}

impl LiveSampleSink {
    pub fn with_capacity(capacity: usize) -> Self {
        LiveSampleSink {
            stripes: (0..SINK_STRIPES)
                .map(|_| Mutex::new(rank::KV_SAMPLE_STRIPE, "kv.sample.stripe", Vec::new()))
                .collect(),
            per_stripe_capacity: capacity.div_ceil(SINK_STRIPES).max(1),
            cursor: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one sample. Bounded: when the chosen stripe is full the
    /// sample is dropped and counted, so a consumerless sink can never
    /// grow without limit.
    pub fn record(&self, sample: OpSample) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % self.stripes.len();
        let mut stripe = self.stripes[idx].lock();
        if stripe.len() >= self.per_stripe_capacity {
            drop(stripe);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        stripe.push(sample);
        drop(stripe);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Take every buffered sample, leaving the sink empty.
    pub fn drain(&self) -> Vec<OpSample> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.append(&mut stripe.lock());
        }
        out
    }

    /// Samples accepted since creation (drained or still buffered).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Samples rejected because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(us: Micros) -> OpSample {
        OpSample {
            tag: OpTag {
                op: LiveOpKind::IndexScan,
                alpha_c: 10,
                alpha_j: 1,
                beta: 40,
            },
            micros: us,
        }
    }

    #[test]
    fn record_and_drain_roundtrip() {
        let sink = LiveSampleSink::default();
        for i in 0..100 {
            sink.record(sample(i));
        }
        assert_eq!(sink.recorded(), 100);
        let mut drained = sink.drain();
        assert_eq!(drained.len(), 100);
        drained.sort_by_key(|s| s.micros);
        assert_eq!(drained[99].micros, 99);
        assert!(sink.drain().is_empty(), "drain leaves the sink empty");
    }

    #[test]
    fn sink_is_bounded_and_counts_drops() {
        let sink = LiveSampleSink::with_capacity(16);
        for i in 0..1000 {
            sink.record(sample(i));
        }
        let buffered = sink.drain().len();
        assert!(buffered <= 16 + SINK_STRIPES, "buffered {buffered}");
        assert_eq!(sink.recorded() + sink.dropped(), 1000);
        assert!(sink.dropped() > 0);
        // after a drain the sink accepts samples again
        sink.record(sample(7));
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let sink = std::sync::Arc::new(LiveSampleSink::default());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        sink.record(sample(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(sink.recorded(), 4000);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.drain().len(), 4000);
    }
}
