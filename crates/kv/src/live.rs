//! `LiveCluster` — a real-time, thread-safe key/value backend.
//!
//! Where [`SimCluster`](crate::SimCluster) models a distributed store in
//! virtual time, `LiveCluster` *is* a store: sharded ordered maps serving
//! concurrent sessions on the wall clock. It implements the same
//! [`KvStore`] trait, so the whole engine — optimizer bounds, executors,
//! cursors, the write path — runs against it unchanged; this is what
//! `piql-server` fronts with its TCP interface.
//!
//! Design:
//!
//! * Each namespace is split into **contiguous key-range shards** at
//!   explicit split points (initially `shards_per_namespace` leading-byte
//!   stripes), each an ordered map under its own `RwLock`. Point
//!   operations binary-search the split points and touch exactly one
//!   shard; range scans walk the overlapping shards in key order, so lock
//!   contention is striped while scan semantics stay identical to a single
//!   ordered map.
//! * [`LiveCluster::rebalance`] re-learns each namespace's split points at
//!   quantiles of its observed keys — the live-path analog of the SCADS
//!   Director the simulator models — and atomically swaps the re-sharded
//!   namespace in behind an `Arc`'d routing table. Readers route through
//!   the snapshot they loaded; writers briefly serialize on the swap;
//!   concurrent sessions never observe a missing key.
//! * A round's requests **fan out over a shared worker pool**
//!   ([`RoundPool`]) and the round completes at the slowest request — the
//!   same round semantics `SimCluster` models in virtual time (§4, Fig.
//!   12). Responses stay positional. Within one round, requests must be
//!   independent (the engine's rounds always are); the store may execute
//!   them in any order or interleaving.
//! * Sessions carry wall-clock time: `Session::now` is set to the cluster's
//!   monotonic epoch offset when a round completes, so
//!   `Session::elapsed_since` measures real latency with the same API the
//!   simulation uses.
//! * Single-copy strong consistency: `test_and_set` is atomic under the
//!   owning shard's write lock, reads always observe the latest write.
//! * Every storage operation is counted. [`LiveCluster::op_count`] is the
//!   hook the admission-control tests use to prove rejected statements
//!   issue **zero** storage requests.

use crate::cluster::{KvStore, NsBalance};
use crate::op::{KvEntry, KvRequest, KvResponse, NsId, RequestRound};
use crate::pool::{default_pool_threads, RoundPool};
use crate::sample::{LiveSampleSink, OpSample};
use crate::session::Session;
use crate::wal::WalSink;
use piql_analysis::ordered::RwLock;
use piql_analysis::rank;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// `LiveCluster` sizing.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Lock-striping factor: contiguous key-range shards per namespace.
    pub shards_per_namespace: usize,
    /// Workers in the round fan-out pool. `0` executes every round
    /// sequentially on the calling thread (the pre-pool behavior — useful
    /// as a baseline and for single-threaded determinism).
    pub pool_threads: usize,
    /// Injected service time per storage request, µs. Zero in production;
    /// tests and benches set it to make round timing observable (an
    /// in-memory map serves requests in nanoseconds, so parallel-vs-serial
    /// differences would otherwise drown in noise). Adjustable at runtime
    /// via [`LiveCluster::set_request_delay_us`] — the drift tests slow a
    /// *running* store down without restarting anything.
    pub request_delay_us: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            shards_per_namespace: 16,
            pool_threads: default_pool_threads(),
            request_delay_us: 0,
        }
    }
}

/// Monotonic operation counters (all `Relaxed`; read for reporting only).
#[derive(Debug, Default)]
pub struct LiveStats {
    /// Logical storage requests served (one per round entry + bulk loads).
    pub ops: AtomicU64,
    /// Per-shard operations: a range request overlapping k shards counts
    /// k here and 1 in `ops` — mirroring `SimCluster`'s logical-vs-physical
    /// (replica/partition visit) accounting.
    pub physical_ops: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub rounds: AtomicU64,
    pub entries_returned: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    /// Completed [`LiveCluster::rebalance`] calls (each re-splits every
    /// namespace).
    pub rebalances: AtomicU64,
}

/// A point-in-time copy of [`LiveStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStatsSnapshot {
    pub ops: u64,
    pub physical_ops: u64,
    pub reads: u64,
    pub writes: u64,
    pub rounds: u64,
    pub entries_returned: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub rebalances: u64,
}

/// Keys sampled per namespace to learn split points (a stride keeps the
/// sample representative when the namespace is large).
const SPLIT_SAMPLE_CAP: usize = 8_192;

/// A namespace's connection to the attached [`WalSink`]: the sink plus the
/// namespace id to stamp on records. Cloned into each `LiveNamespace` at
/// attach time so the write path never consults cluster-level state.
#[derive(Clone)]
struct WalHook {
    ns: NsId,
    sink: Arc<dyn WalSink>,
}

impl WalHook {
    fn log(&self, key: &[u8], value: Option<&[u8]>) {
        match value {
            Some(v) => self.sink.append_put(self.ns, key, v),
            None => self.sink.append_delete(self.ns, key),
        }
    }
}

/// One immutable routing generation of a namespace: explicit split points
/// and the shard maps they route to. Shard `i` covers
/// `[splits[i-1], splits[i])` with sentinel bounds at the ends — the same
/// convention as the simulator's [`crate::partition::NsPlacement`], so a
/// key routes by binary search instead of leading-byte arithmetic.
///
/// A generation's *layout* never changes; [`LiveNamespace::rebalance`]
/// builds a fresh generation off to the side and atomically publishes it.
/// Shard *contents* do change (writers mutate the current generation), so
/// a retired generation still holds every key it held at swap time —
/// readers that loaded it mid-swap never observe a missing key.
struct ShardSet {
    /// Ascending split keys; `shards.len() == splits.len() + 1`.
    splits: Vec<Vec<u8>>,
    shards: Vec<RwLock<BTreeMap<Vec<u8>, Vec<u8>>>>,
    /// Storage operations served per shard by this generation — the skew
    /// signal [`NsBalance`] reports; starts at zero when a rebalance
    /// installs the generation.
    ops: Vec<AtomicU64>,
}

impl ShardSet {
    fn from_maps(splits: Vec<Vec<u8>>, maps: Vec<BTreeMap<Vec<u8>, Vec<u8>>>) -> Self {
        debug_assert_eq!(maps.len(), splits.len() + 1);
        let ops = (0..maps.len()).map(|_| AtomicU64::new(0)).collect();
        ShardSet {
            splits,
            shards: maps
                .into_iter()
                .map(|m| RwLock::new(rank::KV_SHARD, "kv.shard", m))
                .collect(),
            ops,
        }
    }

    /// The pre-rebalance default: contiguous leading-byte stripes,
    /// expressed as explicit split points (`n = 4` → splits at `[64]`,
    /// `[128]`, `[192]`).
    fn striped(shards: usize) -> Self {
        let n = shards.max(1);
        let mut splits: Vec<Vec<u8>> = (1..n)
            .map(|i| vec![((i * 256).div_ceil(n)).min(255) as u8])
            .collect();
        // > 256 stripes would repeat boundary bytes; collapse the
        // permanently empty shards between duplicates
        splits.dedup();
        let maps = (0..splits.len() + 1).map(|_| BTreeMap::new()).collect();
        ShardSet::from_maps(splits, maps)
    }

    /// A new generation with the given split points, holding a copy of
    /// `source`'s entries routed by the *new* splits. Caller must hold the
    /// namespace's table write lock so `source` is frozen.
    fn resharded(splits: Vec<Vec<u8>>, source: &ShardSet) -> Self {
        let mut maps: Vec<BTreeMap<Vec<u8>, Vec<u8>>> =
            (0..splits.len() + 1).map(|_| BTreeMap::new()).collect();
        for shard in &source.shards {
            for (k, v) in shard.read().iter() {
                let idx = splits.partition_point(|s| s.as_slice() <= k.as_slice());
                maps[idx].insert(k.clone(), v.clone());
            }
        }
        ShardSet::from_maps(splits, maps)
    }

    /// The shard owning `key` (split keys belong to the right shard, like
    /// `NsPlacement::partition_of`).
    fn shard_of(&self, key: &[u8]) -> usize {
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    /// Shard indices overlapping `[start, end)`, ascending. An exclusive
    /// `end` that equals a split point does *not* visit the shard to its
    /// right — no key `< end` can live there.
    fn shards_for_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> std::ops::RangeInclusive<usize> {
        let lo = self.shard_of(start);
        let hi = match end {
            Some(e) => self.splits.partition_point(|s| s.as_slice() < e),
            None => self.shards.len() - 1,
        };
        lo..=hi.max(lo)
    }

    fn touch(&self, idx: usize) {
        self.ops[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let idx = self.shard_of(key);
        self.touch(idx);
        self.shards[idx].read().get(key).cloned()
    }

    fn put(&self, key: Vec<u8>, value: Option<Vec<u8>>, wal: Option<&WalHook>) {
        let idx = self.shard_of(&key);
        self.touch(idx);
        let mut shard = self.shards[idx].write();
        // append while holding the shard lock so the log observes per-key
        // effects in memory order (see crate::wal); the sink only buffers
        if let Some(hook) = wal {
            hook.log(&key, value.as_deref());
        }
        match value {
            Some(v) => {
                shard.insert(key, v);
            }
            None => {
                shard.remove(&key);
            }
        }
    }

    fn test_and_set(
        &self,
        key: &[u8],
        expect: Option<&[u8]>,
        value: Option<Vec<u8>>,
        wal: Option<&WalHook>,
    ) -> (bool, Option<Vec<u8>>) {
        let idx = self.shard_of(key);
        self.touch(idx);
        let mut shard = self.shards[idx].write();
        let current = shard.get(key).cloned();
        if current.as_deref() != expect {
            return (false, current);
        }
        // only the *effect* of a successful TAS is logged — replay applies
        // it as a plain put/delete without re-checking the expectation
        if let Some(hook) = wal {
            hook.log(key, value.as_deref());
        }
        match value.clone() {
            Some(v) => {
                shard.insert(key.to_vec(), v);
            }
            None => {
                shard.remove(key);
            }
        }
        (true, value)
    }

    /// Scan `[start, end)`; also reports the number of shards visited (each
    /// visit is one physical operation, like a partition visit in
    /// `SimCluster`).
    fn range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<u64>,
        reverse: bool,
    ) -> (Vec<KvEntry>, u64) {
        let want = limit.unwrap_or(u64::MAX) as usize;
        let lo = Bound::Included(start.to_vec());
        let hi = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        let mut out: Vec<KvEntry> = Vec::new();
        let mut visited = 0u64;
        let shards = self.shards_for_range(start, end);
        let mut visit = |out: &mut Vec<KvEntry>, idx: usize| {
            visited += 1;
            self.touch(idx);
            let shard = self.shards[idx].read();
            let iter = shard.range::<Vec<u8>, _>((lo.clone(), hi.clone()));
            if reverse {
                for (k, v) in iter.rev() {
                    if out.len() >= want {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
            } else {
                for (k, v) in iter {
                    if out.len() >= want {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
            }
        };
        if reverse {
            for idx in shards.rev() {
                if out.len() >= want {
                    break;
                }
                visit(&mut out, idx);
            }
        } else {
            for idx in shards {
                if out.len() >= want {
                    break;
                }
                visit(&mut out, idx);
            }
        }
        (out, visited)
    }

    /// Count `[start, end)`; also reports shards visited.
    fn count_range(&self, start: &[u8], end: Option<&[u8]>) -> (u64, u64) {
        let lo = Bound::Included(start.to_vec());
        let hi = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        let mut visited = 0u64;
        let total = self
            .shards_for_range(start, end)
            .map(|idx| {
                visited += 1;
                self.touch(idx);
                self.shards[idx]
                    .read()
                    .range::<Vec<u8>, _>((lo.clone(), hi.clone()))
                    .count() as u64
            })
            .sum();
        (total, visited)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn entries_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.read().len() as u64).collect()
    }

    fn ops_per_shard(&self) -> Vec<u64> {
        self.ops.iter().map(|o| o.load(Ordering::Relaxed)).collect()
    }

    /// Every entry in global key order (shards are contiguous ranges, so
    /// index order is key order). Fuzzy under concurrent writers: each
    /// shard is a consistent point-in-time copy, and any write racing the
    /// export is in the WAL segment opened before the export began.
    fn export(&self) -> Vec<KvEntry> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                out.push((k.clone(), v.clone()));
            }
        }
        out
    }

    /// Split points at key-distribution quantiles — the same job the
    /// simulator's Director does via `Namespace::quantile_keys`, over a
    /// strided sample when the namespace is large. Shards are contiguous
    /// ranges, so visiting them in index order yields globally sorted keys.
    fn quantile_splits(&self, parts: usize) -> Vec<Vec<u8>> {
        if parts <= 1 {
            return Vec::new();
        }
        let total = self.len();
        if total == 0 {
            return Vec::new();
        }
        let stride = total.div_ceil(SPLIT_SAMPLE_CAP).max(1);
        let mut sample: Vec<Vec<u8>> = Vec::with_capacity(total.div_ceil(stride));
        let mut i = 0usize;
        for shard in &self.shards {
            for k in shard.read().keys() {
                if i.is_multiple_of(stride) {
                    sample.push(k.clone());
                }
                i += 1;
            }
        }
        let step = sample.len() / parts;
        if step == 0 {
            return Vec::new();
        }
        let mut splits = Vec::with_capacity(parts - 1);
        for (j, k) in sample.into_iter().enumerate() {
            if j > 0 && j.is_multiple_of(step) && splits.len() < parts - 1 {
                splits.push(k);
            }
        }
        splits
    }
}

/// One namespace: an `Arc`-swapped routing table over the current
/// [`ShardSet`] generation.
///
/// Concurrency protocol (what makes a rebalance invisible to sessions):
///
/// * **Readers** clone the `Arc` under a momentary table read lock and
///   route through the snapshot they loaded — long scans never block a
///   swap, and a retired generation keeps its data until the last reader
///   drops it.
/// * **Writers** hold the table read lock *across* their shard mutation,
///   so the swap (which takes the write lock) serializes with in-flight
///   writes: no write can land in a generation after it has been copied.
struct LiveNamespace {
    table: RwLock<Arc<ShardSet>>,
    /// Attached WAL hook, if the cluster is durable. Read on every write
    /// (one uncontended `RwLock` read when no sink is attached).
    wal: RwLock<Option<WalHook>>,
}

impl LiveNamespace {
    fn new(shards: usize) -> Self {
        LiveNamespace {
            table: RwLock::new(
                rank::KV_TABLE,
                "kv.ns.table",
                Arc::new(ShardSet::striped(shards)),
            ),
            wal: RwLock::new(rank::KV_NS_WAL, "kv.ns.wal", None),
        }
    }

    fn set_wal(&self, hook: Option<WalHook>) {
        *self.wal.write() = hook;
    }

    /// The current generation, for lock-free reading.
    fn load(&self) -> Arc<ShardSet> {
        self.table.read().clone()
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.load().get(key)
    }

    fn put(&self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let wal = self.wal.read();
        // hold the table read lock across the mutation (see the struct doc)
        let table = self.table.read();
        table.put(key, value, wal.as_ref());
    }

    fn test_and_set(
        &self,
        key: &[u8],
        expect: Option<&[u8]>,
        value: Option<Vec<u8>>,
    ) -> (bool, Option<Vec<u8>>) {
        let wal = self.wal.read();
        let table = self.table.read();
        table.test_and_set(key, expect, value, wal.as_ref())
    }

    fn range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<u64>,
        reverse: bool,
    ) -> (Vec<KvEntry>, u64) {
        self.load().range(start, end, limit, reverse)
    }

    fn count_range(&self, start: &[u8], end: Option<&[u8]>) -> (u64, u64) {
        self.load().count_range(start, end)
    }

    fn len(&self) -> usize {
        self.load().len()
    }

    fn balance(&self, name: String) -> NsBalance {
        let set = self.load();
        NsBalance {
            name,
            shards: set.shards.len(),
            entries: set.entries_per_shard(),
            ops: set.ops_per_shard(),
        }
    }

    /// Re-split this namespace at learned quantiles of its current keys
    /// and atomically publish the re-sharded generation.
    fn rebalance(&self, parts: usize) {
        // sample split points from the published snapshot — no lock held
        let splits = self.load().quantile_splits(parts.max(1));
        // Build the new generation off to the side, then publish. Taking
        // the table write lock first (a) waits out every in-flight writer
        // and (b) blocks new ones, so the copy sees a frozen store and no
        // write can land in the retired generation after it was copied.
        // Readers are unaffected: they route through whichever generation
        // they loaded.
        let mut table = self.table.write();
        *table = Arc::new(ShardSet::resharded(splits, &table));
    }
}

/// The real-time backend.
pub struct LiveCluster {
    config: LiveConfig,
    namespaces: RwLock<Vec<Arc<LiveNamespace>>>,
    names: RwLock<BTreeMap<String, NsId>>,
    epoch: Instant,
    /// The fan-out pool. Shared by every session of this cluster; may also
    /// be shared across clusters via [`LiveCluster::with_pool`], so one
    /// process never runs more storage workers than it asked for.
    pool: Arc<RoundPool>,
    /// Runtime-adjustable copy of `config.request_delay_us`.
    request_delay_us: AtomicU64,
    /// Observed operator latencies awaiting the online-training consumer.
    sink: LiveSampleSink,
    /// Attached write-ahead sink, if any (see [`LiveCluster::attach_wal`]).
    wal: RwLock<Option<Arc<dyn WalSink>>>,
    /// Latched when the attached sink fails a commit barrier: durability
    /// has silently become memory-only and acknowledgements must say so.
    wal_degraded: AtomicBool,
    pub stats: Arc<LiveStats>,
}

impl Default for LiveCluster {
    fn default() -> Self {
        Self::new(LiveConfig::default())
    }
}

impl LiveCluster {
    pub fn new(config: LiveConfig) -> Self {
        let pool = Arc::new(RoundPool::new(config.pool_threads));
        Self::with_pool(config, pool)
    }

    /// Build a cluster executing its rounds on an externally owned pool —
    /// the hook for co-hosting several clusters (or other round sources)
    /// behind one bounded set of storage workers.
    pub fn with_pool(config: LiveConfig, pool: Arc<RoundPool>) -> Self {
        LiveCluster {
            request_delay_us: AtomicU64::new(config.request_delay_us),
            config,
            namespaces: RwLock::new(rank::KV_NAMESPACES, "kv.namespaces", Vec::new()),
            names: RwLock::new(rank::KV_NAMES, "kv.names", BTreeMap::new()),
            epoch: Instant::now(),
            pool,
            sink: LiveSampleSink::default(),
            wal: RwLock::new(rank::KV_CLUSTER_WAL, "kv.cluster.wal", None),
            wal_degraded: AtomicBool::new(false),
            stats: Arc::new(LiveStats::default()),
        }
    }

    /// Attach a write-ahead sink: every namespace creation, put, delete,
    /// and successful test-and-set from now on is appended to `sink`, and
    /// each write round blocks on `sink.commit()` before acknowledging.
    ///
    /// Every namespace that already exists is announced to the sink
    /// (`append_ns`, in id order) so a log replayed after the same
    /// bootstrap sequence reproduces the same id assignment. Serialized
    /// against concurrent namespace creation by the names write lock.
    pub fn attach_wal(&self, sink: Arc<dyn WalSink>) {
        let names = self.names.write();
        let mut by_id: Vec<(&String, NsId)> = names.iter().map(|(n, id)| (n, *id)).collect();
        by_id.sort_by_key(|(_, id)| id.0);
        for (name, id) in by_id {
            sink.append_ns(id, name);
            self.ns_data(id).set_wal(Some(WalHook {
                ns: id,
                sink: sink.clone(),
            }));
        }
        *self.wal.write() = Some(sink);
        // a fresh sink starts with its durability guarantee intact
        self.wal_degraded.store(false, Ordering::Release);
    }

    /// Detach the write-ahead sink (crash simulation and shutdown): later
    /// writes are memory-only again.
    pub fn detach_wal(&self) {
        let names = self.names.write();
        for id in names.values() {
            self.ns_data(*id).set_wal(None);
        }
        *self.wal.write() = None;
        self.wal_degraded.store(false, Ordering::Release);
    }

    /// True once the attached write-ahead sink has failed a commit
    /// barrier: writes from that point on apply in memory only. Latched
    /// until a (fresh) sink is attached. See [`KvStore::wal_degraded`].
    pub fn wal_degraded(&self) -> bool {
        self.wal_degraded.load(Ordering::Acquire)
    }

    /// Change the injected per-request service time of a *running* cluster.
    /// Tests use this to make a fast store drift slow (or recover) under a
    /// live server, exercising admission re-validation without a restart.
    pub fn set_request_delay_us(&self, us: u64) {
        self.request_delay_us.store(us, Ordering::Relaxed);
    }

    /// The current injected per-request service time, µs.
    pub fn request_delay_us(&self) -> u64 {
        self.request_delay_us.load(Ordering::Relaxed)
    }

    /// The live sample sink (observability; consumers normally drain via
    /// [`KvStore::drain_samples`]).
    pub fn sample_sink(&self) -> &LiveSampleSink {
        &self.sink
    }

    /// The round fan-out pool (for sharing via [`LiveCluster::with_pool`]
    /// and for observability).
    pub fn pool(&self) -> &Arc<RoundPool> {
        &self.pool
    }

    fn ns_data(&self, ns: NsId) -> Arc<LiveNamespace> {
        self.namespaces.read()[ns.0 as usize].clone()
    }

    /// Total storage operations served so far (including bulk loads).
    pub fn op_count(&self) -> u64 {
        self.stats.ops.load(Ordering::Relaxed)
    }

    /// Entries currently in a namespace.
    pub fn ns_len(&self, ns: NsId) -> usize {
        self.ns_data(ns).len()
    }

    /// Microseconds since this cluster was created (the time base sessions
    /// advance on).
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub fn stats_snapshot(&self) -> LiveStatsSnapshot {
        LiveStatsSnapshot {
            ops: self.stats.ops.load(Ordering::Relaxed),
            physical_ops: self.stats.physical_ops.load(Ordering::Relaxed),
            reads: self.stats.reads.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            rounds: self.stats.rounds.load(Ordering::Relaxed),
            entries_returned: self.stats.entries_returned.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
            rebalances: self.stats.rebalances.load(Ordering::Relaxed),
        }
    }

    /// Re-learn every namespace's split points from the keys it currently
    /// holds and atomically publish the re-sharded namespaces — the
    /// Director's job (quantile split points, exactly like
    /// [`SimCluster::rebalance`](crate::SimCluster::rebalance)), performed
    /// online: concurrent sessions keep reading and writing throughout.
    pub fn rebalance(&self) {
        let namespaces: Vec<Arc<LiveNamespace>> = self.namespaces.read().clone();
        for ns in &namespaces {
            ns.rebalance(self.config.shards_per_namespace);
        }
        self.stats.rebalances.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-namespace shard balance (entry and op distribution over the
    /// current layout) — the skew signal that tells an operator (or a
    /// future auto-trigger) a rebalance is due.
    pub fn balance(&self) -> Vec<NsBalance> {
        let names: Vec<(String, NsId)> = self
            .names
            .read()
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        names
            .into_iter()
            .map(|(name, id)| self.ns_data(id).balance(name))
            .collect()
    }

    /// Name and contents of every namespace, ordered by namespace id —
    /// the snapshot export. Fuzzy under concurrent writers (each shard is
    /// copied at a consistent instant); safe to pair with a WAL segment
    /// rotated *before* the export, because replaying that segment's
    /// puts/deletes over the copy is idempotent.
    pub fn export_namespaces(&self) -> Vec<(String, Vec<KvEntry>)> {
        let mut by_id: Vec<(String, NsId)> = self
            .names
            .read()
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        by_id.sort_by_key(|(_, id)| id.0);
        by_id
            .into_iter()
            .map(|(name, id)| (name, self.ns_data(id).load().export()))
            .collect()
    }

    /// Remove `key` outside any timed session — the replay-side mirror of
    /// [`KvStore::bulk_put`], used by recovery to apply logged deletes.
    pub fn bulk_delete(&self, ns: NsId, key: &[u8]) {
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        self.stats.physical_ops.fetch_add(1, Ordering::Relaxed);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.ns_data(ns).put(key.to_vec(), None);
    }

    /// Drop every entry in `ns`, restoring the initial striped layout.
    /// Recovery calls this before loading a snapshot so rows that were
    /// deleted pre-snapshot (and so appear in neither snapshot nor WAL)
    /// cannot be resurrected by an embedder's boot-time seed data.
    pub fn reset_namespace(&self, ns: NsId) {
        let data = self.ns_data(ns);
        let mut table = data.table.write();
        *table = Arc::new(ShardSet::striped(self.config.shards_per_namespace));
    }
}

/// Serve one request against its namespace. Free-standing (not `&self`) so
/// rounds can scatter it across pool threads; returns the response, the
/// physical (per-shard) operation count, and the payload bytes of any
/// entries shipped back (so the round join can update session stats
/// without re-walking the entries).
fn execute_request(
    data: &LiveNamespace,
    stats: &LiveStats,
    req: &KvRequest,
    delay_us: u64,
) -> (KvResponse, u64, u64) {
    if delay_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(delay_us));
    }
    stats.ops.fetch_add(1, Ordering::Relaxed);
    let (response, physical, entry_bytes) = match req {
        KvRequest::Get { key, .. } => {
            let value = data.get(key);
            stats.reads.fetch_add(1, Ordering::Relaxed);
            stats.bytes_read.fetch_add(
                value.as_ref().map_or(0, |v| v.len() as u64),
                Ordering::Relaxed,
            );
            (KvResponse::Value(value), 1, 0)
        }
        KvRequest::Put { key, value, .. } => {
            stats.writes.fetch_add(1, Ordering::Relaxed);
            stats
                .bytes_written
                .fetch_add(value.len() as u64, Ordering::Relaxed);
            data.put(key.clone(), Some(value.clone()));
            (KvResponse::Done, 1, 0)
        }
        KvRequest::Delete { key, .. } => {
            stats.writes.fetch_add(1, Ordering::Relaxed);
            data.put(key.clone(), None);
            (KvResponse::Done, 1, 0)
        }
        KvRequest::TestAndSet {
            key, expect, value, ..
        } => {
            stats.writes.fetch_add(1, Ordering::Relaxed);
            let (success, current) = data.test_and_set(key, expect.as_deref(), value.clone());
            (KvResponse::TasResult { success, current }, 1, 0)
        }
        KvRequest::GetRange {
            start,
            end,
            limit,
            reverse,
            ..
        } => {
            let (entries, visited) = data.range(start, end.as_deref(), *limit, *reverse);
            let bytes: u64 = entries
                .iter()
                .map(|(k, v)| (k.len() + v.len()) as u64)
                .sum();
            stats.reads.fetch_add(1, Ordering::Relaxed);
            stats.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            stats
                .entries_returned
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            (KvResponse::Entries(entries), visited.max(1), bytes)
        }
        KvRequest::CountRange { start, end, .. } => {
            stats.reads.fetch_add(1, Ordering::Relaxed);
            let (total, visited) = data.count_range(start, end.as_deref());
            (KvResponse::Count(total), visited.max(1), 0)
        }
    };
    stats.physical_ops.fetch_add(physical, Ordering::Relaxed);
    (response, physical, entry_bytes)
}

impl KvStore for LiveCluster {
    fn namespace(&self, name: &str) -> NsId {
        if let Some(id) = self.names.read().get(name) {
            return *id;
        }
        let mut names = self.names.write();
        if let Some(id) = names.get(name) {
            return *id;
        }
        let mut data = self.namespaces.write();
        let id = NsId(data.len() as u32);
        let ns = Arc::new(LiveNamespace::new(self.config.shards_per_namespace));
        if let Some(sink) = self.wal.read().as_ref() {
            sink.append_ns(id, name);
            ns.set_wal(Some(WalHook {
                ns: id,
                sink: sink.clone(),
            }));
        }
        data.push(ns);
        names.insert(name.to_string(), id);
        id
    }

    /// Issue one parallel round. All requests fan out over the shared
    /// worker pool and the round completes at the *slowest* request — the
    /// semantics the paper's latency model and `SimCluster` assume — with
    /// responses joined back in request order.
    fn execute_round(&self, session: &mut Session, round: RequestRound) -> Vec<KvResponse> {
        if round.is_empty() {
            return Vec::new();
        }
        let logical = round.len() as u64;
        let has_write = round.iter().any(KvRequest::is_write);
        let started = self.now_micros();
        let delay_us = self.request_delay_us.load(Ordering::Relaxed);
        let results: Vec<(KvResponse, u64, u64)> = if round.len() >= 2
            && self.pool.worker_count() > 0
        {
            // resolve namespaces on the calling thread (cheap; keeps tasks
            // 'static), then scatter
            let tasks: Vec<_> = round
                .into_iter()
                .map(|req| {
                    let data = self.ns_data(req.ns());
                    let stats = self.stats.clone();
                    move || execute_request(&data, &stats, &req, delay_us)
                })
                .collect();
            self.pool.scatter(tasks)
        } else {
            round
                .into_iter()
                .map(|req| execute_request(&self.ns_data(req.ns()), &self.stats, &req, delay_us))
                .collect()
        };
        let mut physical = 0u64;
        let mut responses = Vec::with_capacity(results.len());
        for (response, phys, entry_bytes) in results {
            physical += phys;
            if let KvResponse::Entries(e) = &response {
                session.stats.entries += e.len() as u64;
                session.stats.bytes += entry_bytes;
            }
            responses.push(response);
        }
        // durability barrier: a round containing writes is only
        // acknowledged once its appended records are on stable storage.
        // Inside the timed window on purpose — commit latency is real
        // write latency and must show up in the sampled round time.
        if has_write {
            let sink = self.wal.read().clone();
            if let Some(sink) = sink {
                if !sink.commit() {
                    // the log died: these writes exist in memory only.
                    // Latch the degradation so the serving layer can fail
                    // (or flag) write acknowledgements instead of silently
                    // serving a store that no longer survives a restart.
                    self.wal_degraded.store(true, Ordering::Release);
                }
            }
        }
        // advance to wall-clock completion (monotonic per session even if
        // the session was created before this cluster's epoch)
        let completed = self.now_micros();
        // tagged rounds feed the online-training sink: one sample per
        // round, at the round's wall-clock latency — fan-out included,
        // which is exactly the operator random variable Θ the §6.1 models
        // are histograms of
        if let Some(tag) = session.op_tag {
            self.sink.record(OpSample {
                tag,
                micros: completed.saturating_sub(started),
            });
        }
        session.now = session.now.max(completed);
        session.stats.rounds += 1;
        session.stats.logical_requests += logical;
        session.stats.physical_requests += physical;
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        responses
    }

    /// Single-key fast path: equivalent to a one-request `GetRange` round
    /// (same counters, same sampled latency, same session accounting), but
    /// appending the value into a caller-owned buffer instead of returning
    /// freshly allocated entries — in steady state this performs no heap
    /// allocation at all.
    fn point_get(
        &self,
        session: &mut Session,
        ns: NsId,
        key: &[u8],
        out: &mut Vec<u8>,
    ) -> Option<bool> {
        let delay_us = self.request_delay_us.load(Ordering::Relaxed);
        if delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
        }
        let started = self.now_micros();
        let data = self.ns_data(ns);
        let table = data.load();
        let idx = table.shard_of(key);
        table.touch(idx);
        let mut entry_bytes = 0u64;
        let found = {
            let shard = table.shards[idx].read();
            match shard.get(key) {
                Some(v) => {
                    entry_bytes = (key.len() + v.len()) as u64;
                    out.extend_from_slice(v);
                    true
                }
                None => false,
            }
        };
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats.physical_ops.fetch_add(1, Ordering::Relaxed);
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_read
            .fetch_add(entry_bytes, Ordering::Relaxed);
        self.stats
            .entries_returned
            .fetch_add(found as u64, Ordering::Relaxed);
        let completed = self.now_micros();
        if let Some(tag) = session.op_tag {
            self.sink.record(OpSample {
                tag,
                micros: completed.saturating_sub(started),
            });
        }
        session.now = session.now.max(completed);
        session.stats.rounds += 1;
        session.stats.logical_requests += 1;
        session.stats.physical_requests += 1;
        session.stats.entries += found as u64;
        session.stats.bytes += entry_bytes;
        Some(found)
    }

    fn bulk_put(&self, ns: NsId, key: Vec<u8>, value: Vec<u8>) {
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        self.stats.physical_ops.fetch_add(1, Ordering::Relaxed);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        self.ns_data(ns).put(key, Some(value));
    }

    fn rebalance(&self) {
        LiveCluster::rebalance(self);
    }

    fn balance(&self) -> Vec<NsBalance> {
        LiveCluster::balance(self)
    }

    fn sync_session(&self, session: &mut Session) {
        session.now = session.now.max(self.now_micros());
    }

    fn drain_samples(&self) -> Vec<OpSample> {
        self.sink.drain()
    }

    fn wal_degraded(&self) -> bool {
        LiveCluster::wal_degraded(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LiveCluster {
        LiveCluster::new(LiveConfig {
            shards_per_namespace: 4,
            ..Default::default()
        })
    }

    #[test]
    fn point_ops_roundtrip() {
        let c = small();
        let ns = c.namespace("t");
        let mut s = Session::new();
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }],
        );
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), Some(b"v".as_slice()));
        c.execute_round(
            &mut s,
            vec![KvRequest::Delete {
                ns,
                key: b"k".to_vec(),
            }],
        );
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), None);
        assert_eq!(c.op_count(), 4);
        assert_eq!(s.stats.rounds, 4);
    }

    #[test]
    fn ranges_cross_shards_in_order() {
        let c = small();
        let ns = c.namespace("r");
        // keys spread over the whole leading-byte space → all 4 shards
        for i in 0..=255u8 {
            c.bulk_put(ns, vec![i, 1], vec![i]);
        }
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![10],
                end: Some(vec![250]),
                limit: None,
                reverse: false,
            }],
        );
        let entries = r[0].expect_entries();
        assert_eq!(entries.len(), 240);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![0],
                end: None,
                limit: Some(7),
                reverse: true,
            }],
        );
        let entries = r[0].expect_entries();
        assert_eq!(entries.len(), 7);
        assert_eq!(entries[0].0, vec![255, 1]);
        assert!(entries.windows(2).all(|w| w[0].0 > w[1].0));
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::CountRange {
                ns,
                start: vec![10],
                end: Some(vec![20]),
            }],
        );
        assert_eq!(r[0].expect_count(), 10);
    }

    #[test]
    fn tas_is_atomic_under_contention() {
        let c = Arc::new(small());
        let ns = c.namespace("tas");
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || {
                    let mut s = Session::new();
                    let r = c.execute_round(
                        &mut s,
                        vec![KvRequest::TestAndSet {
                            ns,
                            key: b"winner".to_vec(),
                            expect: None,
                            value: Some(vec![i]),
                        }],
                    );
                    matches!(r[0], KvResponse::TasResult { success: true, .. })
                })
            })
            .collect();
        let wins = threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(wins, 1, "exactly one TAS may claim an absent key");
    }

    #[test]
    fn multi_shard_scans_count_per_shard_physical_ops() {
        let c = small();
        let ns = c.namespace("phys");
        for i in 0..=255u8 {
            c.bulk_put(ns, vec![i], vec![i]);
        }
        let before = c.stats_snapshot();
        let mut s = Session::new();
        // full-keyspace scan touches all 4 shards: 1 logical, 4 physical
        c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![],
                end: None,
                limit: None,
                reverse: false,
            }],
        );
        assert_eq!(s.stats.logical_requests, 1);
        assert_eq!(s.stats.physical_requests, 4, "one op per shard visited");
        let after = c.stats_snapshot();
        assert_eq!(after.ops - before.ops, 1);
        assert_eq!(after.physical_ops - before.physical_ops, 4);

        // a limited scan that fills from the first shard visits just one
        let mut s2 = Session::new();
        c.execute_round(
            &mut s2,
            vec![KvRequest::CountRange {
                ns,
                start: vec![10],
                end: Some(vec![20]),
            }],
        );
        assert_eq!(s2.stats.physical_requests, 1, "count within one shard");
    }

    #[test]
    fn delayed_round_completes_at_slowest_not_sum() {
        let c = LiveCluster::new(LiveConfig {
            shards_per_namespace: 4,
            pool_threads: 8,
            request_delay_us: 10_000, // 10 ms per request
        });
        let ns = c.namespace("slow");
        let mut s = Session::new();
        let t0 = Instant::now();
        let round: RequestRound = (0..8u8)
            .map(|i| KvRequest::Get { ns, key: vec![i] })
            .collect();
        c.execute_round(&mut s, round);
        let elapsed = t0.elapsed();
        // 8 × 10 ms sequentially is 80 ms; fanned out it is ~10 ms
        assert!(
            elapsed < std::time::Duration::from_millis(40),
            "round should complete at ~max request latency, took {elapsed:?}"
        );
    }

    #[test]
    fn zero_thread_pool_still_conforms_sequentially() {
        let c = LiveCluster::new(LiveConfig {
            shards_per_namespace: 4,
            pool_threads: 0,
            request_delay_us: 0,
        });
        let ns = c.namespace("seq");
        let mut s = Session::new();
        let responses = c.execute_round(
            &mut s,
            vec![
                KvRequest::Put {
                    ns,
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                KvRequest::Get {
                    ns,
                    key: b"a".to_vec(),
                },
            ],
        );
        assert_eq!(responses.len(), 2);
        assert_eq!(c.pool().worker_count(), 0);
    }

    #[test]
    fn exclusive_end_on_shard_boundary_stays_left() {
        // 4 stripes → splits at [64], [128], [192]; an exclusive end
        // exactly on a boundary must not visit the shard to its right
        let c = small();
        let ns = c.namespace("edge");
        for i in 0..=255u8 {
            c.bulk_put(ns, vec![i], vec![i]);
        }
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::CountRange {
                ns,
                start: vec![0],
                end: Some(vec![64]),
            }],
        );
        assert_eq!(r[0].expect_count(), 64);
        assert_eq!(s.stats.physical_requests, 1, "[0, [64]) lives in shard 0");
        let mut s2 = Session::new();
        let r = c.execute_round(
            &mut s2,
            vec![KvRequest::GetRange {
                ns,
                start: vec![64],
                end: Some(vec![128]),
                limit: None,
                reverse: false,
            }],
        );
        assert_eq!(r[0].expect_entries().len(), 64);
        assert_eq!(s2.stats.physical_requests, 1, "one full stripe, one shard");
        // an end past the boundary still visits the next shard
        let mut s3 = Session::new();
        c.execute_round(
            &mut s3,
            vec![KvRequest::CountRange {
                ns,
                start: vec![0],
                end: Some(vec![64, 0]),
            }],
        );
        assert_eq!(s3.stats.physical_requests, 2);
    }

    #[test]
    fn rebalance_learns_quantile_splits_and_keeps_results() {
        let c = small();
        let ns = c.namespace("skew");
        // 90% of keys under leading byte 0xAA — all piled on one stripe
        let mut expected: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..400u16 {
            let mut key = if i % 10 != 0 {
                vec![0xAA, 0xAA]
            } else {
                vec![(i % 251) as u8]
            };
            key.extend_from_slice(&i.to_be_bytes());
            expected.push((key.clone(), i.to_be_bytes().to_vec()));
            c.bulk_put(ns, key, i.to_be_bytes().to_vec());
        }
        expected.sort();
        let before = c.balance();
        let skewed = &before[0];
        assert!(
            skewed.max_entry_share() >= 0.9,
            "stripes pile the skewed prefix onto one shard: {:?}",
            skewed.entries
        );

        c.rebalance();

        let after = c.balance();
        let even = &after[0];
        assert_eq!(even.name, "skew");
        assert!(
            even.max_entry_share() <= 2.0 / even.shards as f64,
            "quantile splits even the shards out: {:?}",
            even.entries
        );
        assert_eq!(c.stats_snapshot().rebalances, 1);
        assert_eq!(even.ops.iter().sum::<u64>(), 0, "new layout, fresh ops");

        // results are bitwise identical to the pre-rebalance contents
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![],
                end: None,
                limit: None,
                reverse: false,
            }],
        );
        assert_eq!(r[0].expect_entries(), expected.as_slice());
    }

    #[test]
    fn rebalance_of_empty_namespace_is_harmless() {
        let c = small();
        let ns = c.namespace("empty");
        c.rebalance();
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), None);
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }],
        );
        assert_eq!(c.ns_len(ns), 1);
    }

    #[test]
    fn point_get_matches_single_get_range_round_accounting() {
        let c = small();
        let ns = c.namespace("pg");
        c.bulk_put(ns, b"hit".to_vec(), b"value".to_vec());
        let before = c.stats_snapshot();
        let mut s = Session::new();
        let mut out = Vec::new();
        assert_eq!(c.point_get(&mut s, ns, b"hit", &mut out), Some(true));
        assert_eq!(out, b"value");
        assert_eq!(s.stats.rounds, 1);
        assert_eq!(s.stats.logical_requests, 1);
        assert_eq!(s.stats.physical_requests, 1);
        assert_eq!(s.stats.entries, 1);
        assert_eq!(s.stats.bytes, (b"hit".len() + b"value".len()) as u64);
        let after = c.stats_snapshot();
        assert_eq!(after.ops - before.ops, 1);
        assert_eq!(after.reads - before.reads, 1);
        assert_eq!(after.physical_ops - before.physical_ops, 1);
        assert_eq!(after.rounds - before.rounds, 1);
        assert_eq!(after.entries_returned - before.entries_returned, 1);
        assert_eq!(
            after.bytes_read - before.bytes_read,
            (b"hit".len() + b"value".len()) as u64
        );
        // a miss still counts the round but ships no entry
        out.clear();
        assert_eq!(c.point_get(&mut s, ns, b"absent", &mut out), Some(false));
        assert!(out.is_empty());
        assert_eq!(s.stats.entries, 1);
        assert_eq!(s.stats.rounds, 2);
    }

    #[test]
    fn sessions_measure_wall_clock() {
        let c = small();
        let ns = c.namespace("t");
        let mut s = Session::new();
        let t0 = s.begin();
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"a".to_vec(),
                value: b"b".to_vec(),
            }],
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"a".to_vec(),
            }],
        );
        assert!(s.elapsed_since(t0) >= 2_000, "{}", s.elapsed_since(t0));
    }
}
