//! `LiveCluster` — a real-time, thread-safe key/value backend.
//!
//! Where [`SimCluster`](crate::SimCluster) models a distributed store in
//! virtual time, `LiveCluster` *is* a store: sharded ordered maps serving
//! concurrent sessions on the wall clock. It implements the same
//! [`KvStore`] trait, so the whole engine — optimizer bounds, executors,
//! cursors, the write path — runs against it unchanged; this is what
//! `piql-server` fronts with its TCP interface.
//!
//! Design:
//!
//! * Each namespace is split into `shards_per_namespace` **contiguous
//!   key-range shards** (striped by leading key byte), each an ordered map
//!   under its own `RwLock`. Point operations touch exactly one shard;
//!   range scans walk the overlapping shards in key order, so lock
//!   contention is striped while scan semantics stay identical to a single
//!   ordered map.
//! * Sessions carry wall-clock time: `Session::now` is set to the cluster's
//!   monotonic epoch offset when a round completes, so
//!   `Session::elapsed_since` measures real latency with the same API the
//!   simulation uses.
//! * Single-copy strong consistency: `test_and_set` is atomic under the
//!   owning shard's write lock, reads always observe the latest write.
//! * Every storage operation is counted. [`LiveCluster::op_count`] is the
//!   hook the admission-control tests use to prove rejected statements
//!   issue **zero** storage requests.

use crate::cluster::KvStore;
use crate::op::{KvRequest, KvResponse, NsId, RequestRound};
use crate::session::Session;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// `LiveCluster` sizing.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Lock-striping factor: contiguous key-range shards per namespace.
    pub shards_per_namespace: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            shards_per_namespace: 16,
        }
    }
}

/// Monotonic operation counters (all `Relaxed`; read for reporting only).
#[derive(Debug, Default)]
pub struct LiveStats {
    pub ops: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub rounds: AtomicU64,
    pub entries_returned: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
}

/// A point-in-time copy of [`LiveStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStatsSnapshot {
    pub ops: u64,
    pub reads: u64,
    pub writes: u64,
    pub rounds: u64,
    pub entries_returned: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

struct LiveNamespace {
    shards: Vec<RwLock<BTreeMap<Vec<u8>, Vec<u8>>>>,
}

impl LiveNamespace {
    fn new(shards: usize) -> Self {
        LiveNamespace {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// The shard owning `key`: stripe `i` covers leading bytes
    /// `[i * 256/n, (i+1) * 256/n)`; the empty key lands in stripe 0.
    fn shard_of(&self, key: &[u8]) -> usize {
        match key.first() {
            Some(&b) => (b as usize * self.shards.len()) / 256,
            None => 0,
        }
    }

    /// Shard indices overlapping `[start, end)`, ascending.
    fn shards_for_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> std::ops::RangeInclusive<usize> {
        let lo = self.shard_of(start);
        let hi = match end {
            // exclusive bound: the end key's shard still may hold smaller keys
            Some(e) => self.shard_of(e),
            None => self.shards.len() - 1,
        };
        lo..=hi.max(lo)
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shards[self.shard_of(key)].read().get(key).cloned()
    }

    fn put(&self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let mut shard = self.shards[self.shard_of(&key)].write();
        match value {
            Some(v) => {
                shard.insert(key, v);
            }
            None => {
                shard.remove(&key);
            }
        }
    }

    fn test_and_set(
        &self,
        key: &[u8],
        expect: Option<&[u8]>,
        value: Option<Vec<u8>>,
    ) -> (bool, Option<Vec<u8>>) {
        let mut shard = self.shards[self.shard_of(key)].write();
        let current = shard.get(key).cloned();
        if current.as_deref() != expect {
            return (false, current);
        }
        match value.clone() {
            Some(v) => {
                shard.insert(key.to_vec(), v);
            }
            None => {
                shard.remove(key);
            }
        }
        (true, value)
    }

    fn range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: Option<u64>,
        reverse: bool,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let want = limit.unwrap_or(u64::MAX) as usize;
        let lo = Bound::Included(start.to_vec());
        let hi = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let shards = self.shards_for_range(start, end);
        let visit = |out: &mut Vec<(Vec<u8>, Vec<u8>)>, idx: usize| {
            let shard = self.shards[idx].read();
            let iter = shard.range::<Vec<u8>, _>((lo.clone(), hi.clone()));
            if reverse {
                for (k, v) in iter.rev() {
                    if out.len() >= want {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
            } else {
                for (k, v) in iter {
                    if out.len() >= want {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
            }
        };
        if reverse {
            for idx in shards.rev() {
                if out.len() >= want {
                    break;
                }
                visit(&mut out, idx);
            }
        } else {
            for idx in shards {
                if out.len() >= want {
                    break;
                }
                visit(&mut out, idx);
            }
        }
        out
    }

    fn count_range(&self, start: &[u8], end: Option<&[u8]>) -> u64 {
        let lo = Bound::Included(start.to_vec());
        let hi = match end {
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        self.shards_for_range(start, end)
            .map(|idx| {
                self.shards[idx]
                    .read()
                    .range::<Vec<u8>, _>((lo.clone(), hi.clone()))
                    .count() as u64
            })
            .sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// The real-time backend.
pub struct LiveCluster {
    config: LiveConfig,
    namespaces: RwLock<Vec<Arc<LiveNamespace>>>,
    names: RwLock<BTreeMap<String, NsId>>,
    epoch: Instant,
    pub stats: LiveStats,
}

impl Default for LiveCluster {
    fn default() -> Self {
        Self::new(LiveConfig::default())
    }
}

impl LiveCluster {
    pub fn new(config: LiveConfig) -> Self {
        LiveCluster {
            config,
            namespaces: RwLock::new(Vec::new()),
            names: RwLock::new(BTreeMap::new()),
            epoch: Instant::now(),
            stats: LiveStats::default(),
        }
    }

    fn ns_data(&self, ns: NsId) -> Arc<LiveNamespace> {
        self.namespaces.read()[ns.0 as usize].clone()
    }

    /// Total storage operations served so far (including bulk loads).
    pub fn op_count(&self) -> u64 {
        self.stats.ops.load(Ordering::Relaxed)
    }

    /// Entries currently in a namespace.
    pub fn ns_len(&self, ns: NsId) -> usize {
        self.ns_data(ns).len()
    }

    /// Microseconds since this cluster was created (the time base sessions
    /// advance on).
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub fn stats_snapshot(&self) -> LiveStatsSnapshot {
        LiveStatsSnapshot {
            ops: self.stats.ops.load(Ordering::Relaxed),
            reads: self.stats.reads.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            rounds: self.stats.rounds.load(Ordering::Relaxed),
            entries_returned: self.stats.entries_returned.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }

    fn execute_one(&self, req: &KvRequest, session: &mut Session) -> KvResponse {
        let data = self.ns_data(req.ns());
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        match req {
            KvRequest::Get { key, .. } => {
                let value = data.get(key);
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_read.fetch_add(
                    value.as_ref().map_or(0, |v| v.len() as u64),
                    Ordering::Relaxed,
                );
                KvResponse::Value(value)
            }
            KvRequest::Put { key, value, .. } => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_written
                    .fetch_add(value.len() as u64, Ordering::Relaxed);
                data.put(key.clone(), Some(value.clone()));
                KvResponse::Done
            }
            KvRequest::Delete { key, .. } => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                data.put(key.clone(), None);
                KvResponse::Done
            }
            KvRequest::TestAndSet {
                key, expect, value, ..
            } => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                let (success, current) = data.test_and_set(key, expect.as_deref(), value.clone());
                KvResponse::TasResult { success, current }
            }
            KvRequest::GetRange {
                start,
                end,
                limit,
                reverse,
                ..
            } => {
                let entries = data.range(start, end.as_deref(), *limit, *reverse);
                let bytes: u64 = entries
                    .iter()
                    .map(|(k, v)| (k.len() + v.len()) as u64)
                    .sum();
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_read.fetch_add(bytes, Ordering::Relaxed);
                self.stats
                    .entries_returned
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                session.stats.entries += entries.len() as u64;
                session.stats.bytes += bytes;
                KvResponse::Entries(entries)
            }
            KvRequest::CountRange { start, end, .. } => {
                self.stats.reads.fetch_add(1, Ordering::Relaxed);
                KvResponse::Count(data.count_range(start, end.as_deref()))
            }
        }
    }
}

impl KvStore for LiveCluster {
    fn namespace(&self, name: &str) -> NsId {
        if let Some(id) = self.names.read().get(name) {
            return *id;
        }
        let mut names = self.names.write();
        if let Some(id) = names.get(name) {
            return *id;
        }
        let mut data = self.namespaces.write();
        let id = NsId(data.len() as u32);
        data.push(Arc::new(LiveNamespace::new(
            self.config.shards_per_namespace,
        )));
        names.insert(name.to_string(), id);
        id
    }

    fn execute_round(&self, session: &mut Session, round: RequestRound) -> Vec<KvResponse> {
        if round.is_empty() {
            return Vec::new();
        }
        let responses: Vec<KvResponse> = round
            .iter()
            .map(|req| self.execute_one(req, session))
            .collect();
        // advance to wall-clock completion (monotonic per session even if
        // the session was created before this cluster's epoch)
        session.now = session.now.max(self.now_micros());
        session.stats.rounds += 1;
        session.stats.logical_requests += round.len() as u64;
        session.stats.physical_requests += round.len() as u64;
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        responses
    }

    fn bulk_put(&self, ns: NsId, key: Vec<u8>, value: Vec<u8>) {
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        self.ns_data(ns).put(key, Some(value));
    }

    fn sync_session(&self, session: &mut Session) {
        session.now = session.now.max(self.now_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LiveCluster {
        LiveCluster::new(LiveConfig {
            shards_per_namespace: 4,
        })
    }

    #[test]
    fn point_ops_roundtrip() {
        let c = small();
        let ns = c.namespace("t");
        let mut s = Session::new();
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }],
        );
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), Some(b"v".as_slice()));
        c.execute_round(
            &mut s,
            vec![KvRequest::Delete {
                ns,
                key: b"k".to_vec(),
            }],
        );
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), None);
        assert_eq!(c.op_count(), 4);
        assert_eq!(s.stats.rounds, 4);
    }

    #[test]
    fn ranges_cross_shards_in_order() {
        let c = small();
        let ns = c.namespace("r");
        // keys spread over the whole leading-byte space → all 4 shards
        for i in 0..=255u8 {
            c.bulk_put(ns, vec![i, 1], vec![i]);
        }
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![10],
                end: Some(vec![250]),
                limit: None,
                reverse: false,
            }],
        );
        let entries = r[0].expect_entries();
        assert_eq!(entries.len(), 240);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![0],
                end: None,
                limit: Some(7),
                reverse: true,
            }],
        );
        let entries = r[0].expect_entries();
        assert_eq!(entries.len(), 7);
        assert_eq!(entries[0].0, vec![255, 1]);
        assert!(entries.windows(2).all(|w| w[0].0 > w[1].0));
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::CountRange {
                ns,
                start: vec![10],
                end: Some(vec![20]),
            }],
        );
        assert_eq!(r[0].expect_count(), 10);
    }

    #[test]
    fn tas_is_atomic_under_contention() {
        let c = Arc::new(small());
        let ns = c.namespace("tas");
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let c = c.clone();
                std::thread::spawn(move || {
                    let mut s = Session::new();
                    let r = c.execute_round(
                        &mut s,
                        vec![KvRequest::TestAndSet {
                            ns,
                            key: b"winner".to_vec(),
                            expect: None,
                            value: Some(vec![i]),
                        }],
                    );
                    matches!(r[0], KvResponse::TasResult { success: true, .. })
                })
            })
            .collect();
        let wins = threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(wins, 1, "exactly one TAS may claim an absent key");
    }

    #[test]
    fn sessions_measure_wall_clock() {
        let c = small();
        let ns = c.namespace("t");
        let mut s = Session::new();
        let t0 = s.begin();
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"a".to_vec(),
                value: b"b".to_vec(),
            }],
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"a".to_vec(),
            }],
        );
        assert!(s.elapsed_since(t0) >= 2_000, "{}", s.elapsed_since(t0));
    }
}
