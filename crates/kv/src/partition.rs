//! Range partitioning and replica placement.
//!
//! Each namespace's keyspace is split at learned split points (quantiles of
//! the loaded data, the job SCADS's Director performs dynamically); each
//! partition is assigned `replication` nodes. Routing a key or range to
//! nodes is a binary search — requests to different partitions land on
//! different nodes, which is where the cluster's parallelism comes from.

use crate::op::NsId;
use piql_analysis::ordered::RwLock;
use piql_analysis::rank;
use std::collections::BTreeMap;

/// Placement of one namespace.
#[derive(Debug, Clone, Default)]
pub struct NsPlacement {
    /// Ascending split keys; partition `i` covers
    /// `[splits[i-1], splits[i])` with sentinel bounds at the ends.
    pub splits: Vec<Vec<u8>>,
    /// `replicas[i]` = node ids serving partition `i`
    /// (`splits.len() + 1` entries).
    pub replicas: Vec<Vec<usize>>,
}

impl NsPlacement {
    /// Single partition on the given replica set.
    pub fn single(replicas: Vec<usize>) -> Self {
        NsPlacement {
            splits: Vec::new(),
            replicas: vec![replicas],
        }
    }

    pub fn partitions(&self) -> usize {
        self.replicas.len()
    }

    /// Partition index owning `key`.
    pub fn partition_of(&self, key: &[u8]) -> usize {
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    /// Partition indexes intersecting `[start, end)` (`None` = unbounded),
    /// in scan order.
    pub fn partitions_for_range(&self, start: &[u8], end: Option<&[u8]>) -> Vec<usize> {
        let first = self.partition_of(start);
        let last = match end {
            // end is exclusive; a range ending exactly at a split does not
            // touch the next partition
            Some(e) => {
                let mut p = self.splits.partition_point(|s| s.as_slice() < e);
                if p > 0
                    && self
                        .splits
                        .get(p - 1)
                        .map(|s| s.as_slice() == e)
                        .unwrap_or(false)
                {
                    p -= 1;
                }
                p.min(self.partitions() - 1).max(first)
            }
            None => self.partitions() - 1,
        };
        (first..=last).collect()
    }
}

/// Placement for all namespaces.
#[derive(Debug)]
pub struct PartitionMap {
    placements: RwLock<BTreeMap<NsId, NsPlacement>>,
}

impl Default for PartitionMap {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionMap {
    pub fn new() -> Self {
        PartitionMap {
            placements: RwLock::new(rank::SIM_PLACEMENTS, "sim.placements", BTreeMap::new()),
        }
    }

    pub fn set(&self, ns: NsId, placement: NsPlacement) {
        self.placements.write().insert(ns, placement);
    }

    pub fn get(&self, ns: NsId) -> NsPlacement {
        self.placements
            .read()
            .get(&ns)
            .cloned()
            .unwrap_or_else(|| NsPlacement::single(vec![0]))
    }

    /// Round-robin replica assignment of `partitions` partitions over
    /// `nodes` nodes with `replication` copies each.
    pub fn assign_round_robin(
        partitions: usize,
        nodes: usize,
        replication: usize,
        offset: usize,
    ) -> Vec<Vec<usize>> {
        (0..partitions)
            .map(|p| {
                (0..replication.min(nodes))
                    .map(|r| (offset + p + r) % nodes)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement() -> NsPlacement {
        NsPlacement {
            splits: vec![b"g".to_vec(), b"p".to_vec()],
            replicas: vec![vec![0, 1], vec![1, 2], vec![2, 0]],
        }
    }

    #[test]
    fn key_routing() {
        let p = placement();
        assert_eq!(p.partition_of(b"a"), 0);
        assert_eq!(p.partition_of(b"g"), 1, "split key belongs to the right");
        assert_eq!(p.partition_of(b"m"), 1);
        assert_eq!(p.partition_of(b"z"), 2);
    }

    #[test]
    fn range_routing() {
        let p = placement();
        assert_eq!(p.partitions_for_range(b"a", Some(b"c")), vec![0]);
        assert_eq!(p.partitions_for_range(b"a", Some(b"m")), vec![0, 1]);
        assert_eq!(p.partitions_for_range(b"a", None), vec![0, 1, 2]);
        assert_eq!(
            p.partitions_for_range(b"a", Some(b"g")),
            vec![0],
            "exclusive end at split stays left"
        );
        assert_eq!(p.partitions_for_range(b"h", Some(b"z")), vec![1, 2]);
    }

    #[test]
    fn round_robin_assignment() {
        let r = PartitionMap::assign_round_robin(4, 3, 2, 0);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], vec![0, 1]);
        assert_eq!(r[1], vec![1, 2]);
        assert_eq!(r[3], vec![0, 1]);
        // replication capped by node count
        let r = PartitionMap::assign_round_robin(2, 1, 3, 0);
        assert_eq!(r[0], vec![0]);
    }

    #[test]
    fn default_placement_for_unknown_ns() {
        let map = PartitionMap::new();
        assert_eq!(map.get(NsId(9)).partitions(), 1);
    }
}
