//! The key/value-store operation vocabulary (§3).
//!
//! PIQL requires exactly this from its store: get/put/delete, *range*
//! requests (for index scans with data locality), count-range (cardinality
//! enforcement, §7.2), and test-and-set (uniqueness constraints and
//! conditional updates). Requests are grouped into [`RequestRound`]s — all
//! requests of a round are issued in parallel, which is how the execution
//! engine's Parallel strategy gets its speedup (§8.5).

/// Namespace handle (one per table / index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NsId(pub u32);

/// One key/value-store request.
#[derive(Debug, Clone, PartialEq)]
pub enum KvRequest {
    Get {
        ns: NsId,
        key: Vec<u8>,
    },
    Put {
        ns: NsId,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        ns: NsId,
        key: Vec<u8>,
    },
    /// Contiguous scan of `[start, end)` (or down from `end` when
    /// `reverse`), returning at most `limit` entries.
    GetRange {
        ns: NsId,
        start: Vec<u8>,
        /// Exclusive upper bound; `None` = to the end of the namespace.
        end: Option<Vec<u8>>,
        limit: Option<u64>,
        reverse: bool,
    },
    /// Number of entries in `[start, end)`.
    CountRange {
        ns: NsId,
        start: Vec<u8>,
        end: Option<Vec<u8>>,
    },
    /// Atomically set `key` to `value` iff its current value equals
    /// `expect`. `value = None` deletes; `expect = None` requires absence.
    TestAndSet {
        ns: NsId,
        key: Vec<u8>,
        expect: Option<Vec<u8>>,
        value: Option<Vec<u8>>,
    },
}

impl KvRequest {
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            KvRequest::Put { .. } | KvRequest::Delete { .. } | KvRequest::TestAndSet { .. }
        )
    }

    pub fn ns(&self) -> NsId {
        match self {
            KvRequest::Get { ns, .. }
            | KvRequest::Put { ns, .. }
            | KvRequest::Delete { ns, .. }
            | KvRequest::GetRange { ns, .. }
            | KvRequest::CountRange { ns, .. }
            | KvRequest::TestAndSet { ns, .. } => *ns,
        }
    }
}

/// One `(key, value)` entry shipped back by a range scan.
pub type KvEntry = (Vec<u8>, Vec<u8>);

/// One response, positionally matching the request.
#[derive(Debug, Clone, PartialEq)]
pub enum KvResponse {
    /// Get: the value, if present.
    Value(Option<Vec<u8>>),
    /// GetRange: entries in scan order.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// CountRange.
    Count(u64),
    /// TestAndSet: whether the swap applied, and the value now stored.
    TasResult {
        success: bool,
        current: Option<Vec<u8>>,
    },
    /// Put/Delete acknowledgement.
    Done,
}

/// A response of the wrong variant for its positional request — a malformed
/// round (engine bug or misbehaving backend). Engine call sites surface
/// this as a query error instead of panicking mid-connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMismatch {
    /// Variant the caller needed.
    pub expected: &'static str,
    /// Variant actually received.
    pub got: &'static str,
}

impl std::fmt::Display for ResponseMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "malformed round: expected {} response, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for ResponseMismatch {}

impl KvResponse {
    fn variant_name(&self) -> &'static str {
        match self {
            KvResponse::Value(_) => "Value",
            KvResponse::Entries(_) => "Entries",
            KvResponse::Count(_) => "Count",
            KvResponse::TasResult { .. } => "TasResult",
            KvResponse::Done => "Done",
        }
    }

    fn mismatch(&self, expected: &'static str) -> ResponseMismatch {
        ResponseMismatch {
            expected,
            got: self.variant_name(),
        }
    }

    /// Get: the value, if the key was present.
    pub fn value(&self) -> Result<Option<&[u8]>, ResponseMismatch> {
        match self {
            KvResponse::Value(v) => Ok(v.as_deref()),
            other => Err(other.mismatch("Value")),
        }
    }

    /// Consuming form of [`KvResponse::value`].
    pub fn into_value(self) -> Result<Option<Vec<u8>>, ResponseMismatch> {
        match self {
            KvResponse::Value(v) => Ok(v),
            other => Err(other.mismatch("Value")),
        }
    }

    /// GetRange: the entries.
    pub fn entries(&self) -> Result<&[KvEntry], ResponseMismatch> {
        match self {
            KvResponse::Entries(e) => Ok(e),
            other => Err(other.mismatch("Entries")),
        }
    }

    /// Consuming form of [`KvResponse::entries`].
    pub fn into_entries(self) -> Result<Vec<KvEntry>, ResponseMismatch> {
        match self {
            KvResponse::Entries(e) => Ok(e),
            other => Err(other.mismatch("Entries")),
        }
    }

    /// CountRange: the count.
    pub fn count(&self) -> Result<u64, ResponseMismatch> {
        match self {
            KvResponse::Count(c) => Ok(*c),
            other => Err(other.mismatch("Count")),
        }
    }

    /// TestAndSet: (applied?, value now stored).
    pub fn tas(&self) -> Result<(bool, Option<&[u8]>), ResponseMismatch> {
        match self {
            KvResponse::TasResult { success, current } => Ok((*success, current.as_deref())),
            other => Err(other.mismatch("TasResult")),
        }
    }

    /// Panicking convenience for tests and benches; production call sites
    /// use the `Result`-returning accessors above.
    pub fn expect_value(&self) -> Option<&[u8]> {
        self.value().unwrap_or_else(|e| panic!("{e}"))
    }

    /// See [`KvResponse::expect_value`].
    pub fn expect_entries(&self) -> &[(Vec<u8>, Vec<u8>)] {
        self.entries().unwrap_or_else(|e| panic!("{e}"))
    }

    /// See [`KvResponse::expect_value`].
    pub fn expect_count(&self) -> u64 {
        self.count().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A set of requests issued in parallel; the session clock advances to the
/// latest completion in the round.
pub type RequestRound = Vec<KvRequest>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_mismatch_instead_of_panicking() {
        let value = KvResponse::Value(Some(b"v".to_vec()));
        assert_eq!(value.value().unwrap(), Some(b"v".as_slice()));
        assert_eq!(
            value.entries().unwrap_err(),
            ResponseMismatch {
                expected: "Entries",
                got: "Value"
            }
        );
        assert_eq!(
            KvResponse::Done.count().unwrap_err().to_string(),
            "malformed round: expected Count response, got Done"
        );
        let tas = KvResponse::TasResult {
            success: true,
            current: None,
        };
        assert_eq!(tas.tas().unwrap(), (true, None));
        assert!(tas.value().is_err());
        assert_eq!(
            KvResponse::Entries(vec![(vec![1], vec![2])])
                .into_entries()
                .unwrap(),
            vec![(vec![1], vec![2])]
        );
        assert_eq!(
            KvResponse::Value(None).into_value().unwrap(),
            None::<Vec<u8>>
        );
    }

    #[test]
    #[should_panic(expected = "expected Value response")]
    fn expect_helpers_still_panic_for_tests() {
        KvResponse::Done.expect_value();
    }
}
