//! The key/value-store operation vocabulary (§3).
//!
//! PIQL requires exactly this from its store: get/put/delete, *range*
//! requests (for index scans with data locality), count-range (cardinality
//! enforcement, §7.2), and test-and-set (uniqueness constraints and
//! conditional updates). Requests are grouped into [`RequestRound`]s — all
//! requests of a round are issued in parallel, which is how the execution
//! engine's Parallel strategy gets its speedup (§8.5).

/// Namespace handle (one per table / index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NsId(pub u32);

/// One key/value-store request.
#[derive(Debug, Clone, PartialEq)]
pub enum KvRequest {
    Get {
        ns: NsId,
        key: Vec<u8>,
    },
    Put {
        ns: NsId,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        ns: NsId,
        key: Vec<u8>,
    },
    /// Contiguous scan of `[start, end)` (or down from `end` when
    /// `reverse`), returning at most `limit` entries.
    GetRange {
        ns: NsId,
        start: Vec<u8>,
        /// Exclusive upper bound; `None` = to the end of the namespace.
        end: Option<Vec<u8>>,
        limit: Option<u64>,
        reverse: bool,
    },
    /// Number of entries in `[start, end)`.
    CountRange {
        ns: NsId,
        start: Vec<u8>,
        end: Option<Vec<u8>>,
    },
    /// Atomically set `key` to `value` iff its current value equals
    /// `expect`. `value = None` deletes; `expect = None` requires absence.
    TestAndSet {
        ns: NsId,
        key: Vec<u8>,
        expect: Option<Vec<u8>>,
        value: Option<Vec<u8>>,
    },
}

impl KvRequest {
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            KvRequest::Put { .. } | KvRequest::Delete { .. } | KvRequest::TestAndSet { .. }
        )
    }

    pub fn ns(&self) -> NsId {
        match self {
            KvRequest::Get { ns, .. }
            | KvRequest::Put { ns, .. }
            | KvRequest::Delete { ns, .. }
            | KvRequest::GetRange { ns, .. }
            | KvRequest::CountRange { ns, .. }
            | KvRequest::TestAndSet { ns, .. } => *ns,
        }
    }
}

/// One response, positionally matching the request.
#[derive(Debug, Clone, PartialEq)]
pub enum KvResponse {
    /// Get: the value, if present.
    Value(Option<Vec<u8>>),
    /// GetRange: entries in scan order.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// CountRange.
    Count(u64),
    /// TestAndSet: whether the swap applied, and the value now stored.
    TasResult {
        success: bool,
        current: Option<Vec<u8>>,
    },
    /// Put/Delete acknowledgement.
    Done,
}

impl KvResponse {
    pub fn expect_value(&self) -> Option<&[u8]> {
        match self {
            KvResponse::Value(v) => v.as_deref(),
            other => panic!("expected Value response, got {other:?}"),
        }
    }

    pub fn expect_entries(&self) -> &[(Vec<u8>, Vec<u8>)] {
        match self {
            KvResponse::Entries(e) => e,
            other => panic!("expected Entries response, got {other:?}"),
        }
    }

    pub fn expect_count(&self) -> u64 {
        match self {
            KvResponse::Count(c) => *c,
            other => panic!("expected Count response, got {other:?}"),
        }
    }
}

/// A set of requests issued in parallel; the session clock advances to the
/// latest completion in the round.
pub type RequestRound = Vec<KvRequest>;
