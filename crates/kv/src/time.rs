//! Virtual time.
//!
//! The whole cluster simulation runs on a deterministic virtual clock in
//! microseconds. Nothing ever sleeps; latencies are *accounted*, which
//! makes experiments reproducible and lets a laptop sweep cluster sizes the
//! paper needed 150 EC2 instances for.

/// Virtual microseconds since simulation start.
pub type Micros = u64;

pub const MILLIS: Micros = 1_000;
pub const SECONDS: Micros = 1_000_000;

/// Convert to fractional milliseconds for reporting.
pub fn as_millis_f64(us: Micros) -> f64 {
    us as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(as_millis_f64(1500), 1.5);
        assert_eq!(2 * SECONDS, 2_000_000);
        assert_eq!(3 * MILLIS, 3_000);
    }
}
