//! Cluster-wide atomic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters across all sessions of a cluster.
#[derive(Debug, Default)]
pub struct ClusterStats {
    pub rounds: AtomicU64,
    pub logical_requests: AtomicU64,
    pub physical_requests: AtomicU64,
    pub read_bytes: AtomicU64,
    pub write_bytes: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
}

impl ClusterStats {
    pub fn record_round(&self, logical: u64, physical: u64) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.logical_requests.fetch_add(logical, Ordering::Relaxed);
        self.physical_requests
            .fetch_add(physical, Ordering::Relaxed);
    }

    pub fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rounds: self.rounds.load(Ordering::Relaxed),
            logical_requests: self.logical_requests.load(Ordering::Relaxed),
            physical_requests: self.physical_requests.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`ClusterStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub rounds: u64,
    pub logical_requests: u64,
    pub physical_requests: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub reads: u64,
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ClusterStats::default();
        s.record_round(3, 5);
        s.record_read(100);
        s.record_write(50);
        let snap = s.snapshot();
        assert_eq!(snap.rounds, 1);
        assert_eq!(snap.logical_requests, 3);
        assert_eq!(snap.physical_requests, 5);
        assert_eq!(snap.read_bytes, 100);
        assert_eq!(snap.write_bytes, 50);
    }
}
