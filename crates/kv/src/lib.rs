//! # piql-kv
//!
//! A deterministic virtual-time simulation of a distributed, ordered,
//! replicated key/value store — the substrate PIQL runs on (§3 of the
//! paper; SCADS on EC2 in the original evaluation).
//!
//! The simulation holds data once and models *placement and timing*
//! separately: range-partitioned namespaces with replica sets, per-node
//! bounded concurrency with FIFO queueing, heavy-tailed (lognormal) service
//! times, multi-tenant interference intervals, and eventual-consistency
//! visibility lag on non-primary replicas. Everything is seeded and
//! reproducible; no wall-clock time is consumed by simulated latency.

pub mod cluster;
pub mod latency;
pub mod live;
pub mod node;
pub mod op;
pub mod partition;
pub mod pool;
pub mod sample;
pub mod session;
pub mod stats;
pub mod store;
pub mod time;

pub use cluster::{ClusterConfig, KvStore, NsBalance, SimCluster};
pub use latency::{InterferenceConfig, LatencyConfig};
pub use live::{LiveCluster, LiveConfig, LiveStatsSnapshot};
pub use op::{KvEntry, KvRequest, KvResponse, NsId, RequestRound, ResponseMismatch};
pub use pool::{PoolStats, RoundPool};
pub use sample::{LiveOpKind, LiveSampleSink, OpSample, OpTag};
pub use session::{Session, SessionStats};
pub use time::{as_millis_f64, Micros, MILLIS, SECONDS};
