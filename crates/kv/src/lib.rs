//! # piql-kv
//!
//! The distributed, ordered key/value substrate PIQL runs on (§3 of the
//! paper; SCADS on EC2 in the original evaluation) — two backends behind
//! one [`KvStore`] trait, kept interchangeable by a shared conformance
//! suite:
//!
//! * [`SimCluster`] — a deterministic **virtual-time simulation**: the
//!   data is held once while *placement and timing* are modeled
//!   separately — range-partitioned namespaces with replica sets,
//!   per-node bounded concurrency with FIFO queueing, heavy-tailed
//!   (lognormal) service times, multi-tenant interference intervals, and
//!   eventual-consistency visibility lag on non-primary replicas.
//!   Everything is seeded and reproducible; no wall-clock time is
//!   consumed by simulated latency.
//! * [`LiveCluster`] — a **real-time sharded store** serving wall-clock
//!   [`Session`]s: namespaces routed by explicit split points behind
//!   `Arc`-swapped layout generations, data-driven quantile rebalancing,
//!   per-round latency sampling ([`OpSample`]/[`LiveSampleSink`]) for
//!   online model training, and runtime latency injection for drift
//!   tests.
//!
//! Request rounds fan out over a shared [`RoundPool`] — a fixed-width
//! worker pool whose callers participate in their own round's queue (so
//! saturation degrades to sequential execution, never deadlock) and
//! which doubles as a fire-and-forget dispatch executor
//! ([`RoundPool::spawn`]) for `piql-server`'s pipelined request
//! handling.

pub mod cluster;
pub mod latency;
pub mod live;
pub mod node;
pub mod op;
pub mod partition;
pub mod pool;
pub mod sample;
pub mod session;
pub mod stats;
pub mod store;
pub mod time;
pub mod wal;

pub use cluster::{ClusterConfig, KvStore, NsBalance, SimCluster};
pub use latency::{InterferenceConfig, LatencyConfig};
pub use live::{LiveCluster, LiveConfig, LiveStatsSnapshot};
pub use op::{KvEntry, KvRequest, KvResponse, NsId, RequestRound, ResponseMismatch};
pub use pool::{PoolStats, RoundPool};
pub use sample::{LiveOpKind, LiveSampleSink, OpSample, OpTag};
pub use session::{Session, SessionStats};
pub use time::{as_millis_f64, Micros, MILLIS, SECONDS};
pub use wal::WalSink;
