//! A shared worker pool for executing the requests of one round in
//! parallel.
//!
//! The paper's latency model (§4, Fig. 12) assumes all requests of a round
//! fan out together and the round completes at the *slowest* request.
//! [`SimCluster`](crate::SimCluster) models that in virtual time;
//! [`LiveCluster`](crate::LiveCluster) achieves it on the wall clock by
//! scattering a round over this pool.
//!
//! Design constraints, in order:
//!
//! 1. **No oversubscription.** One process hosts many concurrent sessions
//!    (one per TCP connection in `piql-server`); if each round spawned its
//!    own threads, N sessions × K requests would stampede the scheduler.
//!    All sessions of a cluster share one fixed pool.
//! 2. **No deadlock under saturation.** The caller *participates*: it
//!    drains its own round's task queue alongside the workers, so a round
//!    always completes even if every worker is busy with other rounds (or
//!    the pool has zero threads — then execution is simply sequential on
//!    the calling thread).
//! 3. **Positional results.** Responses are joined back in request order,
//!    whatever order tasks finished in.
//! 4. **Panic containment.** A panicking task is caught on whichever
//!    thread ran it and re-raised on the round's calling thread at join,
//!    so workers survive and unrelated sessions are unaffected.
//! 5. **Cross-round work stealing.** Helpers are capped at the pool
//!    width, so a thread can go idle while *another* round still has
//!    unclaimed tasks: a worker that finds the queue empty, or a caller
//!    blocked in join on its round's slow tail, claims one task from any
//!    registered in-flight round instead of sleeping. A stolen task can
//!    outlive the thief's own round, but rounds are built from statically
//!    bounded requests (the paper's premise), so the donated latency is
//!    bounded by one request.

use piql_analysis::ordered::{Condvar, Mutex};
use piql_analysis::rank;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Monotonic pool counters (reporting only).
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Rounds that were fanned out (≥ 2 tasks and at least one worker).
    pub fanned_rounds: AtomicU64,
    /// Tasks executed by pool workers (as opposed to the calling thread).
    pub worker_tasks: AtomicU64,
}

/// An in-flight round that can donate unstarted tasks to idle threads.
trait StealSource: Send + Sync {
    /// Claim and run one unstarted task; `false` if none remained.
    fn steal_one(&self, as_worker: bool) -> bool;
}

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    task_ready: Condvar,
    shutdown: AtomicBool,
    /// Every in-flight round, weakly: the registry must not keep a
    /// finished round's results alive. Dead entries are pruned lazily on
    /// registration and steal attempts.
    rounds: Mutex<Vec<Weak<dyn StealSource>>>,
    /// Tasks claimed by steals (reporting only; see
    /// [`RoundPool::stolen_tasks`]).
    stolen: AtomicU64,
}

impl PoolShared {
    fn register_round(&self, source: &Arc<dyn StealSource>) {
        let mut rounds = self.rounds.lock();
        rounds.retain(|w| w.strong_count() > 0);
        rounds.push(Arc::downgrade(source));
    }

    /// Claim and run one unstarted task from any registered round.
    /// Collects candidates under the registry lock but runs the task
    /// outside it, so a long task never blocks registration.
    fn steal_one(&self, as_worker: bool) -> bool {
        let sources: Vec<Arc<dyn StealSource>> = {
            let mut rounds = self.rounds.lock();
            rounds.retain(|w| w.strong_count() > 0);
            rounds.iter().filter_map(|w| w.upgrade()).collect()
        };
        let stole = sources.iter().any(|s| s.steal_one(as_worker));
        if stole {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        stole
    }
}

/// A fixed-size worker pool scattering rounds of closures.
pub struct RoundPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    pub stats: PoolStats,
}

impl RoundPool {
    /// A pool with `threads` workers. `threads = 0` is valid: every round
    /// runs sequentially on its calling thread.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(rank::POOL_QUEUE, "pool.queue", VecDeque::new()),
            task_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rounds: Mutex::new(rank::POOL_ROUNDS, "pool.rounds", Vec::new()),
            stolen: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("piql-kv-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        RoundPool {
            shared,
            workers,
            stats: PoolStats::default(),
        }
    }

    /// A pool sized to the machine: one worker per available core, with a
    /// floor of 4 (round tasks mostly *wait* — on shard locks or storage
    /// I/O — so overlap pays even on small hosts) and a cap of 16 (rounds
    /// are short; more threads only add contention).
    pub fn default_for_host() -> Self {
        Self::new(default_pool_threads())
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn submit(&self, task: Task) {
        self.shared.queue.lock().push_back(task);
        self.shared.task_ready.notify_one();
    }

    /// Fire-and-forget: run `task` on some pool worker, without the round
    /// join of [`RoundPool::scatter`]. This is what lets the pool double
    /// as a plain dispatch executor (`piql-server` scatters pipelined
    /// request handling over one). On a zero-worker pool the task runs
    /// inline on the caller — degraded but never lost. A panicking task
    /// is caught and swallowed (there is no joiner to re-raise it at):
    /// the worker must survive, or one bad task would shrink the pool
    /// forever while `spawn` kept queueing onto the dead workers.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        if self.workers.is_empty() {
            let _ = catch_unwind(AssertUnwindSafe(task));
        } else {
            self.submit(Box::new(move || {
                let _ = catch_unwind(AssertUnwindSafe(task));
            }));
        }
    }

    /// Run every closure, in parallel where workers allow, and return the
    /// results in input order. Completes when the slowest closure does.
    ///
    /// The calling thread executes tasks too, so this never deadlocks and
    /// degrades gracefully to sequential execution under saturation. If any
    /// task panicked, the panic is re-raised here after the round settles.
    pub fn scatter<T, F>(&self, fns: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = fns.len();
        if n <= 1 || self.workers.is_empty() {
            return fns.into_iter().map(|f| f()).collect();
        }
        self.stats.fanned_rounds.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(RoundState::new(fns));
        // Advertise the round to idle threads before any helper can race
        // ahead of the registration.
        self.shared
            .register_round(&(state.clone() as Arc<dyn StealSource>));
        // One helper per task beyond the caller's own, capped at the pool
        // width; a helper that arrives after the round drained just returns.
        let helpers = (n - 1).min(self.workers.len());
        for _ in 0..helpers {
            let state = state.clone();
            self.submit(Box::new(move || state.drain(true)));
        }
        state.drain(false);
        let (results, worker_tasks) = state.join(&self.shared);
        self.stats
            .worker_tasks
            .fetch_add(worker_tasks, Ordering::Relaxed);
        results
    }

    /// Tasks that idle threads claimed from *other* rounds (see module
    /// docs, constraint 5).
    pub fn stolen_tasks(&self) -> u64 {
        self.shared.stolen.load(Ordering::Relaxed)
    }
}

/// The default worker count for host-sized pools (see
/// [`RoundPool::default_for_host`]).
pub fn default_pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 16)
}

impl Drop for RoundPool {
    fn drop(&mut self) {
        // Store the flag while holding the queue lock: a worker that is
        // about to wait either holds the lock right now (its re-check of
        // `shutdown` below happens after this store, so it sees it and
        // returns) or is already parked in `wait` (so `notify_all` reaches
        // it). Storing outside the lock loses the race where a worker
        // checks `shutdown`, then the store + notify land before it parks
        // — the notify wakes nobody and `join` blocks forever.
        {
            let _queue = self.shared.queue.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.task_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(task) = queue.pop_front() {
                    // Baton-pass before running: two rapid notify_one calls
                    // can be consumed by a single waiter (condvar signal
                    // stealing), which would serialize independent tasks
                    // behind this one. If work remains queued, wake another
                    // worker now.
                    if !queue.is_empty() {
                        shared.task_ready.notify_one();
                    }
                    break task;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Queue empty: before sleeping, donate this thread to any
                // in-flight round with unclaimed tasks (its helper quota
                // is capped at the pool width and may be oversubscribed).
                drop(queue);
                let stole = shared.steal_one(true);
                queue = shared.queue.lock();
                if !stole {
                    // Re-check shutdown before parking: the flag is set
                    // under the queue lock, so a store that happened in
                    // the unlocked steal gap (whose notify_all found no
                    // waiter) is visible here — without this check that
                    // shutdown would be lost and Drop's join would hang.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Nothing stealable either; re-checks the queue at
                    // the loop top after waking. A round registered in
                    // the unlocked gap always submits ≥1 helper task, so
                    // its notify cannot be lost to this wait.
                    queue = shared.task_ready.wait(queue);
                }
            }
        };
        task();
    }
}

/// Shared state of one in-flight round.
struct RoundState<T, F> {
    /// Unclaimed tasks, tagged with their result slot.
    pending: Mutex<VecDeque<(usize, F)>>,
    inner: Mutex<RoundInner<T>>,
    done: Condvar,
}

struct RoundInner<T> {
    slots: Vec<Option<T>>,
    remaining: usize,
    worker_tasks: u64,
    panic: Option<PanicPayload>,
}

impl<T, F> RoundState<T, F>
where
    F: FnOnce() -> T,
{
    fn new(fns: Vec<F>) -> Self {
        let n = fns.len();
        RoundState {
            pending: Mutex::new(
                rank::POOL_ROUND_PENDING,
                "pool.round.pending",
                fns.into_iter().enumerate().collect(),
            ),
            inner: Mutex::new(
                rank::POOL_ROUND_INNER,
                "pool.round.inner",
                RoundInner {
                    slots: (0..n).map(|_| None).collect(),
                    remaining: n,
                    worker_tasks: 0,
                    panic: None,
                },
            ),
            done: Condvar::new(),
        }
    }

    /// Claim and run one unstarted task; `false` if none remained.
    fn run_one(&self, as_worker: bool) -> bool {
        let claimed = self.pending.lock().pop_front();
        let Some((slot, f)) = claimed else {
            return false;
        };
        let result = catch_unwind(AssertUnwindSafe(f));
        let mut inner = self.inner.lock();
        match result {
            Ok(value) => inner.slots[slot] = Some(value),
            Err(payload) => inner.panic = Some(payload),
        }
        inner.remaining -= 1;
        if as_worker {
            inner.worker_tasks += 1;
        }
        if inner.remaining == 0 {
            self.done.notify_all();
        }
        true
    }

    /// Claim and run unstarted tasks until none remain.
    fn drain(&self, as_worker: bool) {
        while self.run_one(as_worker) {}
    }

    /// Wait for every task (including ones claimed by workers) and take the
    /// ordered results; re-raises a task panic on this thread.
    ///
    /// While waiting on this round's slow tail the caller donates its
    /// thread to other in-flight rounds (module docs, constraint 5): each
    /// steal attempt runs between short completion-signal waits, so the
    /// caller still returns promptly when its own round settles.
    fn join(&self, pool: &PoolShared) -> (Vec<T>, u64) {
        let mut inner = self.inner.lock();
        while inner.remaining > 0 {
            drop(inner);
            if !pool.steal_one(false) {
                inner = self.inner.lock();
                if inner.remaining == 0 {
                    break;
                }
                let (guard, _) = self.done.wait_timeout(inner, Duration::from_millis(1));
                inner = guard;
                continue;
            }
            inner = self.inner.lock();
        }
        if let Some(payload) = inner.panic.take() {
            drop(inner);
            resume_unwind(payload);
        }
        let worker_tasks = inner.worker_tasks;
        let out = inner
            .slots
            .iter_mut()
            .map(|slot| slot.take().expect("every slot filled"))
            .collect();
        (out, worker_tasks)
    }
}

impl<T, F> StealSource for RoundState<T, F>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    fn steal_one(&self, as_worker: bool) -> bool {
        self.run_one(as_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn results_are_positional() {
        let pool = RoundPool::new(4);
        for _ in 0..50 {
            let fns: Vec<_> = (0..16).map(|i| move || i * 10).collect();
            let out = pool.scatter(fns);
            assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = RoundPool::new(0);
        let out = pool.scatter(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(pool.stats.fanned_rounds.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sleepy_tasks_overlap() {
        let pool = RoundPool::new(8);
        let t0 = Instant::now();
        let fns: Vec<_> = (0..8)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(20));
                    i
                }
            })
            .collect();
        let out = pool.scatter(fns);
        let elapsed = t0.elapsed();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        // 8 × 20 ms sequential would be 160 ms; parallel is ~20 ms. Allow
        // generous scheduler slack while still ruling out the sum.
        assert!(elapsed < Duration::from_millis(120), "{elapsed:?}");
    }

    #[test]
    fn concurrent_rounds_share_the_pool() {
        let pool = Arc::new(RoundPool::new(4));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let fns: Vec<_> = (0..10).map(|i| move || t * 100 + i).collect();
                        let out = pool.scatter(fns);
                        assert_eq!(out, (0..10).map(|i| t * 100 + i).collect::<Vec<_>>());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn spawned_tasks_run_with_and_without_workers() {
        use std::sync::mpsc;
        let pool = RoundPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // zero workers: inline on the caller, still executed
        let inline = RoundPool::new(0);
        let (tx, rx) = mpsc::channel();
        inline.spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.try_recv().unwrap(), 42);
    }

    #[test]
    fn spawned_panics_do_not_kill_workers() {
        use std::sync::mpsc;
        let pool = RoundPool::new(1);
        // a panicking fire-and-forget task on the single worker...
        pool.spawn(|| panic!("boom"));
        // ...must not take the worker down: later spawns still run
        let (tx, rx) = mpsc::channel();
        pool.spawn(move || tx.send(7).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            7
        );
        // and the inline (zero-worker) path swallows panics too
        let inline = RoundPool::new(0);
        inline.spawn(|| panic!("inline boom"));
    }

    #[test]
    fn join_waiters_steal_from_concurrent_rounds() {
        // One worker. Round A's caller finishes its 20 ms task and then
        // join-waits on the 600 ms task the worker claimed. Round B (six
        // 60 ms tasks) starts concurrently with no worker free: alone,
        // B's caller would run all six sequentially (360 ms). A's waiting
        // caller must steal from B, splitting the round across two
        // threads (~180 ms).
        let pool = Arc::new(RoundPool::new(1));
        let p = pool.clone();
        let a = std::thread::spawn(move || {
            p.scatter(vec![
                Box::new(|| std::thread::sleep(Duration::from_millis(20)))
                    as Box<dyn FnOnce() + Send>,
                Box::new(|| std::thread::sleep(Duration::from_millis(600))),
            ]);
        });
        // let A reach its join wait
        std::thread::sleep(Duration::from_millis(60));
        let t0 = Instant::now();
        let fns: Vec<_> = (0..6)
            .map(|_| || std::thread::sleep(Duration::from_millis(60)))
            .collect();
        pool.scatter(fns);
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "concurrent round must beat its serial time (360 ms): {elapsed:?}"
        );
        a.join().unwrap();
        assert!(pool.stolen_tasks() > 0, "steals must be what made it fast");
    }

    #[test]
    fn drop_never_hangs_on_shutdown_race() {
        // Regression (found as a wedged tier-1 run on a 1-core host): the
        // shutdown flag used to be stored outside the queue lock and
        // workers did not re-check it between the steal gap and parking,
        // so a drop racing a worker's park could strand the worker on
        // `task_ready` forever and hang `join`. Hammer the
        // create/scatter/drop cycle under a watchdog; the exhaustive
        // schedule proof is `piql_analysis::models::PoolShutdownModel`.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for i in 0..200 {
                let pool = RoundPool::new(4);
                if i % 2 == 0 {
                    let fns: Vec<_> = (0..4).map(|j| move || j).collect();
                    assert_eq!(pool.scatter(fns), vec![0, 1, 2, 3]);
                }
                drop(pool);
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(60))
            .expect("a pool drop lost its shutdown wakeup and hung");
    }

    #[test]
    fn task_panic_propagates_to_caller_and_pool_survives() {
        let pool = Arc::new(RoundPool::new(2));
        let p = pool.clone();
        let caller = std::thread::spawn(move || {
            let fns: Vec<Box<dyn FnOnce() -> i32 + Send>> =
                vec![Box::new(|| panic!("boom")), Box::new(|| 2), Box::new(|| 3)];
            p.scatter(fns);
        });
        assert!(caller.join().is_err(), "panic re-raised on the caller");
        // workers caught the panic and keep serving fresh rounds
        let out = pool.scatter(vec![|| 1, || 2, || 3]);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(pool.worker_count(), 2);
    }
}
