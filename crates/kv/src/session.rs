//! Client sessions: the virtual clock plus per-session accounting.

use crate::sample::OpTag;
use crate::time::Micros;

/// Per-session operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Parallel rounds issued.
    pub rounds: u64,
    /// Requests as issued by the execution engine (what the compiler's
    /// bound counts).
    pub logical_requests: u64,
    /// Node visits after partition fan-out/continuation (≥ logical).
    pub physical_requests: u64,
    /// Entries shipped back.
    pub entries: u64,
    /// Payload bytes shipped back.
    pub bytes: u64,
}

/// One client session. The engine threads a session through a query
/// execution; `now` advances as rounds complete, and the difference between
/// start and end is the query's simulated response time.
#[derive(Debug, Clone, Default)]
pub struct Session {
    pub now: Micros,
    pub stats: SessionStats,
    /// The remote operator this session is currently executing, set by the
    /// engine around an operator's rounds. Wall-clock backends use it to
    /// tag latency samples for online model training; `None` (writes, bulk
    /// work, untagged callers) records nothing.
    pub op_tag: Option<OpTag>,
}

impl Session {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn at(now: Micros) -> Self {
        Session {
            now,
            stats: SessionStats::default(),
            op_tag: None,
        }
    }

    /// Begin timing a query; returns the start time.
    pub fn begin(&self) -> Micros {
        self.now
    }

    /// Elapsed virtual time since `start`.
    pub fn elapsed_since(&self, start: Micros) -> Micros {
        self.now - start
    }

    pub fn reset_stats(&mut self) {
        self.stats = SessionStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let mut s = Session::at(100);
        let t0 = s.begin();
        s.now = 350;
        assert_eq!(s.elapsed_since(t0), 250);
        s.stats.rounds = 3;
        s.reset_stats();
        assert_eq!(s.stats, SessionStats::default());
    }
}
