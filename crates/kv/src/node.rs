//! Storage-node timing simulation.
//!
//! A node is a bounded-concurrency server: `concurrency` operations can be
//! in flight at once; further arrivals queue FIFO. The node keeps a
//! min-heap of slot busy-until times — admitting an op at virtual time `t`
//! costs `max(t, earliest free slot) + service`, which reproduces queueing
//! delay under load and therefore the latency knee the paper's throughput
//! experiments rely on (§8.4).

use crate::latency::{InterferenceConfig, LatencyConfig};
use crate::op::KvRequest;
use crate::time::Micros;
use piql_analysis::ordered::Mutex;
use piql_analysis::rank;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One simulated storage node.
pub struct StorageNode {
    pub id: usize,
    state: Mutex<NodeState>,
    latency: LatencyConfig,
    interference: InterferenceConfig,
    seed: u64,
}

struct NodeState {
    /// Busy-until time per concurrency slot.
    slots: BinaryHeap<Reverse<Micros>>,
    rng: StdRng,
    ops_served: u64,
    busy_us: u64,
    queue_us: u64,
}

/// Outcome of admitting one op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    pub start: Micros,
    pub done: Micros,
}

impl StorageNode {
    pub fn new(
        id: usize,
        concurrency: usize,
        latency: LatencyConfig,
        interference: InterferenceConfig,
        seed: u64,
    ) -> Self {
        let mut slots = BinaryHeap::with_capacity(concurrency);
        for _ in 0..concurrency.max(1) {
            slots.push(Reverse(0));
        }
        StorageNode {
            id,
            state: Mutex::new(
                rank::SIM_NODE,
                "sim.node",
                NodeState {
                    slots,
                    rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9)),
                    ops_served: 0,
                    busy_us: 0,
                    queue_us: 0,
                },
            ),
            latency,
            interference,
            seed,
        }
    }

    /// Admit one operation arriving at `arrival`; returns its completion.
    pub fn admit(
        &self,
        arrival: Micros,
        req: &KvRequest,
        result_entries: u64,
        result_bytes: u64,
    ) -> Admission {
        let mut st = self.state.lock();
        let Reverse(free) = st.slots.pop().expect("slots nonempty");
        let start = arrival.max(free);
        let service = self
            .latency
            .sample(&mut st.rng, req, result_entries, result_bytes);
        let factor = self.interference.factor(self.seed, self.id, start);
        let service = (service as f64 * factor) as Micros;
        let done = start + service;
        st.slots.push(Reverse(done));
        st.ops_served += 1;
        st.busy_us += service;
        st.queue_us += start - arrival;
        Admission { start, done }
    }

    /// Completion time of the least-loaded slot — used for replica routing.
    pub fn earliest_free(&self) -> Micros {
        self.state
            .lock()
            .slots
            .peek()
            .map(|Reverse(t)| *t)
            .unwrap_or(0)
    }

    /// (ops served, total busy µs, total queueing µs).
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.ops_served, st.busy_us, st.queue_us)
    }

    /// Reset timing state (between measurement intervals), keeping the rng.
    pub fn reset_counters(&self) {
        let mut st = self.state.lock();
        st.ops_served = 0;
        st.busy_us = 0;
        st.queue_us = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::NsId;

    fn fixed_node(concurrency: usize, service_us: f64) -> StorageNode {
        StorageNode::new(
            0,
            concurrency,
            LatencyConfig {
                median_us: service_us,
                sigma: 0.0,
                per_entry_us: 0.0,
                per_kib_us: 0.0,
                write_factor: 1.0,
            },
            InterferenceConfig::none(),
            1,
        )
    }

    fn get() -> KvRequest {
        KvRequest::Get {
            ns: NsId(0),
            key: vec![1],
        }
    }

    #[test]
    fn parallel_slots_no_queueing() {
        let node = fixed_node(4, 1000.0);
        for _ in 0..4 {
            let a = node.admit(0, &get(), 0, 0);
            assert_eq!(a.start, 0);
            assert_eq!(a.done, 1000);
        }
        // fifth op queues behind the earliest slot
        let a = node.admit(0, &get(), 0, 0);
        assert_eq!(a.start, 1000);
        assert_eq!(a.done, 2000);
    }

    #[test]
    fn queueing_grows_under_overload() {
        let node = fixed_node(1, 1000.0);
        let mut last = 0;
        for i in 0..10 {
            let a = node.admit(0, &get(), 0, 0);
            assert_eq!(a.start, i * 1000);
            last = a.done;
        }
        assert_eq!(last, 10_000);
        let (ops, busy, queue) = node.stats();
        assert_eq!(ops, 10);
        assert_eq!(busy, 10_000);
        assert_eq!(queue, 45_000); // 0+1000+...+9000
    }

    #[test]
    fn idle_node_starts_immediately() {
        let node = fixed_node(2, 500.0);
        node.admit(0, &get(), 0, 0);
        let a = node.admit(10_000, &get(), 0, 0);
        assert_eq!(a.start, 10_000);
    }
}
