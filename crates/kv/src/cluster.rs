//! The simulated distributed key/value store (the SCADS substitute, §3).
//!
//! One `SimCluster` models N storage nodes serving range-partitioned,
//! replicated namespaces. Data is held once (logically centralized); the
//! partition map decides which node's *timeline* a request occupies, so
//! parallelism, queueing, replication fan-out, and eventual-consistency
//! visibility behave like the real thing while staying deterministic.
//!
//! * Reads go to the least-loaded replica of the key's partition; reads
//!   served by a non-primary replica only see writes older than the
//!   configured replica lag.
//! * Writes go to every replica in parallel and complete at the slowest.
//! * Range requests visit partitions sequentially in scan order (each visit
//!   is one physical request); all other requests of a round proceed in
//!   parallel.

use crate::latency::{InterferenceConfig, LatencyConfig};
use crate::node::StorageNode;
use crate::op::{KvRequest, KvResponse, NsId, RequestRound};
use crate::partition::{NsPlacement, PartitionMap};
use crate::session::Session;
use crate::stats::ClusterStats;
use crate::store::Namespace;
use crate::time::Micros;
use piql_analysis::ordered::RwLock;
use piql_analysis::rank;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: usize,
    /// Copies of each partition (the paper's experiments use 2).
    pub replication: usize,
    /// Concurrent ops one node can service before queueing.
    pub node_concurrency: usize,
    /// Partitions per namespace ≈ `nodes * partitions_per_node`.
    pub partitions_per_node: usize,
    pub seed: u64,
    pub latency: LatencyConfig,
    pub interference: InterferenceConfig,
    /// Visibility lag of non-primary replicas (eventual consistency), µs.
    pub replica_lag_us: Micros,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication: 2,
            node_concurrency: 8,
            partitions_per_node: 1,
            seed: 0xC0FFEE,
            latency: LatencyConfig::default(),
            interference: InterferenceConfig::default(),
            replica_lag_us: 20 * crate::time::MILLIS,
        }
    }
}

impl ClusterConfig {
    /// Instant, interference-free, strongly-visible cluster for
    /// correctness tests.
    pub fn instant(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            replication: 2.min(nodes),
            node_concurrency: 8,
            partitions_per_node: 1,
            seed: 1,
            latency: LatencyConfig::zero(),
            interference: InterferenceConfig::none(),
            replica_lag_us: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }
}

/// Physical balance of one namespace's shards (or partitions): how many
/// entries each holds and how many storage operations each has served.
/// This is the observability feed for skew detection — a rebalance exists
/// to drive `max_entry_share` back toward `1/shards`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NsBalance {
    pub name: String,
    /// Shards in the namespace's current layout.
    pub shards: usize,
    /// Entries per shard, in key order.
    pub entries: Vec<u64>,
    /// Storage operations served per shard since its layout was installed
    /// (a rebalance starts the new layout's counters at zero).
    pub ops: Vec<u64>,
}

impl NsBalance {
    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// The largest single shard's fraction of entries — `1/shards` is
    /// perfectly even, `1.0` is everything piled on one shard. `0.0` when
    /// the namespace is empty.
    pub fn max_entry_share(&self) -> f64 {
        share(&self.entries)
    }

    /// The largest single shard's fraction of operations served.
    pub fn max_op_share(&self) -> f64 {
        share(&self.ops)
    }
}

fn share(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts.iter().copied().max().unwrap_or(0) as f64 / total as f64
}

/// The store abstraction the engine programs against.
pub trait KvStore: Send + Sync {
    /// Resolve (creating if needed) a namespace.
    fn namespace(&self, name: &str) -> NsId;
    /// Issue one parallel round.
    ///
    /// Round contract (what the paper's latency model, the compiler's
    /// round bounds, and both backends agree on):
    ///
    /// * All requests of a round are **logically issued at the same
    ///   instant** and execute concurrently; the round completes — and the
    ///   session clock advances to — the *slowest* request's completion,
    ///   not the sum. `SimCluster` models this in virtual time;
    ///   `LiveCluster` fans the round out over a shared worker pool.
    /// * Responses are **positional**: `responses[i]` answers `round[i]`,
    ///   regardless of completion order.
    /// * Requests within one round must be **mutually independent**: the
    ///   store may execute them in any order or interleaving, so a read of
    ///   a key written in the same round sees an unspecified value. The
    ///   engine never issues dependent requests in one round (dependent
    ///   writes go in successive rounds — see the §7.2 write ordering).
    /// * Accounting: one round adds `round.len()` logical requests and at
    ///   least that many physical requests (replica fan-out and partition
    ///   or shard visits inflate the physical count) to the session stats.
    fn execute_round(&self, session: &mut Session, round: RequestRound) -> Vec<KvResponse>;
    /// Allocation-free point read: look `key` up in `ns` and append the
    /// stored value to `out`, with the same session-clock, stats, and
    /// latency-sample accounting as a one-request `GetRange` round that
    /// visited one shard and returned the entry (so the feedback loop sees
    /// point reads served this way exactly like plan-executed ones).
    ///
    /// Returns `Some(found)` when the backend services the read, `None`
    /// when it does not support the fast path — callers must then fall
    /// back to [`KvStore::execute_round`]. The default declines; only
    /// wall-clock backends on the server's binary hot path implement it.
    fn point_get(
        &self,
        session: &mut Session,
        ns: NsId,
        key: &[u8],
        out: &mut Vec<u8>,
    ) -> Option<bool> {
        let _ = (session, ns, key, out);
        None
    }
    /// Write directly, bypassing timing and accounting (bulk load before an
    /// experiment or to seed a serving store).
    fn bulk_put(&self, ns: NsId, key: Vec<u8>, value: Vec<u8>);
    /// Recompute data placement from current contents. Backends without a
    /// placement concept treat this as a no-op.
    fn rebalance(&self) {}
    /// Per-namespace physical shard balance, for backends that track data
    /// placement explicitly (see [`NsBalance`]). Default: nothing to
    /// report.
    fn balance(&self) -> Vec<NsBalance> {
        Vec::new()
    }
    /// Rebalance iff some multi-shard namespace is op-skewed: it has served
    /// at least `min_ops` operations under its current layout and its
    /// [`NsBalance::max_op_share`] exceeds `max_op_share`. Returns whether
    /// a rebalance ran. Op counters restart at zero with the new layout,
    /// so `min_ops` doubles as hysteresis between consecutive triggers.
    fn maybe_rebalance(&self, max_op_share: f64, min_ops: u64) -> bool {
        let skewed = self.balance().iter().any(|b| {
            b.shards > 1 && b.ops.iter().sum::<u64>() >= min_ops && b.max_op_share() > max_op_share
        });
        if skewed {
            self.rebalance();
        }
        skewed
    }
    /// Advance the session clock to the backend's current time, so a
    /// latency measured as `begin()..now` starts *now* rather than at the
    /// previous round's completion. Wall-clock backends override this;
    /// virtual-time backends are a no-op (their sessions own the clock —
    /// idle time does not pass unless the driver says so).
    fn sync_session(&self, session: &mut Session) {
        let _ = session;
    }
    /// Take every buffered live latency sample (see
    /// [`crate::sample::LiveSampleSink`]). Wall-clock backends that observe
    /// real operator latencies override this; virtual-time backends have
    /// nothing to report (their models come from the §6.1 trainer).
    fn drain_samples(&self) -> Vec<crate::sample::OpSample> {
        Vec::new()
    }
    /// True once an attached write-ahead sink has failed a commit barrier:
    /// writes still apply in memory but are no longer durable, and the
    /// serving layer must stop acknowledging them as such. Backends
    /// without a WAL never degrade.
    fn wal_degraded(&self) -> bool {
        false
    }
}

/// The simulated cluster.
pub struct SimCluster {
    pub config: ClusterConfig,
    nodes: Vec<StorageNode>,
    namespaces: RwLock<Vec<Arc<Namespace>>>,
    names: RwLock<BTreeMap<String, NsId>>,
    placement: PartitionMap,
    pub stats: ClusterStats,
}

impl SimCluster {
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = (0..config.nodes.max(1))
            .map(|id| {
                StorageNode::new(
                    id,
                    config.node_concurrency,
                    config.latency.clone(),
                    config.interference.clone(),
                    config.seed,
                )
            })
            .collect();
        SimCluster {
            nodes,
            namespaces: RwLock::new(rank::KV_NAMESPACES, "sim.namespaces", Vec::new()),
            names: RwLock::new(rank::KV_NAMES, "sim.names", BTreeMap::new()),
            placement: PartitionMap::new(),
            stats: ClusterStats::default(),
            config,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn ns_data(&self, ns: NsId) -> Arc<Namespace> {
        self.namespaces.read()[ns.0 as usize].clone()
    }

    /// Write directly, bypassing timing (bulk load before an experiment).
    pub fn bulk_put(&self, ns: NsId, key: Vec<u8>, value: Vec<u8>) {
        self.ns_data(ns).put(key, Some(value), 0);
    }

    /// Entries currently in a namespace.
    pub fn ns_len(&self, ns: NsId) -> usize {
        self.ns_data(ns).len()
    }

    /// Recompute partition split points from current data and spread
    /// partitions over the nodes — the SCADS Director's job.
    pub fn rebalance(&self) {
        let names = self.names.read();
        for (name, ns) in names.iter() {
            let data = self.ns_data(*ns);
            let parts = (self.config.nodes * self.config.partitions_per_node).max(1);
            let splits = data.quantile_keys(parts);
            let n_parts = splits.len() + 1;
            // offset spreads different namespaces' partition #0 across nodes
            let offset = name.bytes().fold(0usize, |acc, b| {
                acc.wrapping_mul(31).wrapping_add(b as usize)
            }) % self.config.nodes.max(1);
            let replicas = PartitionMap::assign_round_robin(
                n_parts,
                self.config.nodes,
                self.config.replication,
                offset,
            );
            self.placement.set(*ns, NsPlacement { splits, replicas });
        }
    }

    /// Least-loaded replica for a read, with its visibility horizon.
    fn read_replica(
        &self,
        placement: &NsPlacement,
        partition: usize,
        now: Micros,
    ) -> (usize, Micros) {
        let replicas = &placement.replicas[partition.min(placement.replicas.len() - 1)];
        let primary = replicas[0];
        let chosen = replicas
            .iter()
            .copied()
            .min_by_key(|&r| self.nodes[r].earliest_free())
            .unwrap_or(primary);
        let horizon = if chosen == primary {
            now
        } else {
            now.saturating_sub(self.config.replica_lag_us)
        };
        (chosen, horizon)
    }

    /// Execute one request arriving at `start`; returns response and
    /// completion time, counting physical node visits.
    fn execute_one(
        &self,
        start: Micros,
        req: &KvRequest,
        physical: &mut u64,
    ) -> (KvResponse, Micros) {
        let ns = req.ns();
        let data = self.ns_data(ns);
        let placement = self.placement.get(ns);
        match req {
            KvRequest::Get { key, .. } => {
                let part = placement.partition_of(key);
                let (node, horizon) = self.read_replica(&placement, part, start);
                let value = data.get(key, horizon);
                let bytes = value.as_ref().map(|v| v.len() as u64).unwrap_or(0);
                let adm = self.nodes[node].admit(start, req, value.is_some() as u64, bytes);
                *physical += 1;
                self.stats.record_read(bytes);
                (KvResponse::Value(value), adm.done)
            }
            KvRequest::Put { key, .. } | KvRequest::Delete { key, .. } => {
                let value = match req {
                    KvRequest::Put { value, .. } => Some(value.clone()),
                    _ => None,
                };
                let part = placement.partition_of(key);
                let replicas = &placement.replicas[part.min(placement.replicas.len() - 1)];
                let bytes = value.as_ref().map(|v| v.len() as u64).unwrap_or(0);
                let mut done = start;
                let mut primary_done = start;
                for (i, &r) in replicas.iter().enumerate() {
                    let adm = self.nodes[r].admit(start, req, 1, bytes);
                    if i == 0 {
                        primary_done = adm.done;
                    }
                    done = done.max(adm.done);
                    *physical += 1;
                }
                // visible once the primary acknowledged
                data.put(key.clone(), value, primary_done);
                self.stats.record_write(bytes);
                (KvResponse::Done, done)
            }
            KvRequest::TestAndSet {
                key, expect, value, ..
            } => {
                // coordinated by the primary; replicas updated in parallel
                let part = placement.partition_of(key);
                let replicas = &placement.replicas[part.min(placement.replicas.len() - 1)];
                let bytes = value.as_ref().map(|v| v.len() as u64).unwrap_or(0);
                let mut done = start;
                for &r in replicas {
                    let adm = self.nodes[r].admit(start, req, 1, bytes);
                    done = done.max(adm.done);
                    *physical += 1;
                }
                let (success, current) =
                    data.test_and_set(key, expect.as_deref(), value.clone(), done);
                self.stats.record_write(bytes);
                (KvResponse::TasResult { success, current }, done)
            }
            KvRequest::GetRange {
                start: lo,
                end,
                limit,
                reverse,
                ..
            } => {
                let mut parts = placement.partitions_for_range(lo, end.as_deref());
                if *reverse {
                    parts.reverse();
                }
                let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                let mut t = start;
                let want = limit.unwrap_or(u64::MAX);
                for (visit, part) in parts.iter().enumerate() {
                    if out.len() as u64 >= want {
                        break;
                    }
                    // continuation to the next partition is sequential
                    let (node, horizon) = self.read_replica(&placement, *part, t);
                    // fetch only this partition's slice of the range
                    let (p_lo, p_hi) = partition_bounds(&placement, *part, lo, end.as_deref());
                    let remaining = want - out.len() as u64;
                    let entries =
                        data.range(&p_lo, p_hi.as_deref(), Some(remaining), *reverse, horizon);
                    let bytes: u64 = entries
                        .iter()
                        .map(|(k, v)| (k.len() + v.len()) as u64)
                        .sum();
                    let adm = self.nodes[node].admit(t, req, entries.len() as u64, bytes);
                    t = adm.done;
                    *physical += 1;
                    self.stats.record_read(bytes);
                    out.extend(entries);
                    // after the first visit, an empty tail partition still
                    // costs a visit — keep scanning only while unfilled
                    let _ = visit;
                }
                (KvResponse::Entries(out), t)
            }
            KvRequest::CountRange { start: lo, end, .. } => {
                let parts = placement.partitions_for_range(lo, end.as_deref());
                let mut total = 0u64;
                let mut done = start;
                for part in parts {
                    let (node, horizon) = self.read_replica(&placement, part, start);
                    let (p_lo, p_hi) = partition_bounds(&placement, part, lo, end.as_deref());
                    let c = data.count_range(&p_lo, p_hi.as_deref(), horizon);
                    let adm = self.nodes[node].admit(start, req, c, 0);
                    done = done.max(adm.done); // counts proceed in parallel
                    *physical += 1;
                    total += c;
                }
                self.stats.record_read(0);
                (KvResponse::Count(total), done)
            }
        }
    }

    /// Compact all namespaces up to `horizon` (GC of tombstones/versions).
    pub fn compact(&self, horizon: Micros) {
        for ns in self.namespaces.read().iter() {
            ns.compact(horizon);
        }
    }

    /// Per-node (ops, busy µs, queue µs) counters.
    pub fn node_stats(&self) -> Vec<(u64, u64, u64)> {
        self.nodes.iter().map(|n| n.stats()).collect()
    }

    pub fn reset_node_counters(&self) {
        for n in &self.nodes {
            n.reset_counters();
        }
    }
}

/// Clip `[lo, hi)` to one partition's bounds.
fn partition_bounds(
    placement: &NsPlacement,
    part: usize,
    lo: &[u8],
    hi: Option<&[u8]>,
) -> (Vec<u8>, Option<Vec<u8>>) {
    let part_lo = if part == 0 {
        None
    } else {
        placement.splits.get(part - 1).cloned()
    };
    let part_hi = placement.splits.get(part).cloned();
    let eff_lo = match part_lo {
        Some(pl) if pl.as_slice() > lo => pl,
        _ => lo.to_vec(),
    };
    let eff_hi = match (part_hi, hi) {
        (Some(ph), Some(h)) => Some(if ph.as_slice() < h { ph } else { h.to_vec() }),
        (Some(ph), None) => Some(ph),
        (None, Some(h)) => Some(h.to_vec()),
        (None, None) => None,
    };
    (eff_lo, eff_hi)
}

impl KvStore for SimCluster {
    fn namespace(&self, name: &str) -> NsId {
        if let Some(id) = self.names.read().get(name) {
            return *id;
        }
        let mut names = self.names.write();
        if let Some(id) = names.get(name) {
            return *id;
        }
        let mut data = self.namespaces.write();
        let id = NsId(data.len() as u32);
        data.push(Arc::new(Namespace::new()));
        names.insert(name.to_string(), id);
        // default placement: whole keyspace on one replica set
        let offset = name.bytes().fold(0usize, |acc, b| {
            acc.wrapping_mul(31).wrapping_add(b as usize)
        }) % self.config.nodes.max(1);
        let replicas =
            PartitionMap::assign_round_robin(1, self.config.nodes, self.config.replication, offset);
        self.placement.set(
            id,
            NsPlacement {
                splits: Vec::new(),
                replicas,
            },
        );
        id
    }

    fn execute_round(&self, session: &mut Session, round: RequestRound) -> Vec<KvResponse> {
        if round.is_empty() {
            return Vec::new();
        }
        let start = session.now;
        let mut responses = Vec::with_capacity(round.len());
        let mut latest = start;
        let mut physical = 0u64;
        for req in &round {
            let (resp, done) = self.execute_one(start, req, &mut physical);
            latest = latest.max(done);
            if let KvResponse::Entries(e) = &resp {
                session.stats.entries += e.len() as u64;
                session.stats.bytes += e
                    .iter()
                    .map(|(k, v)| (k.len() + v.len()) as u64)
                    .sum::<u64>();
            }
            responses.push(resp);
        }
        session.now = latest;
        session.stats.rounds += 1;
        session.stats.logical_requests += round.len() as u64;
        session.stats.physical_requests += physical;
        self.stats.record_round(round.len() as u64, physical);
        responses
    }

    fn bulk_put(&self, ns: NsId, key: Vec<u8>, value: Vec<u8>) {
        SimCluster::bulk_put(self, ns, key, value);
    }

    fn rebalance(&self) {
        SimCluster::rebalance(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_cluster() -> SimCluster {
        SimCluster::new(ClusterConfig::instant(4))
    }

    #[test]
    fn basic_round_trip() {
        let c = instant_cluster();
        let ns = c.namespace("t/users");
        let mut s = Session::new();
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"alice".to_vec(),
                value: b"row".to_vec(),
            }],
        );
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"alice".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), Some(b"row".as_slice()));
        assert_eq!(s.stats.rounds, 2);
        assert_eq!(s.stats.logical_requests, 2);
        assert!(s.stats.physical_requests >= 2, "writes hit both replicas");
    }

    #[test]
    fn parallel_round_advances_to_max() {
        let mut cfg = ClusterConfig::instant(4);
        cfg.latency = LatencyConfig {
            median_us: 1000.0,
            sigma: 0.0,
            per_entry_us: 0.0,
            per_kib_us: 0.0,
            write_factor: 1.0,
        };
        let c = SimCluster::new(cfg);
        let ns = c.namespace("x");
        let mut s = Session::new();
        let round: RequestRound = (0..8u8)
            .map(|i| KvRequest::Get { ns, key: vec![i] })
            .collect();
        c.execute_round(&mut s, round);
        // 8 gets on 4 nodes: all within ~2 service times, NOT 8 serial ones
        assert!(s.now >= 1000 && s.now <= 4000, "now = {}", s.now);
        let mut s2 = Session::new();
        for i in 0..8u8 {
            c.execute_round(&mut s2, vec![KvRequest::Get { ns, key: vec![i] }]);
        }
        assert!(s2.now >= 8000, "serial rounds accumulate: {}", s2.now);
    }

    #[test]
    fn range_scan_spans_partitions() {
        let c = instant_cluster();
        let ns = c.namespace("t/items");
        for i in 0..100u8 {
            c.bulk_put(ns, vec![i], vec![i]);
        }
        c.rebalance();
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![10],
                end: Some(vec![90]),
                limit: None,
                reverse: false,
            }],
        );
        let entries = r[0].expect_entries();
        assert_eq!(entries.len(), 80);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(
            s.stats.physical_requests > 1,
            "range crossed partitions: {}",
            s.stats.physical_requests
        );
        // limited scan stops at the first partition that fills it
        let mut s2 = Session::new();
        let r = c.execute_round(
            &mut s2,
            vec![KvRequest::GetRange {
                ns,
                start: vec![10],
                end: None,
                limit: Some(5),
                reverse: false,
            }],
        );
        assert_eq!(r[0].expect_entries().len(), 5);
        assert_eq!(s2.stats.physical_requests, 1);
    }

    #[test]
    fn reverse_range_scan() {
        let c = instant_cluster();
        let ns = c.namespace("r");
        for i in 0..50u8 {
            c.bulk_put(ns, vec![i], vec![i]);
        }
        c.rebalance();
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::GetRange {
                ns,
                start: vec![0],
                end: None,
                limit: Some(10),
                reverse: true,
            }],
        );
        let entries = r[0].expect_entries();
        assert_eq!(entries.len(), 10);
        assert_eq!(entries[0].0, vec![49]);
        assert!(entries.windows(2).all(|w| w[0].0 > w[1].0));
    }

    #[test]
    fn count_and_tas() {
        let c = instant_cluster();
        let ns = c.namespace("cnt");
        for i in 0..30u8 {
            c.bulk_put(ns, vec![i], vec![i]);
        }
        c.rebalance();
        let mut s = Session::new();
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::CountRange {
                ns,
                start: vec![5],
                end: Some(vec![15]),
            }],
        );
        assert_eq!(r[0].expect_count(), 10);
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::TestAndSet {
                ns,
                key: vec![5],
                expect: None,
                value: Some(vec![99]),
            }],
        );
        assert!(matches!(r[0], KvResponse::TasResult { success: false, .. }));
    }

    #[test]
    fn replica_lag_causes_stale_reads_then_convergence() {
        let mut cfg = ClusterConfig::instant(2);
        cfg.replica_lag_us = 1_000_000;
        cfg.latency = LatencyConfig {
            median_us: 100.0,
            sigma: 0.0,
            per_entry_us: 0.0,
            per_kib_us: 0.0,
            write_factor: 1.0,
        };
        let c = SimCluster::new(cfg);
        let ns = c.namespace("lag");
        let mut s = Session::new();
        c.execute_round(
            &mut s,
            vec![KvRequest::Put {
                ns,
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }],
        );
        // immediately after the write, a lagged replica may not see it;
        // much later every replica does
        let mut stale_seen = false;
        for _ in 0..8 {
            let r = c.execute_round(
                &mut s,
                vec![KvRequest::Get {
                    ns,
                    key: b"k".to_vec(),
                }],
            );
            if matches!(r[0], KvResponse::Value(None)) {
                stale_seen = true;
            }
        }
        s.now += 2_000_000;
        let r = c.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            }],
        );
        assert_eq!(r[0].expect_value(), Some(b"v".as_slice()));
        let _ = stale_seen; // stale reads are possible but not guaranteed
    }

    #[test]
    fn determinism_same_seed_same_timing() {
        let run = || {
            let c = SimCluster::new(ClusterConfig::default().with_nodes(3).with_seed(99));
            let ns = c.namespace("d");
            let mut s = Session::new();
            for i in 0..50u8 {
                c.execute_round(
                    &mut s,
                    vec![KvRequest::Put {
                        ns,
                        key: vec![i],
                        value: vec![i; 10],
                    }],
                );
            }
            s.now
        };
        assert_eq!(run(), run());
    }
}
