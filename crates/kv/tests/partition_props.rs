//! Property tests for partition routing: every key routes to exactly one
//! partition, ranges cover exactly the partitions their keys live in, and
//! simulated scans agree with a flat reference store.

use piql_kv::partition::{NsPlacement, PartitionMap};
use piql_kv::{ClusterConfig, KvRequest, KvStore, Session, SimCluster};
use proptest::prelude::*;

fn arb_placement() -> impl Strategy<Value = NsPlacement> {
    prop::collection::btree_set(prop::collection::vec(any::<u8>(), 1..6), 0..8).prop_map(|splits| {
        let splits: Vec<Vec<u8>> = splits.into_iter().collect();
        let replicas = PartitionMap::assign_round_robin(splits.len() + 1, 5, 2, 1);
        NsPlacement { splits, replicas }
    })
}

proptest! {
    #[test]
    fn key_routing_is_consistent_with_ranges(
        placement in arb_placement(),
        key in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let part = placement.partition_of(&key);
        prop_assert!(part < placement.partitions());
        // a singleton range [key, key+0x00) must route to exactly that
        // partition
        let mut end = key.clone();
        end.push(0);
        let parts = placement.partitions_for_range(&key, Some(&end));
        prop_assert_eq!(parts, vec![part]);
    }

    #[test]
    fn range_partitions_are_contiguous_and_ordered(
        placement in arb_placement(),
        a in prop::collection::vec(any::<u8>(), 0..8),
        b in prop::collection::vec(any::<u8>(), 0..8),
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if lo == hi { return Ok(()); }
        let parts = placement.partitions_for_range(&lo, Some(&hi));
        prop_assert!(!parts.is_empty());
        for w in parts.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1, "contiguous ascending");
        }
        prop_assert_eq!(parts[0], placement.partition_of(&lo));
    }

    #[test]
    fn cluster_scans_agree_with_flat_reference(
        entries in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 1..6),
            any::<u8>(),
            0..40,
        ),
        start in prop::collection::vec(any::<u8>(), 0..4),
        limit in 1u64..20,
        reverse in any::<bool>(),
    ) {
        let cluster = SimCluster::new(ClusterConfig::instant(4));
        let ns = cluster.namespace("p");
        for (k, v) in &entries {
            cluster.bulk_put(ns, k.clone(), vec![*v]);
        }
        cluster.rebalance();
        let mut session = Session::new();
        let got = cluster.execute_round(
            &mut session,
            vec![KvRequest::GetRange {
                ns,
                start: start.clone(),
                end: None,
                limit: Some(limit),
                reverse,
            }],
        );
        let got = got[0].expect_entries().to_vec();
        // flat reference
        let mut expect: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .filter(|(k, _)| k.as_slice() >= start.as_slice())
            .map(|(k, v)| (k.clone(), vec![*v]))
            .collect();
        if reverse {
            expect.reverse();
        }
        expect.truncate(limit as usize);
        prop_assert_eq!(got, expect);
    }
}
