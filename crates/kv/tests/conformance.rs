//! Backend conformance suite: every [`KvStore`] implementation must agree
//! on get/put/delete, range, count, test-and-set, and read-your-writes
//! visibility semantics. Runs against the virtual-time `SimCluster`
//! (instant, strongly-visible configuration) and the wall-clock
//! `LiveCluster` — the engine treats them interchangeably, so they must be.

use piql_kv::{
    ClusterConfig, KvRequest, KvResponse, KvStore, LiveCluster, LiveConfig, Session, SimCluster,
};

/// Every conforming backend, by name (for assertion messages).
fn backends() -> Vec<(&'static str, Box<dyn KvStore>)> {
    vec![
        (
            "SimCluster",
            Box::new(SimCluster::new(ClusterConfig::instant(4))),
        ),
        (
            "LiveCluster",
            Box::new(LiveCluster::new(LiveConfig {
                shards_per_namespace: 4,
                ..Default::default()
            })),
        ),
        (
            "LiveCluster(sequential)",
            Box::new(LiveCluster::new(LiveConfig {
                shards_per_namespace: 4,
                pool_threads: 0,
                request_delay_us: 0,
            })),
        ),
    ]
}

/// A `LiveCluster` doubling as the suite's *slow store*: every request is
/// injected with `delay_us` of service time, which makes round timing
/// observable on the wall clock (an in-memory map answers in nanoseconds
/// otherwise).
fn slow_store(delay_us: u64, pool_threads: usize) -> LiveCluster {
    LiveCluster::new(LiveConfig {
        shards_per_namespace: 4,
        pool_threads,
        request_delay_us: delay_us,
    })
}

fn one(store: &dyn KvStore, s: &mut Session, req: KvRequest) -> KvResponse {
    store.execute_round(s, vec![req]).remove(0)
}

#[test]
fn namespaces_are_stable_and_distinct() {
    for (name, store) in backends() {
        let a = store.namespace("tables/a");
        let b = store.namespace("tables/b");
        assert_ne!(a, b, "{name}: distinct names, distinct namespaces");
        assert_eq!(a, store.namespace("tables/a"), "{name}: stable resolution");

        // same key in different namespaces never collides
        let mut s = Session::new();
        one(
            store.as_ref(),
            &mut s,
            KvRequest::Put {
                ns: a,
                key: b"k".to_vec(),
                value: b"in-a".to_vec(),
            },
        );
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::Get {
                ns: b,
                key: b"k".to_vec(),
            },
        );
        assert_eq!(r.expect_value(), None, "{name}: namespace isolation");
    }
}

#[test]
fn put_get_delete_read_your_writes() {
    for (name, store) in backends() {
        let ns = store.namespace("t");
        let mut s = Session::new();
        assert_eq!(
            one(
                store.as_ref(),
                &mut s,
                KvRequest::Get {
                    ns,
                    key: b"k".to_vec()
                }
            )
            .expect_value(),
            None,
            "{name}: absent before write"
        );
        one(
            store.as_ref(),
            &mut s,
            KvRequest::Put {
                ns,
                key: b"k".to_vec(),
                value: b"v1".to_vec(),
            },
        );
        assert_eq!(
            one(
                store.as_ref(),
                &mut s,
                KvRequest::Get {
                    ns,
                    key: b"k".to_vec()
                }
            )
            .expect_value(),
            Some(b"v1".as_slice()),
            "{name}: session reads its own write"
        );
        one(
            store.as_ref(),
            &mut s,
            KvRequest::Put {
                ns,
                key: b"k".to_vec(),
                value: b"v2".to_vec(),
            },
        );
        assert_eq!(
            one(
                store.as_ref(),
                &mut s,
                KvRequest::Get {
                    ns,
                    key: b"k".to_vec()
                }
            )
            .expect_value(),
            Some(b"v2".as_slice()),
            "{name}: overwrite visible"
        );
        one(
            store.as_ref(),
            &mut s,
            KvRequest::Delete {
                ns,
                key: b"k".to_vec(),
            },
        );
        assert_eq!(
            one(
                store.as_ref(),
                &mut s,
                KvRequest::Get {
                    ns,
                    key: b"k".to_vec()
                }
            )
            .expect_value(),
            None,
            "{name}: delete visible"
        );
    }
}

#[test]
fn bulk_put_is_immediately_readable() {
    for (name, store) in backends() {
        let ns = store.namespace("bulk");
        for i in 0..20u8 {
            store.bulk_put(ns, vec![i], vec![i, i]);
        }
        store.rebalance();
        let mut s = Session::new();
        let r = one(store.as_ref(), &mut s, KvRequest::Get { ns, key: vec![7] });
        assert_eq!(r.expect_value(), Some([7u8, 7].as_slice()), "{name}");
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::CountRange {
                ns,
                start: vec![],
                end: None,
            },
        );
        assert_eq!(r.expect_count(), 20, "{name}");
    }
}

#[test]
fn range_semantics_forward_reverse_limit_bounds() {
    for (name, store) in backends() {
        let ns = store.namespace("r");
        // leading bytes span the whole space so Live shards and Sim
        // partitions are both exercised
        let mut s = Session::new();
        for i in 0..=255u8 {
            one(
                store.as_ref(),
                &mut s,
                KvRequest::Put {
                    ns,
                    key: vec![i, 0xAA],
                    value: vec![i],
                },
            );
        }
        store.rebalance();

        // [lo, hi) clipping, order, completeness
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::GetRange {
                ns,
                start: vec![10],
                end: Some(vec![200]),
                limit: None,
                reverse: false,
            },
        );
        let entries = r.expect_entries().to_vec();
        assert_eq!(entries.len(), 190, "{name}: [10,200) by leading byte");
        assert_eq!(entries[0].0, vec![10, 0xAA], "{name}: inclusive start");
        assert_eq!(
            entries.last().unwrap().0,
            vec![199, 0xAA],
            "{name}: exclusive end"
        );
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "{name}: ascending order"
        );

        // limit truncates, preserving prefix order
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::GetRange {
                ns,
                start: vec![10],
                end: Some(vec![200]),
                limit: Some(7),
                reverse: false,
            },
        );
        assert_eq!(r.expect_entries().to_vec(), entries[..7].to_vec(), "{name}");

        // reverse scans descend from the end bound
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::GetRange {
                ns,
                start: vec![10],
                end: Some(vec![200]),
                limit: Some(3),
                reverse: true,
            },
        );
        let rev = r.expect_entries().to_vec();
        assert_eq!(rev.len(), 3, "{name}");
        assert_eq!(rev[0].0, vec![199, 0xAA], "{name}: reverse starts at top");
        assert!(
            rev.windows(2).all(|w| w[0].0 > w[1].0),
            "{name}: descending"
        );

        // count agrees with the scan
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::CountRange {
                ns,
                start: vec![10],
                end: Some(vec![200]),
            },
        );
        assert_eq!(r.expect_count(), 190, "{name}");
    }
}

#[test]
fn test_and_set_conformance() {
    for (name, store) in backends() {
        let ns = store.namespace("tas");
        let mut s = Session::new();

        // expect-absent create
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::TestAndSet {
                ns,
                key: b"k".to_vec(),
                expect: None,
                value: Some(b"a".to_vec()),
            },
        );
        assert_eq!(
            r,
            KvResponse::TasResult {
                success: true,
                current: Some(b"a".to_vec())
            },
            "{name}"
        );

        // expect-absent against a present key fails, reporting the value
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::TestAndSet {
                ns,
                key: b"k".to_vec(),
                expect: None,
                value: Some(b"b".to_vec()),
            },
        );
        assert_eq!(
            r,
            KvResponse::TasResult {
                success: false,
                current: Some(b"a".to_vec())
            },
            "{name}"
        );

        // matching expectation swaps
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::TestAndSet {
                ns,
                key: b"k".to_vec(),
                expect: Some(b"a".to_vec()),
                value: Some(b"b".to_vec()),
            },
        );
        assert!(
            matches!(r, KvResponse::TasResult { success: true, .. }),
            "{name}"
        );

        // conditional delete
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::TestAndSet {
                ns,
                key: b"k".to_vec(),
                expect: Some(b"b".to_vec()),
                value: None,
            },
        );
        assert!(
            matches!(r, KvResponse::TasResult { success: true, .. }),
            "{name}"
        );
        let r = one(
            store.as_ref(),
            &mut s,
            KvRequest::Get {
                ns,
                key: b"k".to_vec(),
            },
        );
        assert_eq!(r.expect_value(), None, "{name}: conditional delete applied");
    }
}

#[test]
fn rounds_answer_positionally_and_advance_the_clock() {
    for (name, store) in backends() {
        let ns = store.namespace("mix");
        let mut s = Session::new();
        let t0 = s.begin();
        let responses = store.execute_round(
            &mut s,
            vec![
                KvRequest::Put {
                    ns,
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                KvRequest::Get {
                    ns,
                    key: b"missing".to_vec(),
                },
                KvRequest::CountRange {
                    ns,
                    start: vec![],
                    end: None,
                },
            ],
        );
        assert_eq!(responses.len(), 3, "{name}: one response per request");
        assert!(matches!(responses[0], KvResponse::Done), "{name}");
        assert!(matches!(responses[1], KvResponse::Value(None)), "{name}");
        assert!(matches!(responses[2], KvResponse::Count(_)), "{name}");
        assert_eq!(s.stats.rounds, 1, "{name}: one round accounted");
        assert_eq!(s.stats.logical_requests, 3, "{name}");
        assert!(s.stats.physical_requests >= 3, "{name}");
        assert!(s.now >= t0, "{name}: the clock never goes backwards");
    }
}

/// The paper's round-latency model, on the wall clock: a 10-request round
/// against a store serving each request in ~20 ms must complete in ~max
/// (one service time), not ~sum (ten service times).
#[test]
fn slow_store_round_completes_at_max_not_sum() {
    const DELAY_US: u64 = 20_000;
    let store = slow_store(DELAY_US, 10);
    let ns = store.namespace("slow");
    for i in 0..10u8 {
        store.bulk_put(ns, vec![i], vec![i]);
    }
    let round: Vec<KvRequest> = (0..10u8)
        .map(|i| KvRequest::Get { ns, key: vec![i] })
        .collect();
    let mut s = Session::new();
    let t0 = std::time::Instant::now();
    let responses = store.execute_round(&mut s, round);
    let elapsed = t0.elapsed();
    assert_eq!(responses.len(), 10);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(
            r.expect_value(),
            Some([i as u8].as_slice()),
            "responses stay positional under fan-out"
        );
    }
    // acceptance: ≤ 2× the slowest request's latency, nowhere near the sum
    assert!(
        elapsed <= std::time::Duration::from_micros(2 * DELAY_US),
        "10-request round took {elapsed:?}, want ≤ {:?}",
        std::time::Duration::from_micros(2 * DELAY_US)
    );
    // the session clock observed the same wall-clock completion
    assert!(
        s.now >= DELAY_US,
        "session clock advanced by ≥ one service time"
    );
}

/// Sequential baseline: with the pool disabled the same round accumulates
/// per-request latencies — the behavior the fan-out exists to remove.
#[test]
fn sequential_store_round_accumulates_latencies() {
    const DELAY_US: u64 = 5_000;
    let store = slow_store(DELAY_US, 0);
    let ns = store.namespace("slow-seq");
    let round: Vec<KvRequest> = (0..10u8)
        .map(|i| KvRequest::Get { ns, key: vec![i] })
        .collect();
    let mut s = Session::new();
    let t0 = std::time::Instant::now();
    store.execute_round(&mut s, round);
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= std::time::Duration::from_micros(9 * DELAY_US),
        "sequential round should be ~sum of latencies, took {elapsed:?}"
    );
}

/// Concurrent sessions share one pool and still get positional, correct
/// responses — rounds from different threads never interleave answers.
#[test]
fn concurrent_sessions_fan_out_without_cross_talk() {
    let store = std::sync::Arc::new(slow_store(0, 4));
    let ns = store.namespace("mt");
    for i in 0..=255u8 {
        store.bulk_put(ns, vec![i], vec![i]);
    }
    let handles: Vec<_> = (0..8u8)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                let mut s = Session::new();
                for _ in 0..50 {
                    let round: Vec<KvRequest> = (0..16u8)
                        .map(|i| KvRequest::Get {
                            ns,
                            key: vec![t.wrapping_mul(16).wrapping_add(i)],
                        })
                        .collect();
                    let responses = store.execute_round(&mut s, round);
                    for (i, r) in responses.iter().enumerate() {
                        let expect = t.wrapping_mul(16).wrapping_add(i as u8);
                        assert_eq!(r.expect_value(), Some([expect].as_slice()));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// The key successor — the exclusive-start continuation a pagination
/// cursor uses (`ScanAfter` resumes strictly after the last key shipped).
fn successor(key: &[u8]) -> Vec<u8> {
    let mut next = key.to_vec();
    next.push(0);
    next
}

/// Rebalancing must be invisible to queries: on a skewed load (≥ 90% of
/// keys under one leading byte), every backend returns bitwise-identical
/// results before and after `rebalance()`, and a pagination sequence that
/// straddles the rebalance shipping pages before *and* after sees exactly
/// the same rows as an uninterrupted scan.
#[test]
fn rebalance_preserves_results_and_cursor_pages_on_skewed_data() {
    for (name, store) in backends() {
        let ns = store.namespace("skew");
        let mut s = Session::new();
        for i in 0..500u16 {
            // 90% of keys under the 0x61 prefix, the rest spread out;
            // the big-endian counter suffix keeps every key unique
            let mut key = if i % 10 != 0 {
                vec![0x61, 0x61]
            } else {
                vec![(i % 251) as u8, 0xFF]
            };
            key.extend_from_slice(&i.to_be_bytes());
            store.bulk_put(ns, key, i.to_be_bytes().to_vec());
        }

        let queries: Vec<KvRequest> = vec![
            KvRequest::GetRange {
                ns,
                start: vec![],
                end: None,
                limit: None,
                reverse: false,
            },
            KvRequest::GetRange {
                ns,
                start: vec![0x61],
                end: Some(vec![0x62]),
                limit: None,
                reverse: false,
            },
            KvRequest::GetRange {
                ns,
                start: vec![0x20],
                end: None,
                limit: Some(17),
                reverse: true,
            },
            KvRequest::CountRange {
                ns,
                start: vec![0x61],
                end: Some(vec![0x62]),
            },
        ];
        let before: Vec<KvResponse> = store.execute_round(&mut s, queries.clone());

        // pagination started against the old layout...
        let page_one = one(
            store.as_ref(),
            &mut s,
            KvRequest::GetRange {
                ns,
                start: vec![],
                end: None,
                limit: Some(100),
                reverse: false,
            },
        )
        .expect_entries()
        .to_vec();

        store.rebalance();

        // ...resumes against the new one, with no gap and no duplicate
        let mut paged = page_one.clone();
        loop {
            let next = one(
                store.as_ref(),
                &mut s,
                KvRequest::GetRange {
                    ns,
                    start: successor(&paged.last().unwrap().0),
                    end: None,
                    limit: Some(100),
                    reverse: false,
                },
            )
            .expect_entries()
            .to_vec();
            if next.is_empty() {
                break;
            }
            paged.extend(next);
        }
        assert_eq!(
            paged,
            before[0].expect_entries().to_vec(),
            "{name}: pages straddling the rebalance equal the full scan"
        );

        let after = store.execute_round(&mut s, queries);
        assert_eq!(
            after, before,
            "{name}: results bitwise-identical across rebalance"
        );

        // backends that report balance must have evened the shards out
        let balance = store.balance();
        if let Some(b) = balance.iter().find(|b| b.name == "skew") {
            assert!(
                b.max_entry_share() <= 2.0 / b.shards as f64,
                "{name}: max shard share {:.3} of {} shards after rebalance",
                b.max_entry_share(),
                b.shards
            );
        }
    }
}

/// Physical-op accounting regression: an exclusive range end that falls
/// exactly on a learned split point must cost the same number of
/// partition/shard visits on both backends. (The live store used to visit
/// the end key's shard even though no key `< end` can live there,
/// inflating `physical_requests` relative to `SimCluster`.)
#[test]
fn boundary_aligned_range_costs_equal_physical_ops_on_sim_and_live() {
    let sim = SimCluster::new(ClusterConfig::instant(4));
    let live = LiveCluster::new(LiveConfig {
        shards_per_namespace: 4,
        ..Default::default()
    });
    let stores: [&dyn KvStore; 2] = [&sim, &live];
    for store in stores {
        let ns = store.namespace("edge");
        for i in 0..=255u8 {
            store.bulk_put(ns, vec![i], vec![i]);
        }
        // 256 uniform keys over 4 partitions/shards: both backends learn
        // the same quantile split points ([64], [128], [192])
        store.rebalance();
    }
    let mut per_store_phys = Vec::new();
    for store in stores {
        let ns = store.namespace("edge");
        let mut s = Session::new();
        let r = store.execute_round(
            &mut s,
            vec![
                KvRequest::GetRange {
                    ns,
                    start: vec![0],
                    end: Some(vec![128]), // exclusive end exactly on a split
                    limit: None,
                    reverse: false,
                },
                KvRequest::CountRange {
                    ns,
                    start: vec![64],
                    end: Some(vec![192]),
                },
            ],
        );
        assert_eq!(r[0].expect_entries().len(), 128);
        assert_eq!(r[1].expect_count(), 128);
        per_store_phys.push(s.stats.physical_requests);
    }
    assert_eq!(
        per_store_phys[0], per_store_phys[1],
        "Sim and Live agree on partition-visit accounting"
    );
    assert_eq!(
        per_store_phys[1], 4,
        "two visits per boundary-aligned two-shard range"
    );
}

#[test]
fn empty_rounds_are_free() {
    for (name, store) in backends() {
        let mut s = Session::new();
        let before = s.now;
        let responses = store.execute_round(&mut s, vec![]);
        assert!(responses.is_empty(), "{name}");
        assert_eq!(s.stats.rounds, 0, "{name}: empty round not accounted");
        assert_eq!(s.now, before, "{name}: no time consumed");
    }
}
