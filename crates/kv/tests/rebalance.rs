//! Rebalancing under fire: the `Arc`-swapped routing table must let
//! `LiveCluster::rebalance` re-split namespaces while concurrent sessions
//! keep reading and writing — zero lost keys, no panics, monotonically
//! growing scans. This is the live-path guarantee the conformance suite
//! checks quiescently.

use piql_kv::{KvRequest, KvResponse, KvStore, LiveCluster, LiveConfig, Session};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn skewed_key(i: u32) -> Vec<u8> {
    // ≥ 90% of keys under one leading byte (a hot username prefix)
    let mut key = if !i.is_multiple_of(10) {
        b"user/".to_vec()
    } else {
        vec![(i % 251) as u8, b'/']
    };
    key.extend_from_slice(&i.to_be_bytes());
    key
}

/// The acceptance criterion, end to end: a 90%-skewed namespace starts
/// with nearly everything on one shard and rebalances to an even spread,
/// with the full scan bitwise-identical before and after.
#[test]
fn skewed_namespace_rebalances_to_even_entry_shares() {
    let cluster = LiveCluster::new(LiveConfig {
        shards_per_namespace: 8,
        ..Default::default()
    });
    let ns = cluster.namespace("users");
    for i in 0..2_000u32 {
        cluster.bulk_put(ns, skewed_key(i), i.to_be_bytes().to_vec());
    }
    let full_scan = |s: &mut Session| {
        cluster
            .execute_round(
                s,
                vec![KvRequest::GetRange {
                    ns,
                    start: vec![],
                    end: None,
                    limit: None,
                    reverse: false,
                }],
            )
            .remove(0)
    };
    let mut s = Session::new();
    let before_scan = full_scan(&mut s);

    let before = &cluster.balance()[0];
    assert!(
        before.max_entry_share() >= 0.9,
        "static stripes leave the skew in place: {:?}",
        before.entries
    );

    cluster.rebalance();

    let after = &cluster.balance()[0];
    let threshold = (2.0 / after.shards as f64) * 1.5;
    assert!(
        after.max_entry_share() <= threshold,
        "max shard share {:.3} over {} shards exceeds {threshold:.3}: {:?}",
        after.max_entry_share(),
        after.shards,
        after.entries
    );
    assert_eq!(
        full_scan(&mut s),
        before_scan,
        "rebalance is invisible to queries"
    );
    assert_eq!(cluster.stats_snapshot().rebalances, 1);
}

/// Rebalance repeatedly while writer and reader sessions hammer the same
/// namespace. Writers must never lose a write to a retired shard layout;
/// readers must never observe a previously-committed key as missing (the
/// scan count can only grow).
#[test]
fn concurrent_sessions_survive_repeated_rebalances_without_lost_keys() {
    const WRITERS: u32 = 4;
    const READERS: u32 = 4;
    const BASE: u32 = 1_000;
    const REBALANCES: u32 = 25;

    let cluster = Arc::new(LiveCluster::new(LiveConfig {
        shards_per_namespace: 8,
        ..Default::default()
    }));
    let ns = cluster.namespace("stress");
    for i in 0..BASE {
        cluster.bulk_put(ns, skewed_key(i), i.to_be_bytes().to_vec());
    }
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cluster = cluster.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut s = Session::new();
                let mut written: Vec<Vec<u8>> = Vec::new();
                let mut seq = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    // unique per-writer key space, same hot prefix
                    let key = skewed_key(BASE + w * 1_000_000 + seq);
                    let responses = cluster.execute_round(
                        &mut s,
                        vec![KvRequest::Put {
                            ns,
                            key: key.clone(),
                            value: key.clone(),
                        }],
                    );
                    assert!(matches!(responses[0], KvResponse::Done));
                    written.push(key);
                    seq += 1;
                    // read-your-writes spot check across possible swaps
                    if seq.is_multiple_of(64) {
                        let probe = written[(seq as usize / 2) % written.len()].clone();
                        let r = cluster.execute_round(
                            &mut s,
                            vec![KvRequest::Get {
                                ns,
                                key: probe.clone(),
                            }],
                        );
                        assert_eq!(
                            r[0].expect_value(),
                            Some(probe.as_slice()),
                            "own write lost across a rebalance"
                        );
                    }
                }
                written
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cluster = cluster.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut s = Session::new();
                let mut floor = BASE as u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = cluster.execute_round(
                        &mut s,
                        vec![KvRequest::CountRange {
                            ns,
                            start: vec![],
                            end: None,
                        }],
                    );
                    let count = r[0].expect_count();
                    assert!(
                        count >= floor,
                        "scan shrank mid-rebalance: {count} < {floor}"
                    );
                    floor = count;
                    // the preloaded keys stay visible through every swap
                    let probe = skewed_key(floor as u32 % BASE);
                    let r = cluster.execute_round(&mut s, vec![KvRequest::Get { ns, key: probe }]);
                    assert!(
                        r[0].expect_value().is_some(),
                        "preloaded key missing mid-rebalance"
                    );
                }
            })
        })
        .collect();

    for _ in 0..REBALANCES {
        cluster.rebalance();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);

    let mut all_written: Vec<Vec<u8>> = Vec::new();
    for w in writers {
        all_written.extend(w.join().expect("writer panicked"));
    }
    for r in readers {
        r.join().expect("reader panicked");
    }

    // zero lost keys: every write ever acknowledged is readable, and the
    // final count is exactly base + writes
    let mut s = Session::new();
    for key in &all_written {
        let r = cluster.execute_round(
            &mut s,
            vec![KvRequest::Get {
                ns,
                key: key.clone(),
            }],
        );
        assert_eq!(
            r[0].expect_value(),
            Some(key.as_slice()),
            "write lost during rebalance"
        );
    }
    let r = cluster.execute_round(
        &mut s,
        vec![KvRequest::CountRange {
            ns,
            start: vec![],
            end: None,
        }],
    );
    assert_eq!(
        r[0].expect_count(),
        BASE as u64 + all_written.len() as u64,
        "final count = preload + acknowledged writes"
    );
    assert_eq!(cluster.stats_snapshot().rebalances, u64::from(REBALANCES));
}
