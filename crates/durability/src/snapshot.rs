//! Snapshot files: one checkpoint of the whole durable state.
//!
//! Layout: an 8-byte magic (`PIQLSNP1`), a body encoded with the same
//! primitives as WAL records, and a trailing CRC-32 of the body. Written
//! to a temp file, fsynced, then renamed into place — a crash mid-write
//! leaves the previous generation's snapshot untouched and the manifest
//! still pointing at it.

use crate::record::{crc32, SparseHistogram};
use piql_kv::KvEntry;
use piql_predict::{ModelKey, OpKind};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PIQLSNP1";

/// The full durable state at a checkpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotState {
    /// Namespaces in id order: name and every entry.
    pub namespaces: Vec<(String, Vec<KvEntry>)>,
    /// DDL statements executed through the durable stack, in order.
    pub ddl: Vec<String>,
    /// Registered statements: `(name, sql)`.
    pub statements: Vec<(String, String)>,
    /// Model checkpoint, or `None` when no model store is wired in
    /// (recovery then keeps whatever seed the embedder provides).
    pub models: Option<ModelCheckpoint>,
}

/// The model-store section of a snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelCheckpoint {
    /// Rotations folded into these intervals over the store's durable
    /// lifetime; replay skips `ModelInterval` WAL records with
    /// `seq <=` this.
    pub seq: u64,
    /// Interval maps, oldest first, sparse histograms per grid point.
    pub intervals: Vec<Vec<SparseHistogram>>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn op_tag(op: OpKind) -> u8 {
    match op {
        OpKind::IndexScan => 0,
        OpKind::IndexFKJoin => 1,
        OpKind::SortedIndexJoin => 2,
    }
}

fn short_body(_: std::array::TryFromSliceError) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        "snapshot body shorter than its fields",
    )
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot body shorter than its fields",
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let bytes = self.take(4)?.try_into().map_err(short_body)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let bytes = self.take(8)?.try_into().map_err(short_body)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "snapshot string not UTF-8"))
    }
}

fn op_from_tag(t: u8) -> io::Result<OpKind> {
    match t {
        0 => Ok(OpKind::IndexScan),
        1 => Ok(OpKind::IndexFKJoin),
        2 => Ok(OpKind::SortedIndexJoin),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot op tag out of range",
        )),
    }
}

fn encode_body(state: &SnapshotState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, state.namespaces.len() as u32);
    for (name, entries) in &state.namespaces {
        put_bytes(&mut out, name.as_bytes());
        put_u64(&mut out, entries.len() as u64);
        for (k, v) in entries {
            put_bytes(&mut out, k);
            put_bytes(&mut out, v);
        }
    }
    put_u32(&mut out, state.ddl.len() as u32);
    for sql in &state.ddl {
        put_bytes(&mut out, sql.as_bytes());
    }
    put_u32(&mut out, state.statements.len() as u32);
    for (name, sql) in &state.statements {
        put_bytes(&mut out, name.as_bytes());
        put_bytes(&mut out, sql.as_bytes());
    }
    match &state.models {
        None => out.push(0),
        Some(checkpoint) => {
            out.push(1);
            put_u64(&mut out, checkpoint.seq);
            put_u32(&mut out, checkpoint.intervals.len() as u32);
            for interval in &checkpoint.intervals {
                put_u32(&mut out, interval.len() as u32);
                for (key, bins) in interval {
                    out.push(op_tag(key.op));
                    put_u32(&mut out, key.alpha_c);
                    put_u32(&mut out, key.alpha_j);
                    put_u32(&mut out, key.beta);
                    put_u32(&mut out, bins.len() as u32);
                    for (bin, count) in bins {
                        put_u32(&mut out, *bin);
                        put_u64(&mut out, *count);
                    }
                }
            }
        }
    }
    out
}

fn decode_body(body: &[u8]) -> io::Result<SnapshotState> {
    let mut c = Cursor { buf: body, at: 0 };
    let n_ns = c.u32()? as usize;
    let mut namespaces = Vec::with_capacity(n_ns.min(1 << 16));
    for _ in 0..n_ns {
        let name = c.string()?;
        let n = c.u64()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let k = c.bytes()?;
            let v = c.bytes()?;
            entries.push((k, v));
        }
        namespaces.push((name, entries));
    }
    let n_ddl = c.u32()? as usize;
    let mut ddl = Vec::with_capacity(n_ddl.min(1 << 16));
    for _ in 0..n_ddl {
        ddl.push(c.string()?);
    }
    let n_stmt = c.u32()? as usize;
    let mut statements = Vec::with_capacity(n_stmt.min(1 << 16));
    for _ in 0..n_stmt {
        let name = c.string()?;
        let sql = c.string()?;
        statements.push((name, sql));
    }
    let models = match c.u8()? {
        0 => None,
        _ => {
            let seq = c.u64()?;
            let n_intervals = c.u32()? as usize;
            let mut intervals = Vec::with_capacity(n_intervals.min(1 << 10));
            for _ in 0..n_intervals {
                let n_keys = c.u32()? as usize;
                let mut interval: Vec<SparseHistogram> = Vec::with_capacity(n_keys.min(1 << 16));
                for _ in 0..n_keys {
                    let op = op_from_tag(c.u8()?)?;
                    let key = ModelKey {
                        op,
                        alpha_c: c.u32()?,
                        alpha_j: c.u32()?,
                        beta: c.u32()?,
                    };
                    let n_bins = c.u32()? as usize;
                    let mut bins = Vec::with_capacity(n_bins.min(1 << 13));
                    for _ in 0..n_bins {
                        bins.push((c.u32()?, c.u64()?));
                    }
                    interval.push((key, bins));
                }
                intervals.push(interval);
            }
            Some(ModelCheckpoint { seq, intervals })
        }
    };
    if c.at != body.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot body has trailing bytes",
        ));
    }
    Ok(SnapshotState {
        namespaces,
        ddl,
        statements,
        models,
    })
}

/// Write `state` to `path` atomically (temp + fsync + rename + dir sync).
/// Returns the file size in bytes.
pub fn write_snapshot(path: &Path, state: &SnapshotState) -> io::Result<u64> {
    let body = encode_body(state);
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&body)?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        File::open(dir)?.sync_all()?;
    }
    Ok((MAGIC.len() + body.len() + 4) as u64)
}

/// Read and verify a snapshot written by [`write_snapshot`].
pub fn read_snapshot(path: &Path) -> io::Result<SnapshotState> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    if data.len() < MAGIC.len() + 4 || &data[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a piql snapshot file",
        ));
    }
    let body = &data[MAGIC.len()..data.len() - 4];
    let stored = data[data.len() - 4..]
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(short_body)?;
    if crc32(body) != stored {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot checksum mismatch",
        ));
    }
    decode_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotState {
        SnapshotState {
            namespaces: vec![
                ("t:users".into(), vec![(b"k1".to_vec(), b"v1".to_vec())]),
                ("i:users:name".into(), vec![]),
            ],
            ddl: vec!["CREATE TABLE users (id INT PRIMARY KEY)".into()],
            statements: vec![("q".into(), "SELECT * FROM users WHERE id = <i>".into())],
            models: Some(ModelCheckpoint {
                seq: 7,
                intervals: vec![vec![(
                    ModelKey {
                        op: OpKind::IndexFKJoin,
                        alpha_c: 25,
                        alpha_j: 1,
                        beta: 160,
                    },
                    vec![(2, 10), (40, 2)],
                )]],
            }),
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let dir = std::env::temp_dir().join(format!("piql-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-1.snap");
        let state = sample();
        let bytes = write_snapshot(&path, &state).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_snapshot(&path).unwrap(), state);
        // no temp file left behind
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_is_refused() {
        let dir = std::env::temp_dir().join(format!("piql-snapbad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-1.snap");
        write_snapshot(&path, &sample()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
