//! The WAL record vocabulary and its wire encoding.
//!
//! Every record is framed as `[len: u32 LE][crc: u32 LE][payload]` where
//! `len` is the payload length and `crc` is CRC-32 (IEEE) of the payload.
//! The payload's first byte is the record tag; the rest is the record
//! body in fixed little-endian encoding with `u32`-length-prefixed byte
//! strings. Hand-rolled (no serde in the tree) and deliberately boring:
//! the reader must be able to decide, for any byte prefix of a log file,
//! exactly where the last intact record ends.

use piql_predict::{LatencyHistogram, ModelKey, OpKind};
use std::collections::BTreeMap;
use std::fmt;

/// One sparse histogram: a model grid point plus its nonzero 1 ms bins.
pub type SparseHistogram = (ModelKey, Vec<(u32, u64)>);

/// Everything the durable state machine can be told. KV records replay
/// into `LiveCluster`; the rest rebuild the serving layer (catalog, the
/// statement registry, the live-trained model intervals).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Namespace `name` exists and was assigned id `ns`.
    NsCreate { ns: u32, name: String },
    /// `key` in namespace `ns` maps to `value`.
    Put {
        ns: u32,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// `key` in namespace `ns` is absent.
    Delete { ns: u32, key: Vec<u8> },
    /// A DDL statement executed through the durable stack.
    Ddl { sql: String },
    /// A prepared statement was installed (or re-installed) as `name`.
    StatementUpsert { name: String, sql: String },
    /// The prepared statement `name` was removed.
    StatementDrop { name: String },
    /// One rotated model interval: the histograms drained from the live
    /// accumulator. `seq` counts rotations over the store's durable
    /// lifetime (across restarts); a snapshot checkpoint records the seq
    /// it includes, so replay skips intervals already folded into it even
    /// when a rotation raced the snapshot export.
    ModelInterval {
        seq: u64,
        interval: Vec<SparseHistogram>,
    },
}

const TAG_NS_CREATE: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_DDL: u8 = 4;
const TAG_STMT_UPSERT: u8 = 5;
const TAG_STMT_DROP: u8 = 6;
const TAG_MODEL_INTERVAL: u8 = 7;

/// Why a payload failed to decode (distinct from a frame-level CRC or
/// truncation failure, which the WAL reader detects before decoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    Truncated,
    UnknownTag(u8),
    BadString,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "payload shorter than its fields"),
            RecordError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            RecordError::BadString => write!(f, "string field is not UTF-8"),
        }
    }
}

// -- primitive encoders ---------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        if self.buf.len() - self.at < n {
            return Err(RecordError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| RecordError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| RecordError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, RecordError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, RecordError> {
        String::from_utf8(self.bytes()?).map_err(|_| RecordError::BadString)
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

fn op_tag(op: OpKind) -> u8 {
    match op {
        OpKind::IndexScan => 0,
        OpKind::IndexFKJoin => 1,
        OpKind::SortedIndexJoin => 2,
    }
}

fn op_from_tag(t: u8) -> Result<OpKind, RecordError> {
    match t {
        0 => Ok(OpKind::IndexScan),
        1 => Ok(OpKind::IndexFKJoin),
        2 => Ok(OpKind::SortedIndexJoin),
        other => Err(RecordError::UnknownTag(other)),
    }
}

impl WalRecord {
    /// Encode the payload (tag byte + body) — framing is the WAL's job.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::NsCreate { ns, name } => {
                out.push(TAG_NS_CREATE);
                put_u32(&mut out, *ns);
                put_bytes(&mut out, name.as_bytes());
            }
            WalRecord::Put { ns, key, value } => {
                out.push(TAG_PUT);
                put_u32(&mut out, *ns);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            WalRecord::Delete { ns, key } => {
                out.push(TAG_DELETE);
                put_u32(&mut out, *ns);
                put_bytes(&mut out, key);
            }
            WalRecord::Ddl { sql } => {
                out.push(TAG_DDL);
                put_bytes(&mut out, sql.as_bytes());
            }
            WalRecord::StatementUpsert { name, sql } => {
                out.push(TAG_STMT_UPSERT);
                put_bytes(&mut out, name.as_bytes());
                put_bytes(&mut out, sql.as_bytes());
            }
            WalRecord::StatementDrop { name } => {
                out.push(TAG_STMT_DROP);
                put_bytes(&mut out, name.as_bytes());
            }
            WalRecord::ModelInterval { seq, interval } => {
                out.push(TAG_MODEL_INTERVAL);
                put_u64(&mut out, *seq);
                put_u32(&mut out, interval.len() as u32);
                for (key, bins) in interval {
                    out.push(op_tag(key.op));
                    put_u32(&mut out, key.alpha_c);
                    put_u32(&mut out, key.alpha_j);
                    put_u32(&mut out, key.beta);
                    put_u32(&mut out, bins.len() as u32);
                    for (bin, count) in bins {
                        put_u32(&mut out, *bin);
                        put_u64(&mut out, *count);
                    }
                }
            }
        }
        out
    }

    /// Decode a payload produced by [`WalRecord::encode`]. Trailing bytes
    /// are an error: a frame holds exactly one record.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, RecordError> {
        let mut c = Cursor {
            buf: payload,
            at: 0,
        };
        let rec = match c.u8()? {
            TAG_NS_CREATE => WalRecord::NsCreate {
                ns: c.u32()?,
                name: c.string()?,
            },
            TAG_PUT => WalRecord::Put {
                ns: c.u32()?,
                key: c.bytes()?,
                value: c.bytes()?,
            },
            TAG_DELETE => WalRecord::Delete {
                ns: c.u32()?,
                key: c.bytes()?,
            },
            TAG_DDL => WalRecord::Ddl { sql: c.string()? },
            TAG_STMT_UPSERT => WalRecord::StatementUpsert {
                name: c.string()?,
                sql: c.string()?,
            },
            TAG_STMT_DROP => WalRecord::StatementDrop { name: c.string()? },
            TAG_MODEL_INTERVAL => {
                let seq = c.u64()?;
                let n = c.u32()? as usize;
                let mut interval = Vec::with_capacity(n.min(4_096));
                for _ in 0..n {
                    let op = op_from_tag(c.u8()?)?;
                    let key = ModelKey {
                        op,
                        alpha_c: c.u32()?,
                        alpha_j: c.u32()?,
                        beta: c.u32()?,
                    };
                    let n_bins = c.u32()? as usize;
                    let mut bins = Vec::with_capacity(n_bins.min(8_192));
                    for _ in 0..n_bins {
                        bins.push((c.u32()?, c.u64()?));
                    }
                    interval.push((key, bins));
                }
                WalRecord::ModelInterval { seq, interval }
            }
            other => return Err(RecordError::UnknownTag(other)),
        };
        if !c.done() {
            return Err(RecordError::Truncated);
        }
        Ok(rec)
    }
}

/// Drained-interval map → sparse wire form (sorted: `BTreeMap` order).
pub fn encode_interval(map: &BTreeMap<ModelKey, LatencyHistogram>) -> Vec<SparseHistogram> {
    map.iter().map(|(k, h)| (*k, h.nonzero_bins())).collect()
}

/// Sparse wire form → interval map, for [`piql_predict::ModelStore`]
/// rotation or reconstruction.
pub fn decode_interval(enc: &[SparseHistogram]) -> BTreeMap<ModelKey, LatencyHistogram> {
    enc.iter()
        .map(|(k, bins)| (*k, LatencyHistogram::from_sparse(bins.iter().copied())))
        .collect()
}

// -- CRC-32 (IEEE 802.3), table-driven ------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data` — the frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip() {
        let records = vec![
            WalRecord::NsCreate {
                ns: 3,
                name: "t:users".into(),
            },
            WalRecord::Put {
                ns: 3,
                key: vec![0, 1, 255],
                value: vec![],
            },
            WalRecord::Delete {
                ns: 0,
                key: b"k".to_vec(),
            },
            WalRecord::Ddl {
                sql: "CREATE TABLE t (id INT PRIMARY KEY)".into(),
            },
            WalRecord::StatementUpsert {
                name: "q".into(),
                sql: "SELECT * FROM t WHERE id = <i>".into(),
            },
            WalRecord::StatementDrop { name: "q".into() },
            WalRecord::ModelInterval {
                seq: 42,
                interval: vec![(
                    ModelKey {
                        op: OpKind::SortedIndexJoin,
                        alpha_c: 10,
                        alpha_j: 5,
                        beta: 160,
                    },
                    vec![(0, 3), (17, 1), (4_000, 9)],
                )],
            },
        ];
        for rec in records {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(WalRecord::decode(&[]), Err(RecordError::Truncated));
        assert_eq!(WalRecord::decode(&[99]), Err(RecordError::UnknownTag(99)));
        // a Put missing its value length
        let mut p = WalRecord::Put {
            ns: 1,
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        }
        .encode();
        p.truncate(p.len() - 3);
        assert_eq!(WalRecord::decode(&p), Err(RecordError::Truncated));
        // trailing junk after a complete record
        let mut d = WalRecord::StatementDrop { name: "x".into() }.encode();
        d.push(0);
        assert_eq!(WalRecord::decode(&d), Err(RecordError::Truncated));
    }

    #[test]
    fn interval_roundtrips_through_sparse_form() {
        use piql_kv::MILLIS;
        let mut map = BTreeMap::new();
        let mut h = LatencyHistogram::standard();
        for ms in [1u64, 1, 5, 90] {
            h.record(ms * MILLIS);
        }
        map.insert(
            ModelKey {
                op: OpKind::IndexScan,
                alpha_c: 10,
                alpha_j: 1,
                beta: 40,
            },
            h,
        );
        let back = decode_interval(&encode_interval(&map));
        assert_eq!(back, map);
    }
}
