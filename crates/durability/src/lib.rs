//! Durability for the PIQL serving stack: write-ahead logging with group
//! commit, periodic snapshots with log compaction, and full-state crash
//! recovery.
//!
//! The paper's scale-independence argument assumes the serving tier can
//! restart without losing the state that makes its SLO predictions
//! meaningful: the data itself, the prepared statements that passed
//! admission control, and the latency models trained from live traffic.
//! This crate persists all three:
//!
//! * [`wal`] — a length-prefixed, CRC-checksummed append log. Under
//!   [`SyncPolicy::GroupCommit`] a dedicated committer thread coalesces
//!   concurrent appenders into shared fsyncs; writers block in
//!   [`Wal::commit`] until their records are on stable storage, so an
//!   acknowledged write is a durable write.
//! * [`snapshot`] — atomic whole-state checkpoints (KV namespaces, DDL,
//!   registered statements, model intervals) that let the log be
//!   truncated behind them.
//! * [`coord`] — the [`Durability`] coordinator tying both together:
//!   generation management via a `MANIFEST` file, recovery that replays
//!   snapshot + WAL tail, and journaling hooks for DDL, statement
//!   registration, and model rotations.
//!
//! The crate is storage-only: it knows how to read and write state, not
//! how to interpret it. `piql-server` wires it to a live stack (see
//! `open_durable` there) and re-validates recovered statements against
//! the recovered models on boot.

pub mod coord;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use coord::{
    Durability, DurabilityConfig, DurabilityHealth, KvOp, RecoveredState, RecoveryReport,
    SnapshotInputs, SnapshotSummary,
};
pub use record::{crc32, RecordError, WalRecord};
pub use snapshot::{read_snapshot, write_snapshot, ModelCheckpoint, SnapshotState};
pub use wal::{read_wal, SyncPolicy, TailState, Wal, WalContents, WalCounters};
