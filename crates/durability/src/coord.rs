//! The durability coordinator: generations, recovery, and checkpoints.
//!
//! On-disk layout of a data directory:
//!
//! ```text
//! MANIFEST            current generation g (temp+rename, so atomic)
//! snapshot-<g>.snap   checkpoint of the whole state (absent for g = 0)
//! wal-<g>.log         records appended since that checkpoint
//! wal-<g+k>.log       later segments, if a snapshot never committed
//! ```
//!
//! A snapshot rotates the WAL to generation `g+1` *first*, then exports
//! state, writes `snapshot-<g+1>.snap`, and commits by rewriting
//! `MANIFEST`; only then are the old generation's files deleted. A crash
//! anywhere in that sequence is safe: until the manifest commits, the
//! previous generation's snapshot + *all* later WAL segments replay to
//! the current state (segments after the manifest generation hold exactly
//! the records appended after their rotations — [`Durability::open`]
//! replays every consecutive segment it finds).
//!
//! Recovery is split in two so the embedder can re-run its boot-time
//! schema/seed code first: [`Durability::open`] only *reads* (and returns
//! the [`RecoveredState`]); [`RecoveredState::apply_kv`] then loads the
//! store. Namespace ids are verified during replay — records carry the id
//! the original process assigned, and a bootstrap that creates namespaces
//! in a different order is reported as an error instead of silently
//! corrupting keys.

use crate::record::{decode_interval, encode_interval, SparseHistogram, WalRecord};
use crate::snapshot::{read_snapshot, write_snapshot, ModelCheckpoint, SnapshotState};
use crate::wal::{read_wal, SyncPolicy, Wal, WalCounters};
use piql_analysis::ordered::Mutex;
use piql_analysis::rank;
use piql_kv::{KvEntry, KvStore, LiveCluster, NsId, WalSink};
use piql_predict::{LatencyHistogram, ModelKey, ModelStore};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime};

/// Configuration for [`Durability::open`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The data directory (created if missing).
    pub dir: PathBuf,
    pub policy: SyncPolicy,
    /// Advisory auto-snapshot threshold: when the current WAL segment
    /// exceeds this many bytes, [`Durability::wants_snapshot`] turns true
    /// (a daemon or operator decides when to act on it).
    pub snapshot_wal_bytes: u64,
}

impl DurabilityConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            policy: SyncPolicy::GroupCommit,
            snapshot_wal_bytes: 64 << 20,
        }
    }
}

/// What recovery found, reported through `stats` for observability.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Generation the manifest pointed at.
    pub generation: u64,
    pub snapshot_loaded: bool,
    /// KV entries loaded from the snapshot.
    pub snapshot_entries: u64,
    /// WAL records replayed from segments after the snapshot.
    pub wal_records: u64,
    /// Final segment's tail condition ("clean" or a description of the
    /// torn tail that was truncated away).
    pub wal_tail: String,
    /// Bytes dropped when truncating a torn tail.
    pub truncated_bytes: u64,
    /// Prepared statements recovered (before re-admission).
    pub statements: usize,
    /// DDL statements recovered.
    pub ddl: usize,
    /// Model rotations folded into the recovered models.
    pub model_rotations: u64,
    pub duration_ms: f64,
}

/// Result of one [`Durability::snapshot_with`] checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotSummary {
    /// The generation this checkpoint created.
    pub generation: u64,
    /// KV entries written.
    pub entries: u64,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// WAL bytes made deletable by this checkpoint.
    pub compacted_wal_bytes: u64,
    pub duration_ms: f64,
}

/// Durability health for the `stats` verb.
#[derive(Debug, Clone)]
pub struct DurabilityHealth {
    pub generation: u64,
    pub policy: &'static str,
    /// True once the WAL has hit an I/O error (or was abandoned): writes
    /// still apply in memory but are no longer durable.
    pub dead: bool,
    /// Bytes in the current WAL segment (records since last snapshot).
    pub wal_bytes: u64,
    /// Records appended since the last snapshot.
    pub wal_records: u64,
    pub commits: u64,
    pub fsyncs: u64,
    /// Milliseconds since the last snapshot (file mtime across restarts);
    /// `None` before the first checkpoint.
    pub last_snapshot_age_ms: Option<u64>,
    pub recovery: RecoveryReport,
}

/// A KV effect replayed from the log, in append order.
#[derive(Debug, Clone, PartialEq)]
pub enum KvOp {
    NsCreate {
        ns: u32,
        name: String,
    },
    Put {
        ns: u32,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        ns: u32,
        key: Vec<u8>,
    },
}

/// Everything [`Durability::open`] read from disk, ready to be applied.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Snapshot namespaces in original id order (empty without snapshot).
    pub snapshot_namespaces: Vec<(String, Vec<KvEntry>)>,
    /// KV records from WAL segments after the snapshot, in order.
    pub kv_tail: Vec<KvOp>,
    /// DDL in execution order (snapshot section + tail records).
    pub ddl: Vec<String>,
    /// Final registered-statement map (upserts and drops resolved).
    pub statements: BTreeMap<String, String>,
    /// Model checkpoint intervals from the snapshot, if any.
    snapshot_models: Option<Vec<Vec<SparseHistogram>>>,
    /// Rotations to fold on top (seq > checkpoint seq), in order.
    model_rotations: Vec<Vec<SparseHistogram>>,
    pub report: RecoveryReport,
}

impl RecoveredState {
    /// Load the recovered KV state into `cluster`. Call *after* the
    /// embedder's bootstrap (which must create namespaces in the same
    /// order as the original boot — verified via recorded ids). Snapshot
    /// namespaces are cleared before loading so boot-time seed rows that
    /// were deleted pre-snapshot stay deleted.
    pub fn apply_kv(&self, cluster: &LiveCluster) -> io::Result<u64> {
        let mut applied = 0u64;
        let mut known = 0u32;
        for (idx, (name, entries)) in self.snapshot_namespaces.iter().enumerate() {
            let id = cluster.namespace(name);
            if id.0 as usize != idx {
                return Err(ns_mismatch(name, idx as u32, id.0));
            }
            cluster.reset_namespace(id);
            for (k, v) in entries {
                cluster.bulk_put(id, k.clone(), v.clone());
                applied += 1;
            }
            known = known.max(id.0 + 1);
        }
        for op in &self.kv_tail {
            match op {
                KvOp::NsCreate { ns, name } => {
                    let id = cluster.namespace(name);
                    if id.0 != *ns {
                        return Err(ns_mismatch(name, *ns, id.0));
                    }
                    known = known.max(id.0 + 1);
                }
                KvOp::Put { ns, key, value } => {
                    if *ns >= known {
                        return Err(unknown_ns(*ns));
                    }
                    cluster.bulk_put(NsId(*ns), key.clone(), value.clone());
                    applied += 1;
                }
                KvOp::Delete { ns, key } => {
                    if *ns >= known {
                        return Err(unknown_ns(*ns));
                    }
                    cluster.bulk_delete(NsId(*ns), key);
                    applied += 1;
                }
            }
        }
        Ok(applied)
    }

    /// The recovered model store: the snapshot checkpoint (or `seed` when
    /// there is none) with every logged rotation folded on top — the same
    /// fold sequence the original process performed.
    pub fn models(&self, seed: ModelStore) -> ModelStore {
        let mut store = match &self.snapshot_models {
            Some(intervals) => {
                ModelStore::from_intervals(intervals.iter().map(|i| decode_interval(i)).collect())
            }
            None => seed,
        };
        for rotation in &self.model_rotations {
            store = store.rotated(decode_interval(rotation));
        }
        store
    }
}

fn ns_mismatch(name: &str, recorded: u32, actual: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "namespace '{name}' recovered with id {actual} but the log recorded id {recorded}; \
             the bootstrap sequence changed between runs"
        ),
    )
}

fn unknown_ns(ns: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("log references namespace id {ns} that was never created"),
    )
}

/// What the snapshot exporter hands to [`Durability::snapshot_with`].
pub struct SnapshotInputs {
    /// `LiveCluster::export_namespaces` output.
    pub namespaces: Vec<(String, Vec<KvEntry>)>,
    /// `(rotations this process, interval maps)` from
    /// `SharedModelStore::snapshot_with_rotations`, or `None` when no
    /// model store is wired in.
    pub models: Option<(u64, Vec<BTreeMap<ModelKey, LatencyHistogram>>)>,
}

/// The durability coordinator: owns the WAL, the generation counter, and
/// mirrors of the non-KV durable state (DDL, statements) so a checkpoint
/// can be written without asking the serving layer for them.
pub struct Durability {
    config: DurabilityConfig,
    wal: Arc<Wal>,
    /// Current WAL segment generation (>= manifest generation).
    wal_gen: AtomicU64,
    /// Generation the manifest points at.
    manifest_gen: AtomicU64,
    /// Serializes checkpoints.
    snapshot_lock: Mutex<()>,
    ddl: Mutex<Vec<String>>,
    statements: Mutex<BTreeMap<String, String>>,
    /// Model rotations journaled over the store's durable lifetime.
    model_seq: AtomicU64,
    /// Rotations that predate this process (recovered); process-local
    /// rotation counts add onto this base.
    model_seq_base: u64,
    snapshot_time: Mutex<Option<SystemTime>>,
    report: RecoveryReport,
}

fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen}.log"))
}

fn snap_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snapshot-{gen}.snap"))
}

fn read_manifest(dir: &Path) -> io::Result<u64> {
    match std::fs::read_to_string(dir.join("MANIFEST")) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unreadable MANIFEST")),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(e),
    }
}

fn write_manifest(dir: &Path, gen: u64) -> io::Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    std::fs::write(&tmp, format!("{gen}\n"))?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, dir.join("MANIFEST"))?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Delete files a committed manifest makes obsolete: WAL segments and
/// snapshots from generations before `gen`, and snapshots from
/// generations after it (written but never committed — their records
/// live on in the replayable WAL segments). Best-effort.
fn cleanup(dir: &Path, gen: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if let Some(g) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            g < gen
        } else if let Some(g) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            g != gen
        } else {
            name.ends_with(".tmp")
        };
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

impl Durability {
    /// Open (or create) a data directory: load the manifest generation's
    /// snapshot, replay every consecutive WAL segment from there,
    /// truncate a torn tail, and resume appending. Returns the recovered
    /// state for the embedder to apply.
    pub fn open(config: DurabilityConfig) -> io::Result<(RecoveredState, Arc<Durability>)> {
        let t0 = Instant::now();
        std::fs::create_dir_all(&config.dir)?;
        let manifest_gen = read_manifest(&config.dir)?;
        cleanup(&config.dir, manifest_gen);

        let mut recovered = RecoveredState::default();
        let mut snapshot_time = None;
        let mut model_seq: u64 = 0;
        if manifest_gen > 0 {
            let path = snap_path(&config.dir, manifest_gen);
            snapshot_time = std::fs::metadata(&path).and_then(|m| m.modified()).ok();
            let snap = read_snapshot(&path)?;
            recovered.report.snapshot_loaded = true;
            recovered.report.snapshot_entries =
                snap.namespaces.iter().map(|(_, e)| e.len() as u64).sum();
            recovered.snapshot_namespaces = snap.namespaces;
            recovered.ddl = snap.ddl;
            recovered.statements = snap.statements.into_iter().collect();
            if let Some(checkpoint) = snap.models {
                model_seq = checkpoint.seq;
                recovered.snapshot_models = Some(checkpoint.intervals);
            }
        }

        // replay every consecutive segment; only the last may be torn
        let mut gen = manifest_gen;
        let (tail, valid_len, truncated, last_records) = loop {
            let path = wal_path(&config.dir, gen);
            let contents = read_wal(&path)?;
            let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let next_exists = wal_path(&config.dir, gen + 1).exists();
            if !contents.tail.is_clean() && next_exists {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "non-final WAL segment {gen} is corrupt ({}); only the last segment \
                         may have a torn tail",
                        contents.tail
                    ),
                ));
            }
            recovered.report.wal_records += contents.records.len() as u64;
            let segment_records = contents.records.len() as u64;
            for rec in contents.records {
                match rec {
                    WalRecord::NsCreate { ns, name } => {
                        recovered.kv_tail.push(KvOp::NsCreate { ns, name })
                    }
                    WalRecord::Put { ns, key, value } => {
                        recovered.kv_tail.push(KvOp::Put { ns, key, value })
                    }
                    WalRecord::Delete { ns, key } => {
                        recovered.kv_tail.push(KvOp::Delete { ns, key })
                    }
                    WalRecord::Ddl { sql } => {
                        // logs written before deduplication may carry
                        // repeats; DDL is append-only, so replaying the
                        // first occurrence re-derives the same state
                        if !recovered.ddl.contains(&sql) {
                            recovered.ddl.push(sql);
                        }
                    }
                    WalRecord::StatementUpsert { name, sql } => {
                        recovered.statements.insert(name, sql);
                    }
                    WalRecord::StatementDrop { name } => {
                        recovered.statements.remove(&name);
                    }
                    WalRecord::ModelInterval { seq, interval } => {
                        if seq > model_seq {
                            recovered.model_rotations.push(interval);
                            model_seq = seq;
                        }
                    }
                }
            }
            if !next_exists {
                break (
                    contents.tail,
                    contents.valid_len,
                    file_len.saturating_sub(contents.valid_len),
                    segment_records,
                );
            }
            gen += 1;
        };

        let wal = Wal::open(
            &wal_path(&config.dir, gen),
            valid_len,
            last_records,
            config.policy,
        )?;
        recovered.report.generation = manifest_gen;
        recovered.report.wal_tail = tail.to_string();
        recovered.report.truncated_bytes = truncated;
        recovered.report.statements = recovered.statements.len();
        recovered.report.ddl = recovered.ddl.len();
        recovered.report.model_rotations = model_seq;
        recovered.report.duration_ms = t0.elapsed().as_secs_f64() * 1e3;

        let durability = Arc::new(Durability {
            wal,
            wal_gen: AtomicU64::new(gen),
            manifest_gen: AtomicU64::new(manifest_gen),
            snapshot_lock: Mutex::new(rank::DUR_SNAPSHOT, "dur.snapshot", ()),
            ddl: Mutex::new(rank::DUR_MIRROR, "dur.ddl-mirror", recovered.ddl.clone()),
            statements: Mutex::new(
                rank::DUR_MIRROR,
                "dur.statements-mirror",
                recovered.statements.clone(),
            ),
            model_seq: AtomicU64::new(model_seq),
            model_seq_base: model_seq,
            snapshot_time: Mutex::new(rank::DUR_SNAPSHOT_TIME, "dur.snapshot-time", snapshot_time),
            report: recovered.report.clone(),
            config,
        });
        Ok((recovered, durability))
    }

    /// Journal a DDL statement (call after it executed successfully).
    ///
    /// The mirror is deduplicated: DDL is append-only (`CREATE TABLE` /
    /// `CREATE INDEX`, no drops), so re-executing a statement whose exact
    /// text is already journaled re-derives the same catalog state on
    /// replay — journaling it again would only grow every future snapshot
    /// and recovery. This bounds the DDL section by the catalog size
    /// instead of the server's lifetime; it must be revisited if DDL ever
    /// grows non-idempotent forms. The append happens under the mirror
    /// lock so journal order always matches mirror order.
    pub fn log_ddl(&self, sql: &str) {
        {
            let mut ddl = self.ddl.lock();
            if ddl.iter().any(|s| s == sql) {
                return;
            }
            ddl.push(sql.to_string());
            self.wal.append(&WalRecord::Ddl {
                sql: sql.to_string(),
            });
        }
        self.wal.commit();
    }

    /// Journal a statement registration (upsert semantics). The append
    /// happens under the mirror lock so two racing upserts of the same
    /// name can never journal in the opposite order to the mirror state a
    /// checkpoint would capture.
    pub fn log_statement_upsert(&self, name: &str, sql: &str) {
        {
            let mut statements = self.statements.lock();
            statements.insert(name.to_string(), sql.to_string());
            self.wal.append(&WalRecord::StatementUpsert {
                name: name.to_string(),
                sql: sql.to_string(),
            });
        }
        self.wal.commit();
    }

    /// Journal a statement removal (append under the mirror lock, like
    /// [`Durability::log_statement_upsert`]).
    pub fn log_statement_drop(&self, name: &str) {
        {
            let mut statements = self.statements.lock();
            statements.remove(name);
            self.wal.append(&WalRecord::StatementDrop {
                name: name.to_string(),
            });
        }
        self.wal.commit();
    }

    /// Journal one model rotation (call from the rotation observer, which
    /// runs under the store's rotation lock — that ordering is what makes
    /// the sequence numbers agree with the fold order).
    pub fn log_model_interval(&self, interval: &BTreeMap<ModelKey, LatencyHistogram>) {
        let seq = self.model_seq.fetch_add(1, Ordering::AcqRel) + 1;
        self.wal.append(&WalRecord::ModelInterval {
            seq,
            interval: encode_interval(interval),
        });
        self.wal.commit();
    }

    /// Take a checkpoint: rotate the WAL to a new generation, export
    /// state via `collect` (which must read its sources *after* this call
    /// begins — it is invoked post-rotation), write the snapshot, commit
    /// the manifest, and delete the previous generation's files.
    pub fn snapshot_with(
        &self,
        collect: impl FnOnce() -> SnapshotInputs,
    ) -> io::Result<SnapshotSummary> {
        let _guard = self.snapshot_lock.lock();
        if self.wal.is_dead() {
            return Err(io::Error::other("write-ahead log is dead"));
        }
        let t0 = Instant::now();
        let old_bytes = self.wal.counters().segment_bytes;
        let new_gen = self.wal_gen.load(Ordering::Acquire) + 1;
        self.wal.rotate_to(&wal_path(&self.config.dir, new_gen))?;
        // from here on, even an error leaves a replayable chain: the new
        // segment receives all new records and recovery replays every
        // consecutive segment after the committed manifest generation
        self.wal_gen.store(new_gen, Ordering::Release);

        let inputs = collect();
        // mirror reads must follow the rotation: anything a concurrent
        // writer appended to the *old* (now deletable) segment finished
        // its mirror update before the rotation, so it is in this clone
        let ddl = self.ddl.lock().clone();
        let statements: Vec<(String, String)> = self
            .statements
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let entries: u64 = inputs.namespaces.iter().map(|(_, e)| e.len() as u64).sum();
        let models = inputs.models.map(|(rotations, intervals)| ModelCheckpoint {
            seq: self.model_seq_base + rotations,
            intervals: intervals.iter().map(encode_interval).collect(),
        });
        let state = SnapshotState {
            namespaces: inputs.namespaces,
            ddl,
            statements,
            models,
        };
        let bytes = write_snapshot(&snap_path(&self.config.dir, new_gen), &state)?;
        write_manifest(&self.config.dir, new_gen)?;
        let old_manifest = self.manifest_gen.swap(new_gen, Ordering::AcqRel);
        *self.snapshot_time.lock() = Some(SystemTime::now());
        // the records behind the checkpoint are now dead weight
        for g in old_manifest..new_gen {
            let _ = std::fs::remove_file(wal_path(&self.config.dir, g));
        }
        let _ = std::fs::remove_file(snap_path(&self.config.dir, old_manifest));
        Ok(SnapshotSummary {
            generation: new_gen,
            entries,
            bytes,
            compacted_wal_bytes: old_bytes,
            duration_ms: t0.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// True when the current WAL segment has outgrown the configured
    /// auto-snapshot threshold.
    pub fn wants_snapshot(&self) -> bool {
        self.wal.counters().segment_bytes >= self.config.snapshot_wal_bytes
    }

    /// Force everything appended so far to stable storage. Returns
    /// `false` when the log died before the barrier was reached.
    pub fn sync(&self) -> bool {
        self.wal.commit()
    }

    /// Graceful shutdown: flush and stop the committer.
    pub fn close(&self) {
        self.wal.close();
    }

    /// Crash simulation (tests): discard buffered records and kill the
    /// log — the on-disk state afterwards is what a `kill -9` leaves.
    pub fn simulate_crash(&self) {
        self.wal.abandon();
    }

    /// True once the log is dead (crashed or I/O failure).
    pub fn is_dead(&self) -> bool {
        self.wal.is_dead()
    }

    pub fn wal_counters(&self) -> WalCounters {
        self.wal.counters()
    }

    pub fn generation(&self) -> u64 {
        self.manifest_gen.load(Ordering::Acquire)
    }

    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    pub fn policy(&self) -> SyncPolicy {
        self.config.policy
    }

    /// Health block for the `stats` verb.
    pub fn health(&self) -> DurabilityHealth {
        let counters = self.wal.counters();
        let age = self.snapshot_time.lock().and_then(|t| {
            SystemTime::now()
                .duration_since(t)
                .ok()
                .map(|d| d.as_millis() as u64)
        });
        DurabilityHealth {
            generation: self.generation(),
            policy: self.config.policy.name(),
            dead: self.wal.is_dead(),
            wal_bytes: counters.segment_bytes,
            wal_records: counters.segment_records,
            commits: counters.commits,
            fsyncs: counters.fsyncs,
            last_snapshot_age_ms: age,
            recovery: self.report.clone(),
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        self.close();
    }
}

/// The cluster-facing side: `Durability` *is* the [`WalSink`] a
/// [`LiveCluster`] attaches.
impl WalSink for Durability {
    fn append_ns(&self, ns: NsId, name: &str) {
        self.wal.append(&WalRecord::NsCreate {
            ns: ns.0,
            name: name.to_string(),
        });
    }

    fn append_put(&self, ns: NsId, key: &[u8], value: &[u8]) {
        self.wal.append(&WalRecord::Put {
            ns: ns.0,
            key: key.to_vec(),
            value: value.to_vec(),
        });
    }

    fn append_delete(&self, ns: NsId, key: &[u8]) {
        self.wal.append(&WalRecord::Delete {
            ns: ns.0,
            key: key.to_vec(),
        });
    }

    fn commit(&self) -> bool {
        self.wal.commit()
    }
}
