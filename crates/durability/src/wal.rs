//! The write-ahead log: framed records on disk, group commit in front.
//!
//! # Group commit
//!
//! Appenders never touch the file. [`Wal::append`] encodes the frame into
//! an in-memory pending buffer under a short mutex and returns an LSN
//! (the byte offset the segment will have once the frame is written). A
//! dedicated **committer thread** swaps the buffer out, writes it with
//! one `write` + `fdatasync`, then advances the **durable watermark** and
//! wakes everyone blocked in [`Wal::commit`]. While an fsync is in flight
//! new appenders keep accumulating in the fresh buffer, so `k` concurrent
//! write rounds cost ~1 fsync, not `k` — the classic group-commit
//! amortization. [`SyncPolicy::SyncEach`] bypasses the buffer and pays a
//! full `write`+`fdatasync` per append (the bench's worst case).
//!
//! # Torn tails
//!
//! A crash can leave a partial frame at the end of the segment.
//! [`read_wal`] stops at the first frame that is short, fails its CRC, or
//! fails to decode, and reports how far the log is intact; recovery
//! truncates to that point and appends from there. Nothing panics on a
//! torn tail — it is the *expected* shape of a crashed log.

use crate::record::{crc32, RecordError, WalRecord};
use piql_analysis::ordered::{Condvar, Mutex};
use piql_analysis::rank;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Frame header: `[len: u32][crc: u32]`.
const HEADER: usize = 8;
/// Sanity bound on a single payload; a length field above this is treated
/// as tail corruption, not an allocation request.
const MAX_PAYLOAD: u32 = 1 << 30;

/// When appended records hit stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Buffer appends; a committer thread coalesces concurrent commits
    /// into one `fdatasync` (the default).
    GroupCommit,
    /// `write` + `fdatasync` inside every append — one fsync per write,
    /// the baseline group commit is measured against.
    SyncEach,
}

impl SyncPolicy {
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::GroupCommit => "group-commit",
            SyncPolicy::SyncEach => "sync-each",
        }
    }
}

/// How a replayed segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// The last frame ended exactly at end-of-file.
    Clean,
    /// Fewer than 8 bytes of frame header at `at`.
    TornHeader { at: u64 },
    /// A frame header at `at` promises more payload than the file holds
    /// (or an insane length field).
    TornPayload { at: u64 },
    /// The payload at `at` does not match its checksum.
    BadCrc { at: u64 },
    /// The checksum held but the payload did not decode — corruption that
    /// made it past framing, still treated as end-of-log.
    BadRecord { at: u64, err: RecordError },
}

impl TailState {
    pub fn is_clean(self) -> bool {
        matches!(self, TailState::Clean)
    }
}

impl fmt::Display for TailState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailState::Clean => write!(f, "clean"),
            TailState::TornHeader { at } => write!(f, "torn header at byte {at}"),
            TailState::TornPayload { at } => write!(f, "torn payload at byte {at}"),
            TailState::BadCrc { at } => write!(f, "checksum mismatch at byte {at}"),
            TailState::BadRecord { at, err } => write!(f, "undecodable record at byte {at}: {err}"),
        }
    }
}

/// Everything [`read_wal`] learned about a segment.
#[derive(Debug)]
pub struct WalContents {
    /// Intact records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the intact prefix; recovery truncates here.
    pub valid_len: u64,
    pub tail: TailState,
}

/// Read a segment, tolerating a torn tail. A missing file is an empty
/// clean log (the first boot).
pub fn read_wal(path: &Path) -> io::Result<WalContents> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    let tail = loop {
        if at == data.len() {
            break TailState::Clean;
        }
        if data.len() - at < HEADER {
            break TailState::TornHeader { at: at as u64 };
        }
        let (Some(len), Some(crc)) = (le_u32_at(&data, at), le_u32_at(&data, at + 4)) else {
            break TailState::TornHeader { at: at as u64 };
        };
        if len > MAX_PAYLOAD || data.len() - at - HEADER < len as usize {
            break TailState::TornPayload { at: at as u64 };
        }
        let payload = &data[at + HEADER..at + HEADER + len as usize];
        if crc32(payload) != crc {
            break TailState::BadCrc { at: at as u64 };
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(err) => break TailState::BadRecord { at: at as u64, err },
        }
        at += HEADER + len as usize;
    };
    Ok(WalContents {
        records,
        valid_len: at as u64,
        tail,
    })
}

/// Little-endian u32 at `at`, or `None` if the slice ends first — replay
/// treats that as a torn header, never a panic.
fn le_u32_at(data: &[u8], at: usize) -> Option<u32> {
    let bytes = data.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

fn frame(rec: &WalRecord) -> Vec<u8> {
    let payload = rec.encode();
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

#[derive(Default)]
struct Pending {
    buf: Vec<u8>,
}

struct Sink {
    file: File,
}

/// Monotonic WAL counters (relaxed; reporting only).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalCounters {
    /// Bytes appended to the current segment (segment length once synced).
    pub segment_bytes: u64,
    /// Records appended to the current segment — i.e. since the last
    /// snapshot rotation.
    pub segment_records: u64,
    /// Records appended over the WAL's lifetime.
    pub total_records: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
    /// [`Wal::commit`] barriers requested.
    pub commits: u64,
}

/// An append-only segmented log with a durable watermark.
pub struct Wal {
    policy: SyncPolicy,
    pending: Mutex<Pending>,
    /// Wakes the committer when the pending buffer gains bytes.
    work: Condvar,
    sink: Mutex<Sink>,
    /// Highest LSN (segment byte offset) known to be on stable storage.
    durable: Mutex<u64>,
    durable_cv: Condvar,
    /// Next LSN to hand out: lifetime bytes appended (monotonic across
    /// segment rotations, so blocked commit barriers stay valid).
    appended: AtomicU64,
    /// LSN at which the current segment began; `appended - segment_start`
    /// is the segment's on-disk length.
    segment_start: AtomicU64,
    /// Graceful shutdown: flush pending, then stop.
    shutdown: AtomicBool,
    /// Crash simulation: pending bytes are *discarded*, waiters released.
    dead: AtomicBool,
    committer: Mutex<Option<std::thread::JoinHandle<()>>>,
    segment_records: AtomicU64,
    total_records: AtomicU64,
    fsyncs: AtomicU64,
    commits: AtomicU64,
}

impl Wal {
    /// Open `path` for appending at `valid_len` (from [`read_wal`] —
    /// anything beyond it is a torn tail and is truncated away) and start
    /// the committer thread. `existing_records` seeds the segment record
    /// counter so "records since last snapshot" survives a restart.
    pub fn open(
        path: &Path,
        valid_len: u64,
        existing_records: u64,
        policy: SyncPolicy,
    ) -> io::Result<std::sync::Arc<Wal>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        let wal = std::sync::Arc::new(Wal {
            policy,
            pending: Mutex::new(rank::WAL_PENDING, "wal.pending", Pending::default()),
            work: Condvar::new(),
            sink: Mutex::new(rank::WAL_SINK, "wal.sink", Sink { file }),
            durable: Mutex::new(rank::WAL_DURABLE, "wal.durable", valid_len),
            durable_cv: Condvar::new(),
            appended: AtomicU64::new(valid_len),
            segment_start: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            committer: Mutex::new(rank::WAL_COMMITTER, "wal.committer", None),
            segment_records: AtomicU64::new(existing_records),
            total_records: AtomicU64::new(existing_records),
            fsyncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
        });
        if policy == SyncPolicy::GroupCommit {
            let w = wal.clone();
            let handle = std::thread::Builder::new()
                .name("piql-wal-commit".into())
                .spawn(move || w.committer_loop())
                .map_err(io::Error::other)?;
            *wal.committer.lock() = Some(handle);
        }
        Ok(wal)
    }

    fn committer_loop(&self) {
        loop {
            let (chunk, target, mut s) = {
                let mut p = self.pending.lock();
                while p.buf.is_empty()
                    && !self.shutdown.load(Ordering::Acquire)
                    && !self.dead.load(Ordering::Acquire)
                {
                    p = self.work.wait(p);
                }
                if self.dead.load(Ordering::Acquire) {
                    return;
                }
                if p.buf.is_empty() {
                    // shutdown with nothing left to flush
                    return;
                }
                // Take the sink *before* releasing `pending` (the same
                // pending→sink order `rotate_to` uses). A rotation can
                // therefore never slip between taking the chunk and
                // writing it: it would sync the old file without the
                // chunk, swap segments, and publish a watermark covering
                // LSNs that exist only in this thread's memory — losing
                // acknowledged writes on a crash and spilling old-segment
                // records into the new file. The watermark target is the
                // LSN at the moment the buffer is taken: everything in
                // `chunk` is below it.
                let chunk = std::mem::take(&mut p.buf);
                let target = self.appended.load(Ordering::Acquire);
                (chunk, target, self.sink.lock())
            };
            let result = s.file.write_all(&chunk).and_then(|_| s.file.sync_data());
            drop(s);
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = result {
                // a failing log device voids the durability guarantee;
                // release everyone rather than hanging the write path
                eprintln!("piql-wal: write/sync failed, log is dead: {e}");
                self.dead.store(true, Ordering::Release);
                self.durable_cv.notify_all();
                return;
            }
            let mut d = self.durable.lock();
            if target > *d {
                *d = target;
            }
            drop(d);
            self.durable_cv.notify_all();
        }
    }

    /// Append one record; returns its LSN. Cheap in [`GroupCommit`]
    /// mode (one short mutex + memcpy) — safe to call under a shard
    /// write lock. Durability comes from a later [`Wal::commit`].
    ///
    /// [`GroupCommit`]: SyncPolicy::GroupCommit
    pub fn append(&self, rec: &WalRecord) -> u64 {
        if self.dead.load(Ordering::Acquire) {
            return self.appended.load(Ordering::Acquire);
        }
        let bytes = frame(rec);
        let lsn = match self.policy {
            SyncPolicy::GroupCommit => {
                let mut p = self.pending.lock();
                let lsn = self
                    .appended
                    .fetch_add(bytes.len() as u64, Ordering::AcqRel)
                    + bytes.len() as u64;
                p.buf.extend_from_slice(&bytes);
                drop(p);
                self.work.notify_one();
                lsn
            }
            SyncPolicy::SyncEach => {
                let mut s = self.sink.lock();
                let lsn = self
                    .appended
                    .fetch_add(bytes.len() as u64, Ordering::AcqRel)
                    + bytes.len() as u64;
                let result = s.file.write_all(&bytes).and_then(|_| s.file.sync_data());
                drop(s);
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = result {
                    eprintln!("piql-wal: write/sync failed, log is dead: {e}");
                    self.dead.store(true, Ordering::Release);
                    self.durable_cv.notify_all();
                    return lsn;
                }
                let mut d = self.durable.lock();
                if lsn > *d {
                    *d = lsn;
                }
                drop(d);
                self.durable_cv.notify_all();
                lsn
            }
        };
        self.segment_records.fetch_add(1, Ordering::Relaxed);
        self.total_records.fetch_add(1, Ordering::Relaxed);
        lsn
    }

    /// Block until every record appended before this call is durable —
    /// the barrier [`piql_kv::WalSink::commit`] maps to. Concurrent
    /// callers coalesce onto the committer's next fsync. Returns `false`
    /// when the log died before the barrier was reached: the records are
    /// *not* durable and the caller must not acknowledge them as such.
    pub fn commit(&self) -> bool {
        self.commits.fetch_add(1, Ordering::Relaxed);
        let reached = self.wait_durable(self.appended.load(Ordering::Acquire));
        // a dead log dropped appends at the door without advancing the
        // barrier LSN, so reaching the watermark proves nothing — once
        // dead, no commit may report durability
        reached && !self.dead.load(Ordering::Acquire)
    }

    /// Block until the watermark reaches `lsn` (or the log dies). Returns
    /// whether the watermark actually got there.
    pub fn wait_durable(&self, lsn: u64) -> bool {
        let mut d = self.durable.lock();
        while *d < lsn && !self.dead.load(Ordering::Acquire) {
            d = self.durable_cv.wait(d);
        }
        *d >= lsn
    }

    /// The durable watermark (reporting).
    pub fn durable_lsn(&self) -> u64 {
        *self.durable.lock()
    }

    /// Atomically flush + fsync the current segment and switch appends to
    /// a fresh file at `new_path` — the first step of a snapshot: every
    /// record after this call lands in the new segment, so a state export
    /// taken *after* the rotation plus the new segment replays to the
    /// same state.
    pub fn rotate_to(&self, new_path: &Path) -> io::Result<()> {
        // holding `pending` blocks group-commit appenders for the whole
        // swap; holding `sink` blocks sync-each appenders and waits out
        // an in-flight committer write. The committer acquires sink
        // before releasing pending, so once both locks are held here no
        // chunk can be in flight: the watermark published below only
        // covers bytes this call has actually synced.
        let mut p = self.pending.lock();
        let chunk = std::mem::take(&mut p.buf);
        let target = self.appended.load(Ordering::Acquire);
        let mut s = self.sink.lock();
        if !chunk.is_empty() {
            s.file.write_all(&chunk)?;
        }
        s.file.sync_data()?;
        let new_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(new_path)?;
        s.file = new_file;
        drop(s);
        let mut d = self.durable.lock();
        if target > *d {
            *d = target;
        }
        drop(d);
        self.durable_cv.notify_all();
        // LSNs keep counting lifetime bytes (commit barriers taken before
        // the rotation stay valid); only the segment accounting resets
        self.segment_start.store(target, Ordering::Release);
        self.segment_records.store(0, Ordering::Release);
        Ok(())
    }

    /// Crash simulation (tests): drop all buffered-but-unwritten bytes
    /// and kill the log, releasing every waiter. File state afterwards is
    /// exactly what a `kill -9` would have left: the durable prefix.
    pub fn abandon(&self) {
        {
            let mut p = self.pending.lock();
            p.buf.clear();
            self.dead.store(true, Ordering::Release);
        }
        self.work.notify_all();
        self.durable_cv.notify_all();
        if let Some(h) = self.committer.lock().take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: flush everything pending, then stop the
    /// committer. Called by `Drop`; idempotent.
    pub fn close(&self) {
        if self.dead.load(Ordering::Acquire) {
            return;
        }
        self.commit();
        self.shutdown.store(true, Ordering::Release);
        self.work.notify_all();
        if let Some(h) = self.committer.lock().take() {
            let _ = h.join();
        }
    }

    /// True once the log has been abandoned or hit an I/O error.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    pub fn counters(&self) -> WalCounters {
        WalCounters {
            segment_bytes: self.appended.load(Ordering::Acquire)
                - self.segment_start.load(Ordering::Acquire),
            segment_records: self.segment_records.load(Ordering::Relaxed),
            total_records: self.total_records.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("piql-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(i: u64) -> WalRecord {
        WalRecord::Put {
            ns: 0,
            key: i.to_be_bytes().to_vec(),
            value: vec![7; 16],
        }
    }

    #[test]
    fn append_commit_replay_roundtrip() {
        let dir = temp("roundtrip");
        let path = dir.join("wal-0.log");
        let wal = Wal::open(&path, 0, 0, SyncPolicy::GroupCommit).unwrap();
        for i in 0..100 {
            wal.append(&put(i));
        }
        wal.commit();
        assert_eq!(wal.counters().segment_records, 100);
        wal.close();
        let contents = read_wal(&path).unwrap();
        assert!(contents.tail.is_clean());
        assert_eq!(contents.records.len(), 100);
        assert_eq!(contents.records[3], put(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_commits_coalesce_into_few_fsyncs() {
        let dir = temp("coalesce");
        let path = dir.join("wal-0.log");
        let wal = Wal::open(&path, 0, 0, SyncPolicy::GroupCommit).unwrap();
        let per_thread = 50;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let lsn = wal.append(&put(t * 1000 + i));
                        wal.wait_durable(lsn);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = wal.counters();
        assert_eq!(c.segment_records, 8 * per_thread);
        assert!(
            c.fsyncs < 8 * per_thread,
            "group commit must coalesce: {} fsyncs for {} durable appends",
            c.fsyncs,
            8 * per_thread
        );
        wal.close();
        let contents = read_wal(&path).unwrap();
        assert!(contents.tail.is_clean());
        assert_eq!(contents.records.len() as u64, 8 * per_thread);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_each_is_durable_per_append() {
        let dir = temp("synceach");
        let path = dir.join("wal-0.log");
        let wal = Wal::open(&path, 0, 0, SyncPolicy::SyncEach).unwrap();
        for i in 0..10 {
            wal.append(&put(i));
        }
        assert!(wal.counters().fsyncs >= 10);
        assert_eq!(wal.durable_lsn(), wal.counters().segment_bytes);
        wal.close();
        assert_eq!(read_wal(&path).unwrap().records.len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_moves_new_appends_to_new_segment() {
        let dir = temp("rotate");
        let old = dir.join("wal-0.log");
        let new = dir.join("wal-1.log");
        let wal = Wal::open(&old, 0, 0, SyncPolicy::GroupCommit).unwrap();
        for i in 0..5 {
            wal.append(&put(i));
        }
        wal.rotate_to(&new).unwrap();
        assert_eq!(wal.counters().segment_records, 0, "fresh segment");
        for i in 5..8 {
            wal.append(&put(i));
        }
        wal.commit();
        wal.close();
        assert_eq!(read_wal(&old).unwrap().records.len(), 5);
        let tail = read_wal(&new).unwrap();
        assert_eq!(tail.records.len(), 3);
        assert_eq!(tail.records[0], put(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_concurrent_with_group_commit_keeps_lsn_layout() {
        // Regression: the committer used to release `pending` before
        // taking `sink`, so a rotation could sneak between the two, sync
        // the old segment *without* the in-flight chunk, publish a
        // watermark covering the chunk's LSNs (acknowledging writes that
        // existed only in committer memory), and leave the chunk to be
        // written into the freshly rotated segment. With consistent
        // pending→sink ordering every acknowledged byte sits exactly at
        // its returned LSN in the on-disk layout.
        let dir = temp("rotate-race");
        let wal = Wal::open(&dir.join("wal-0.log"), 0, 0, SyncPolicy::GroupCommit).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut acked = Vec::new(); // (record id, end LSN)
                    let mut i = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let id = t * 1_000_000 + i;
                        let lsn = wal.append(&put(id));
                        assert!(wal.wait_durable(lsn), "log died mid-test");
                        acked.push((id, lsn));
                        i += 1;
                    }
                    acked
                })
            })
            .collect();
        let mut last_gen = 0u64;
        for _ in 0..40 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            last_gen += 1;
            wal.rotate_to(&dir.join(format!("wal-{last_gen}.log")))
                .unwrap();
        }
        stop.store(true, Ordering::Release);
        let mut acked = std::collections::HashMap::new();
        for t in threads {
            for (id, lsn) in t.join().unwrap() {
                acked.insert(id, lsn);
            }
        }
        wal.close();
        // replay all segments in order and recompute each record's global
        // end offset; it must equal the LSN its appender was acknowledged
        // at, and every acknowledged record must be present
        let mut offset = 0u64;
        let mut seen = 0usize;
        for g in 0..=last_gen {
            let contents = read_wal(&dir.join(format!("wal-{g}.log"))).unwrap();
            assert!(contents.tail.is_clean());
            for rec in &contents.records {
                offset += HEADER as u64 + rec.encode().len() as u64;
                let WalRecord::Put { key, .. } = rec else {
                    panic!("unexpected record type in test log")
                };
                let id = u64::from_be_bytes(key[..8].try_into().unwrap());
                if let Some(lsn) = acked.get(&id) {
                    assert_eq!(
                        offset, *lsn,
                        "record {id} is on disk at offset {offset}, not its acknowledged LSN"
                    );
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, acked.len(), "acknowledged records missing from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandon_keeps_durable_prefix_only() {
        let dir = temp("abandon");
        let path = dir.join("wal-0.log");
        let wal = Wal::open(&path, 0, 0, SyncPolicy::GroupCommit).unwrap();
        for i in 0..20 {
            wal.append(&put(i));
        }
        wal.commit(); // 20 durable
        let durable = read_wal(&path).unwrap().records.len();
        for i in 20..40 {
            wal.append(&put(i)); // buffered, never committed
        }
        wal.abandon();
        let contents = read_wal(&path).unwrap();
        assert!(contents.records.len() >= durable);
        // appends after death are no-ops, commit returns immediately
        wal.append(&put(99));
        wal.commit();
        assert!(wal.is_dead());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_resumes_at_valid_len() {
        let dir = temp("reopen");
        let path = dir.join("wal-0.log");
        {
            let wal = Wal::open(&path, 0, 0, SyncPolicy::GroupCommit).unwrap();
            for i in 0..10 {
                wal.append(&put(i));
            }
            wal.close();
        }
        let first = read_wal(&path).unwrap();
        assert!(first.tail.is_clean());
        {
            let wal = Wal::open(
                &path,
                first.valid_len,
                first.records.len() as u64,
                SyncPolicy::GroupCommit,
            )
            .unwrap();
            assert_eq!(wal.counters().segment_records, 10);
            for i in 10..15 {
                wal.append(&put(i));
            }
            wal.close();
        }
        let all = read_wal(&path).unwrap();
        assert!(all.tail.is_clean());
        assert_eq!(all.records.len(), 15);
        assert_eq!(all.records[14], put(14));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
