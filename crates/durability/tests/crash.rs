//! Crash-injection tests: recovery must stop cleanly at the last valid
//! record when the tail of the log is torn (truncated mid-record) or
//! corrupted (checksum flipped), and a full `LiveCluster` round-trip
//! through snapshot + tail replay must reproduce the pre-crash state.

use piql_durability::{read_wal, Durability, DurabilityConfig, KvOp, SyncPolicy, TailState};
use piql_kv::{KvRequest, KvStore, LiveCluster, LiveConfig, NsId, Session, WalSink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

type NamespaceDump = Vec<(String, Vec<(Vec<u8>, Vec<u8>)>)>;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piql-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> (piql_durability::RecoveredState, Arc<Durability>) {
    Durability::open(DurabilityConfig {
        dir: dir.to_path_buf(),
        policy: SyncPolicy::GroupCommit,
        snapshot_wal_bytes: 64 << 20,
    })
    .expect("open durability")
}

/// Append `n` puts (`k<i>` → `v<i>`) through the sink and make them durable.
fn append_puts(d: &Durability, ns: NsId, n: usize) {
    for i in 0..n {
        d.append_put(
            ns,
            format!("k{i:04}").as_bytes(),
            format!("v{i}").as_bytes(),
        );
    }
    d.commit();
}

fn wal_file(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen}.log"))
}

#[test]
fn truncation_mid_record_keeps_the_valid_prefix() {
    let dir = test_dir("torn");
    {
        let (_, d) = open(&dir);
        d.append_ns(NsId(0), "t:users");
        append_puts(&d, NsId(0), 20);
        d.close();
    }
    // tear the last record: chop 3 bytes off the file so its final frame
    // has a complete header but a short payload
    let path = wal_file(&dir, 0);
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let (state, d) = open(&dir);
    // 21 records written, the torn one dropped
    assert_eq!(state.kv_tail.len(), 20);
    assert!(matches!(
        state.kv_tail.last(),
        Some(KvOp::Put { key, .. }) if key == b"k0018"
    ));
    let report = d.recovery_report();
    assert!(
        report.wal_tail.contains("torn"),
        "tail should report the tear, got: {}",
        report.wal_tail
    );
    assert!(report.truncated_bytes > 0);

    // the log is usable again: new appends land after the valid prefix
    append_puts(&d, NsId(0), 1);
    d.close();
    let contents = read_wal(&path).unwrap();
    assert!(contents.tail.is_clean());
    assert_eq!(contents.records.len(), 21); // 20 valid + 1 new
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_inside_header_is_reported_distinctly() {
    let dir = test_dir("torn-header");
    {
        let (_, d) = open(&dir);
        d.append_ns(NsId(0), "t:users");
        append_puts(&d, NsId(0), 5);
        d.close();
    }
    let path = wal_file(&dir, 0);
    let len = std::fs::metadata(&path).unwrap().len();
    // leave 4 stray bytes of a next frame's header
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len + 4).unwrap();
    drop(f);

    let contents = read_wal(&path).unwrap();
    assert_eq!(contents.records.len(), 6);
    assert!(matches!(contents.tail, TailState::TornHeader { .. }));

    let (state, _d) = open(&dir);
    assert_eq!(state.kv_tail.len(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_checksum_byte_stops_replay_at_last_valid_record() {
    let dir = test_dir("badcrc");
    let frame_starts: Vec<u64>;
    {
        let (_, d) = open(&dir);
        d.append_ns(NsId(0), "t:users");
        append_puts(&d, NsId(0), 10);
        d.close();
        let path = wal_file(&dir, 0);
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 11);
        // reconstruct frame boundaries from the re-encoded records
        let mut at = 0u64;
        frame_starts = contents
            .records
            .iter()
            .map(|r| {
                let s = at;
                at += 8 + r.encode().len() as u64;
                s
            })
            .collect();
    }
    // flip one byte of record 7's checksum field
    let path = wal_file(&dir, 0);
    let mut data = std::fs::read(&path).unwrap();
    let crc_at = frame_starts[7] as usize + 4;
    data[crc_at] ^= 0x01;
    std::fs::write(&path, &data).unwrap();

    let (state, d) = open(&dir);
    // records 0..7 survive (ns-create + 6 puts); 7.. are gone — a bad
    // checksum is indistinguishable from a torn tail, so replay stops
    assert_eq!(state.kv_tail.len(), 7);
    assert!(
        d.recovery_report().wal_tail.contains("checksum"),
        "got: {}",
        d.recovery_report().wal_tail
    );
    assert_eq!(
        d.recovery_report().truncated_bytes,
        data.len() as u64 - frame_starts[7],
        "everything from the bad frame on is truncated"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_non_final_segment_is_a_hard_error() {
    let dir = test_dir("midseg");
    {
        let cluster = LiveCluster::new(LiveConfig {
            shards_per_namespace: 4,
            pool_threads: 0,
            request_delay_us: 0,
        });
        let (_, d) = open(&dir);
        cluster.attach_wal(d.clone());
        let ns = cluster.namespace("t:users");
        let mut session = Session::new();
        cluster.execute_round(
            &mut session,
            vec![KvRequest::Put {
                ns,
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            }],
        );
        d.snapshot_with(|| piql_durability::SnapshotInputs {
            namespaces: cluster.export_namespaces(),
            models: None,
        })
        .unwrap();
        cluster.execute_round(
            &mut session,
            vec![KvRequest::Put {
                ns,
                key: b"b".to_vec(),
                value: b"2".to_vec(),
            }],
        );
        d.close();
        // fake a crash-between-rotation-and-manifest layout: resurrect a
        // corrupt wal-1 *behind* an existing wal-2 so segment 1 is non-final
        std::fs::rename(wal_file(&dir, 1), wal_file(&dir, 2)).unwrap();
        std::fs::write(wal_file(&dir, 1), b"garbage-that-is-not-a-frame").unwrap();
    }
    match Durability::open(DurabilityConfig {
        dir: dir.to_path_buf(),
        policy: SyncPolicy::GroupCommit,
        snapshot_wal_bytes: 64 << 20,
    }) {
        Ok(_) => panic!("corrupt middle segment must fail recovery"),
        Err(err) => assert!(err.to_string().contains("non-final"), "got: {err}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The end-to-end contract: run a workload against a WAL-attached
/// cluster, checkpoint mid-way, keep writing, crash without a clean
/// shutdown, recover into a fresh cluster — identical contents.
#[test]
fn live_cluster_roundtrip_through_snapshot_and_tail() {
    let dir = test_dir("roundtrip");
    let before: NamespaceDump;
    {
        let cluster = LiveCluster::new(LiveConfig {
            shards_per_namespace: 4,
            pool_threads: 2,
            request_delay_us: 0,
        });
        let (_, d) = open(&dir);
        cluster.attach_wal(d.clone());
        let users = cluster.namespace("t:users");
        let idx = cluster.namespace("i:users:name");
        let mut session = Session::new();
        for i in 0..50u32 {
            cluster.execute_round(
                &mut session,
                vec![
                    KvRequest::Put {
                        ns: users,
                        key: format!("u{i:03}").into_bytes(),
                        value: format!("name-{i}").into_bytes(),
                    },
                    KvRequest::Put {
                        ns: idx,
                        key: format!("name-{i}").into_bytes(),
                        value: format!("u{i:03}").into_bytes(),
                    },
                ],
            );
        }
        // deletions before the snapshot must stay deleted after recovery
        cluster.execute_round(
            &mut session,
            vec![KvRequest::Delete {
                ns: users,
                key: b"u000".to_vec(),
            }],
        );
        d.log_ddl("CREATE TABLE users (id INT PRIMARY KEY, name TEXT)");
        d.log_statement_upsert("byName", "SELECT * FROM users WHERE name = <s>");
        let summary = d
            .snapshot_with(|| piql_durability::SnapshotInputs {
                namespaces: cluster.export_namespaces(),
                models: None,
            })
            .unwrap();
        assert_eq!(summary.generation, 1);
        assert_eq!(summary.entries, 99); // 100 puts - 1 delete
                                         // post-snapshot tail: more writes, a TAS, a statement drop
        for i in 50..60u32 {
            cluster.execute_round(
                &mut session,
                vec![KvRequest::Put {
                    ns: users,
                    key: format!("u{i:03}").into_bytes(),
                    value: format!("name-{i}").into_bytes(),
                }],
            );
        }
        cluster.execute_round(
            &mut session,
            vec![KvRequest::TestAndSet {
                ns: users,
                key: b"u001".to_vec(),
                expect: Some(b"name-1".to_vec()),
                value: Some(b"name-1-edited".to_vec()),
            }],
        );
        // failed TAS must leave no record
        cluster.execute_round(
            &mut session,
            vec![KvRequest::TestAndSet {
                ns: users,
                key: b"u002".to_vec(),
                expect: Some(b"wrong".to_vec()),
                value: Some(b"never".to_vec()),
            }],
        );
        d.log_statement_drop("byName");
        d.log_statement_upsert("byId", "SELECT * FROM users WHERE id = <i>");
        before = cluster.export_namespaces();
        d.simulate_crash(); // kill -9: no close, buffered state discarded
    }

    let (state, d) = open(&dir);
    assert!(state.report.snapshot_loaded);
    assert_eq!(state.report.generation, 1);
    assert_eq!(state.ddl.len(), 1);
    assert_eq!(
        state.statements.keys().collect::<Vec<_>>(),
        vec!["byId"],
        "drop + upsert resolved"
    );

    let recovered = LiveCluster::new(LiveConfig {
        shards_per_namespace: 4,
        pool_threads: 0,
        request_delay_us: 0,
    });
    state.apply_kv(&recovered).unwrap();
    assert_eq!(recovered.export_namespaces(), before);
    // recovered store accepts new durable writes
    cluster_put(&recovered, &d, "u999", "late");
    d.close();
    std::fs::remove_dir_all(&dir).unwrap();
}

fn cluster_put(cluster: &LiveCluster, d: &Arc<Durability>, key: &str, value: &str) {
    cluster.attach_wal(d.clone());
    let ns = cluster.namespace("t:users");
    let mut session = Session::new();
    cluster.execute_round(
        &mut session,
        vec![KvRequest::Put {
            ns,
            key: key.as_bytes().to_vec(),
            value: value.as_bytes().to_vec(),
        }],
    );
}

/// A dead log must not let write rounds keep acknowledging as durable:
/// the cluster latches `wal_degraded` the first time a commit barrier
/// fails, so the serving layer can surface the degradation instead of
/// silently serving a store that no longer survives a restart.
#[test]
fn dead_wal_latches_the_degraded_flag() {
    let dir = test_dir("degraded");
    let cluster = LiveCluster::new(LiveConfig {
        shards_per_namespace: 4,
        pool_threads: 0,
        request_delay_us: 0,
    });
    let (_, d) = open(&dir);
    cluster.attach_wal(d.clone());
    let ns = cluster.namespace("t:users");
    let mut session = Session::new();
    cluster.execute_round(
        &mut session,
        vec![KvRequest::Put {
            ns,
            key: b"a".to_vec(),
            value: b"1".to_vec(),
        }],
    );
    assert!(!cluster.wal_degraded(), "healthy log");
    d.simulate_crash();
    cluster.execute_round(
        &mut session,
        vec![KvRequest::Put {
            ns,
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        }],
    );
    assert!(
        cluster.wal_degraded(),
        "a failed commit barrier must latch the degradation"
    );
    // the flag stays latched across later (read-only) rounds
    cluster.execute_round(
        &mut session,
        vec![KvRequest::Get {
            ns,
            key: b"a".to_vec(),
        }],
    );
    assert!(cluster.wal_degraded());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A bootstrap that creates namespaces in a different order than the
/// recorded ids must be detected, not silently mis-applied.
#[test]
fn bootstrap_order_drift_is_detected() {
    let dir = test_dir("drift");
    {
        let cluster = LiveCluster::new(LiveConfig::default());
        let (_, d) = open(&dir);
        cluster.attach_wal(d.clone());
        cluster.namespace("t:a");
        cluster.namespace("t:b");
        let mut session = Session::new();
        cluster.execute_round(
            &mut session,
            vec![KvRequest::Put {
                ns: NsId(0),
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            }],
        );
        d.close();
    }
    let (state, _d) = open(&dir);
    let recovered = LiveCluster::new(LiveConfig::default());
    // a drifted bootstrap grabbed id 0 for a different table
    recovered.namespace("t:b");
    let err = state.apply_kv(&recovered).expect_err("id drift");
    assert!(err.to_string().contains("bootstrap"), "got: {err}");
    std::fs::remove_dir_all(&dir).unwrap();
}
