//! Shared infrastructure for the figure/table harnesses.
//!
//! Every harness prints a self-describing, machine-readable table so
//! EXPERIMENTS.md can be refreshed by re-running `cargo bench`. Set
//! `PIQL_QUICK=1` to shrink runs (CI) — shapes survive, absolute noise
//! grows.

use piql_kv::{ClusterConfig, InterferenceConfig, Micros, SimCluster};
use std::sync::Arc;

/// Whether quick mode is requested.
pub fn quick() -> bool {
    std::env::var("PIQL_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Scale an iteration/duration knob down in quick mode.
pub fn scaled(full: u64, quick_value: u64) -> u64 {
    if quick() {
        quick_value
    } else {
        full
    }
}

/// The cluster configuration used by the measurement harnesses: EC2-2011
/// flavored latency, 2x replication, mild interference.
pub fn bench_cluster(nodes: usize, seed: u64) -> Arc<SimCluster> {
    let mut cfg = ClusterConfig::default().with_nodes(nodes).with_seed(seed);
    cfg.replication = 2;
    cfg.node_concurrency = 12;
    Arc::new(SimCluster::new(cfg))
}

/// Same, with interference disabled (scale-up figures: the paper plots a
/// single p99 per cluster size).
pub fn bench_cluster_calm(nodes: usize, seed: u64) -> Arc<SimCluster> {
    let mut cfg = ClusterConfig::default().with_nodes(nodes).with_seed(seed);
    cfg.replication = 2;
    cfg.node_concurrency = 12;
    cfg.interference = InterferenceConfig::none();
    Arc::new(SimCluster::new(cfg))
}

/// Exact p99 (ms) over raw latency samples.
pub fn p99_ms(samples: &mut [Micros]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((0.99 * samples.len() as f64).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx] as f64 / 1_000.0
}

/// Print a harness header in a stable format.
pub fn header(id: &str, paper_ref: &str, what: &str) {
    println!("### {id} — {paper_ref}");
    println!("# {what}");
    if quick() {
        println!(
            "# MODE: quick (PIQL_QUICK=1) — reduced sizes; see EXPERIMENTS.md for full-run numbers"
        );
    }
}

/// Print one row of `key=value` pairs.
pub fn row(pairs: &[(&str, String)]) {
    let cells: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("{}", cells.join("\t"));
}
