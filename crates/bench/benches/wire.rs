//! Wire codec shoot-out — binary v3 vs JSON v2 point-read throughput.
//!
//! One `LiveCluster`-backed `piql-server`, two clients doing the same
//! pipelined point reads: a v2 (newline-JSON) client on the dispatch-lane
//! path and a v3 (binary) client on the allocation-free inline fast path.
//! The acceptance bar for the v3 work is **≥ 2×** v2 throughput; the
//! measured numbers are published to `BENCH_wire.json` at the repo root
//! (consumed by the CI wire-bench job).
//!
//! `PIQL_QUICK=1` shrinks the run (the ratio assertion still applies).

use piql_bench::{header, quick, row, scaled};
use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::testkit::linear_predictor;
use piql_server::{Client, PiqlServer, SloConfig};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

const POINT: &str = "SELECT * FROM users WHERE username = <u>";
/// Requests per pipeline flush: deep enough to amortize the round trip,
/// shallow enough to keep both sides' buffers resident.
const PIPELINE_DEPTH: usize = 128;

fn start_server() -> (PiqlServer, usize) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster));
    let config = ScadrConfig {
        users_per_node: 200,
        thoughts_per_user: 5,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    let n_users = scadr::setup(&db, &config, 4).unwrap();
    let server = PiqlServer::start(
        db,
        linear_predictor(200, 100, 2),
        SloConfig {
            slo_ms: 1e9,
            interval_confidence: 1.0,
            allow_degrade: false,
        },
        "127.0.0.1:0",
    )
    .unwrap();
    (server, n_users)
}

fn uname(i: usize, n_users: usize) -> Vec<ParamValue> {
    vec![Value::Varchar(scadr::username(i % n_users)).into()]
}

/// Drive `total` pipelined point reads and return queries/second.
fn drive(client: &mut Client, total: u64, n_users: usize) -> f64 {
    let t0 = Instant::now();
    let mut sent = 0usize;
    while (sent as u64) < total {
        let batch = PIPELINE_DEPTH.min((total - sent as u64) as usize);
        let mut pipeline = client.pipeline();
        for i in 0..batch {
            pipeline.queue_execute("point", &uname(sent + i, n_users));
        }
        let responses = pipeline.flush().unwrap();
        assert_eq!(responses.len(), batch);
        sent += batch;
    }
    sent as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    header(
        "wire",
        "binary wire protocol v3 (zero-allocation hot path)",
        "pipelined point-read throughput, JSON v2 vs binary v3, one server",
    );
    let (server, n_users) = start_server();
    let addr = server.local_addr();
    let total = scaled(120_000, 4_000);

    let mut v2 = Client::connect(addr).unwrap();
    v2.prepare("point", POINT).unwrap();
    let mut v3 = Client::connect_binary(addr).unwrap();

    // interleave a warm-up for both codecs before timing either
    drive(&mut v2, total / 10, n_users);
    drive(&mut v3, total / 10, n_users);

    let fast_before = server
        .registry()
        .counters
        .fast_point_reads
        .load(Ordering::Relaxed);
    let v2_qps = drive(&mut v2, total, n_users);
    let v3_qps = drive(&mut v3, total, n_users);
    let fast_reads = server
        .registry()
        .counters
        .fast_point_reads
        .load(Ordering::Relaxed)
        - fast_before;
    let ratio = v3_qps / v2_qps;

    row(&[
        ("codec", "json-v2".into()),
        ("requests", total.to_string()),
        ("qps", format!("{v2_qps:.0}")),
    ]);
    row(&[
        ("codec", "binary-v3".into()),
        ("requests", total.to_string()),
        ("qps", format!("{v3_qps:.0}")),
        ("fast_point_reads", fast_reads.to_string()),
    ]);
    row(&[("ratio_v3_over_v2", format!("{ratio:.2}"))]);

    // every timed v3 request must have taken the fast path
    assert_eq!(fast_reads, total, "v3 reads bypassed the fast path");

    let json = format!(
        "{{\n  \"bench\": \"wire\",\n  \"quick\": {},\n  \"requests_per_codec\": {},\n  \
         \"pipeline_depth\": {},\n  \"json_v2_qps\": {:.0},\n  \"binary_v3_qps\": {:.0},\n  \
         \"ratio_v3_over_v2\": {:.2}\n}}\n",
        quick(),
        total,
        PIPELINE_DEPTH,
        v2_qps,
        v3_qps,
        ratio
    );
    let out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wire.json");
    std::fs::write(&out, json).unwrap();
    eprintln!("wrote {}", out.display());

    assert!(
        ratio >= 2.0,
        "binary v3 must be >= 2x JSON v2 on point reads (got {ratio:.2}x: \
         v2 {v2_qps:.0} qps, v3 {v3_qps:.0} qps)"
    );
}
