//! Figures 10 & 11 — SCADr scale-up (§8.4.2): near-linear throughput
//! (paper R² = 0.98683) with flat p99 as storage nodes grow, data per node
//! constant (users/thoughts/subscriptions scale with the cluster).

use piql_bench::{bench_cluster_calm, header, row, scaled};
use piql_engine::Database;
use piql_kv::SECONDS;
use piql_workloads::driver::{run_closed_loop, DriverConfig};
use piql_workloads::metrics::linear_fit;
use piql_workloads::scadr::{setup, ScadrConfig, ScadrWorkload};

fn main() {
    header(
        "fig10_11",
        "Figures 10 and 11 (§8.4.2)",
        "SCADr: home-page interactions/sec and p99 (ms) vs number of storage nodes",
    );
    let nodes_sweep: Vec<usize> = if piql_bench::quick() {
        vec![4, 8, 12]
    } else {
        vec![20, 40, 60, 80, 100]
    };
    let duration = scaled(15, 6) * SECONDS;

    // sequential: SCADr data grows with the cluster, keep peak memory low
    let mut results: Vec<(usize, f64, f64)> = Vec::new();
    for &nodes in &nodes_sweep {
        let cluster = bench_cluster_calm(nodes, 0x5CA);
        let db = Database::new(cluster);
        let config = ScadrConfig {
            users_per_node: if piql_bench::quick() { 120 } else { 400 },
            thoughts_per_user: 15,
            subscriptions_per_user: 10,
            max_subscriptions: 10,
            page_size: 10,
            ..Default::default()
        };
        let n_users = setup(&db, &config, nodes).unwrap();
        let workload = ScadrWorkload::new(&db, &config, n_users).unwrap();
        let cfg = DriverConfig {
            sessions: (nodes / 2).max(1) * 10,
            duration_us: duration,
            warmup_us: 2 * SECONDS,
            seed: 0x5CA,
            ..Default::default()
        };
        let m = run_closed_loop(&db, &workload, &cfg).unwrap();
        results.push((nodes, m.throughput_per_sec(), m.quantile_ms(0.99)));
    }

    println!("nodes\tinteractions_per_sec\tp99_ms");
    for (nodes, tput, p99) in &results {
        row(&[
            ("nodes", nodes.to_string()),
            ("interactions_per_sec", format!("{tput:.0}")),
            ("p99_ms", format!("{p99:.0}")),
        ]);
    }
    let xs: Vec<f64> = results.iter().map(|r| r.0 as f64).collect();
    let ys: Vec<f64> = results.iter().map(|r| r.1).collect();
    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!(
        "# fig10 linear fit: tput ≈ {slope:.1}*nodes + {intercept:.1}, R² = {r2:.5} (paper: 0.98683)"
    );
    let p99s: Vec<f64> = results.iter().map(|r| r.2).collect();
    let spread =
        p99s.iter().cloned().fold(0.0f64, f64::max) - p99s.iter().cloned().fold(f64::MAX, f64::min);
    println!("# fig11 flatness: p99 spread = {spread:.0} ms (paper: flat, <300 ms at all sizes)");
}
