//! Server admission throughput — success-tolerance is cheap.
//!
//! Sustained mixed load against a `LiveCluster`-backed `piql-server`
//! registry: client threads execute an admitted statement while others
//! hammer the service with registrations that get rejected (unbounded and
//! over-SLO). The rows show (1) rejected registrations are pure CPU — the
//! storage op counter does not move — and (2) admitted-query throughput is
//! barely dented by a concurrent rejection storm.
//!
//! `PIQL_QUICK=1` shrinks the run.

use piql_bench::{header, row, scaled};
use piql_core::plan::params::Params;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::testkit::linear_predictor;
use piql_server::{SloConfig, StatementRegistry};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const UNBOUNDED: &str = "SELECT * FROM thoughts WHERE text = <t>";
const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
     WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
     ORDER BY thoughts.timestamp DESC LIMIT 10";

fn build() -> (Arc<LiveCluster>, Arc<StatementRegistry<LiveCluster>>, usize) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster.clone()));
    let config = ScadrConfig {
        users_per_node: 200,
        thoughts_per_user: 15,
        subscriptions_per_user: 8,
        max_subscriptions: 100,
        ..Default::default()
    };
    let n_users = scadr::setup(&db, &config, 4).unwrap();
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 3),
        SloConfig {
            slo_ms: 80.0,
            interval_confidence: 1.0,
            allow_degrade: true,
        },
    ));
    (cluster, registry, n_users)
}

fn main() {
    header(
        "server_admission",
        "piql-server (§6 admission at the API boundary)",
        "registration + execution throughput; rejected registrations issue zero storage ops",
    );
    let (cluster, registry, n_users) = build();

    // --- admitted baseline: register once, execute hot
    registry
        .register("find_user", "SELECT * FROM users WHERE username = <u>")
        .unwrap();
    registry.register("thoughtstream", THOUGHTSTREAM).unwrap();

    let exec_iters = scaled(20_000, 2_000);
    let t0 = Instant::now();
    let mut session = Session::new();
    for i in 0..exec_iters {
        let mut p = Params::new();
        p.set(0, Value::Varchar(scadr::username(i as usize % n_users)));
        registry
            .execute(&mut session, "find_user", &p, None)
            .unwrap();
    }
    let exec_qps = exec_iters as f64 / t0.elapsed().as_secs_f64();
    row(&[
        ("phase", "admitted-exec".into()),
        ("iters", exec_iters.to_string()),
        ("qps", format!("{exec_qps:.0}")),
    ]);

    // --- rejection throughput: unbounded and over-SLO registrations,
    //     storage op counter pinned before/after
    for (label, sql, expect) in [
        ("reject-unbounded", UNBOUNDED, "rejected-unbounded"),
        ("reject-slo", THOUGHTSTREAM, "rejected-slo"),
    ] {
        // over-SLO rejection needs a degrade-free strict registry
        let strict = StatementRegistry::new(
            registry.db().clone(),
            linear_predictor(200, 100, 3),
            SloConfig {
                slo_ms: 10.0,
                interval_confidence: 1.0,
                allow_degrade: false,
            },
        );
        let reg_iters = scaled(2_000, 200);
        let ops_before = cluster.op_count();
        let t0 = Instant::now();
        for i in 0..reg_iters {
            let verdict = strict.register(&format!("q{i}"), sql).unwrap();
            assert_eq!(verdict.verdict(), expect);
        }
        let regs_per_sec = reg_iters as f64 / t0.elapsed().as_secs_f64();
        let storage_ops = cluster.op_count() - ops_before;
        assert_eq!(storage_ops, 0, "rejection must not touch storage");
        row(&[
            ("phase", label.into()),
            ("registrations", reg_iters.to_string()),
            ("regs_per_sec", format!("{regs_per_sec:.0}")),
            ("storage_ops", storage_ops.to_string()),
        ]);
    }

    // --- mixed sustained load: 4 executor threads + 4 rejection threads
    let stop = Arc::new(AtomicBool::new(false));
    let duration_ms = scaled(2_000, 300);
    let executors: Vec<_> = (0..4)
        .map(|t| {
            let registry = registry.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut session = Session::new();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut p = Params::new();
                    p.set(
                        0,
                        Value::Varchar(scadr::username((t * 31 + n as usize) % 100)),
                    );
                    registry
                        .execute(&mut session, "thoughtstream", &p, None)
                        .unwrap();
                    n += 1;
                }
                n
            })
        })
        .collect();
    let ops_before = cluster.op_count();
    let rejectors: Vec<_> = (0..4)
        .map(|t| {
            let registry = registry.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let verdict = registry
                        .register(&format!("reject-{t}-{n}"), UNBOUNDED)
                        .unwrap();
                    assert_eq!(verdict.verdict(), "rejected-unbounded");
                    n += 1;
                }
                n
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    stop.store(true, Ordering::SeqCst);
    let executed: u64 = executors.into_iter().map(|t| t.join().unwrap()).sum();
    let rejected: u64 = rejectors.into_iter().map(|t| t.join().unwrap()).sum();
    let elapsed_s = duration_ms as f64 / 1_000.0;
    // every storage op in the window must be attributable to the admitted
    // executions' bounded plans — the rejection storm adds none
    let ops_in_window = cluster.op_count() - ops_before;
    let bound = registry
        .get("thoughtstream")
        .unwrap()
        .prepared()
        .compiled
        .bounds
        .requests;
    assert!(
        ops_in_window <= executed * bound.max(1),
        "storage ops ({ops_in_window}) exceed what admitted executions alone can issue \
         ({executed} × {bound}) — rejections leaked storage work"
    );
    row(&[
        ("phase", "mixed-load".into()),
        ("exec_qps", format!("{:.0}", executed as f64 / elapsed_s)),
        (
            "rejections_per_sec",
            format!("{:.0}", rejected as f64 / elapsed_s),
        ),
        ("storage_ops_window", ops_in_window.to_string()),
        ("exec_request_bound", bound.to_string()),
    ]);
}
