//! Flash-crowd overload scenario — the acceptance run for the overload
//! controls (per-tenant admission budgets + per-connection backpressure).
//!
//! Two identical seeded scenarios, differing only in whether the
//! server-side controls are enabled: a 10x flash crowd slams the
//! `burst` tenant while `site` and `api` carry steady traffic on a
//! deliberately small dispatch pool over slow-ish storage.
//!
//! * **baseline** (controls off) — the crowd's pipelined requests all
//!   reach storage, the dispatch pool queues, and the victims' p99
//!   demonstrably blows through their SLO.
//! * **controls** (budgets + backpressure on) — crowd requests beyond
//!   the `burst` budget are rejected at admission (microseconds, no
//!   storage op), and every other tenant's p99 holds within its SLO.
//!
//! Both runs (and their invariant checks — acked writes never lost, no
//! connection starved) are recorded in `BENCH_scenario.json` for the CI
//! scenario job. `PIQL_QUICK=1` shrinks the fleet and the clock; the
//! assertions still apply.

use piql_bench::{header, quick, row};
use piql_scenario::{run_scenario, Controls, Fault, ScenarioSpec, TenantSpec};
use piql_server::BudgetPolicy;
use std::time::Duration;

/// Victim SLO the acceptance criterion is judged against.
const VICTIM_SLO_MS: f64 = 60.0;

fn spec(run_secs: u64, scale: usize) -> ScenarioSpec {
    let burst_steady = 2 * scale;
    ScenarioSpec {
        seed: 0x0dd_ba11,
        duration: Duration::from_secs(run_secs),
        requests_per_conn: None,
        tenants: vec![
            TenantSpec {
                slo_ms: VICTIM_SLO_MS,
                assert_slo: true,
                binary_share: 0.25,
                ..TenantSpec::new("site", 8 * scale)
            },
            TenantSpec {
                slo_ms: VICTIM_SLO_MS,
                assert_slo: true,
                ..TenantSpec::new("api", 4 * scale)
            },
            TenantSpec {
                budget: Some(4),
                policy: BudgetPolicy::Reject,
                ..TenantSpec::new("burst", burst_steady)
            },
        ],
        keys_per_tenant: 2_000,
        zipf_exponent: 0.99,
        write_fraction: 0.1,
        think: Duration::from_millis(2),
        diurnal_cycles: 2,
        dispatch_threads: 8,
        request_delay_us: 5_000,
        controls: Controls {
            enabled: true,
            max_in_flight_per_conn: 16,
            rebalance_max_op_share: 0.9,
            rebalance_min_ops: 50_000,
        },
        faults: vec![Fault::FlashCrowd {
            at: Duration::from_millis(500),
            until: Duration::from_secs(run_secs.saturating_sub(1)),
            tenant: "burst".to_string(),
            // the 10x flash crowd, relative to the tenant's steady pool
            extra_connections: 10 * burst_steady,
        }],
    }
}

fn main() {
    header(
        "scenario",
        "overload control under a 10x flash crowd (§2, §10 service story)",
        "same seeded scenario, controls off vs on; victim p99 vs SLO",
    );
    let (run_secs, scale) = if quick() { (3, 1) } else { (15, 2) };

    let controls_spec = spec(run_secs, scale);
    let mut baseline_spec = controls_spec.clone();
    baseline_spec.controls.enabled = false;
    // The baseline is *expected* to violate the victims' SLOs; record the
    // p99s rather than failing the run inside the driver.
    for t in &mut baseline_spec.tenants {
        t.assert_slo = false;
    }

    let baseline = run_scenario(&baseline_spec);
    let controls = run_scenario(&controls_spec);

    for (label, report) in [("baseline", &baseline), ("controls", &controls)] {
        for t in &report.tenants {
            row(&[
                ("run", (*label).into()),
                ("tenant", t.tenant.clone()),
                ("sent", t.sent.to_string()),
                ("rejected", t.rejected.to_string()),
                ("crowd_rejected", t.crowd_rejected.to_string()),
                ("p99_ms", format!("{:.2}", t.p99_ms)),
                ("slo_ms", format!("{:.0}", t.slo_ms)),
                ("lost_writes", t.lost_writes.to_string()),
            ]);
        }
        row(&[
            ("run", (*label).into()),
            (
                "backpressure_stalls",
                report.server.backpressure_stalls.to_string(),
            ),
            ("budget_rejected", report.server.budget_rejected.to_string()),
            ("fingerprint", format!("{:016x}", report.fingerprint)),
        ]);
    }

    let json = format!(
        "{{\n  \"bench\": \"scenario\",\n  \"quick\": {},\n  \"run_secs\": {},\n  \
         \"victim_slo_ms\": {},\n  \"baseline\": {},\n  \"controls\": {}\n}}\n",
        quick(),
        run_secs,
        VICTIM_SLO_MS,
        baseline.to_json_obj(),
        controls.to_json_obj(),
    );
    let out =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scenario.json");
    std::fs::write(&out, json).unwrap();
    eprintln!("wrote {}", out.display());

    // ---- acceptance: durability holds in both runs.
    assert_eq!(
        baseline.total_lost_writes(),
        0,
        "baseline lost acked writes"
    );
    assert_eq!(
        controls.total_lost_writes(),
        0,
        "controls lost acked writes"
    );
    assert!(
        baseline.passed(),
        "baseline run violations: {:?}",
        baseline.violations
    );
    assert!(
        controls.passed(),
        "controls run violations: {:?}",
        controls.violations
    );

    // The baseline demonstrably violates at least one victim SLO…
    let baseline_worst = ["site", "api"]
        .iter()
        .filter_map(|n| baseline.tenant(n))
        .map(|t| t.p99_ms)
        .fold(0.0f64, f64::max);
    assert!(
        baseline_worst > VICTIM_SLO_MS,
        "baseline did not demonstrate the violation (worst victim p99 \
         {baseline_worst:.2}ms <= SLO {VICTIM_SLO_MS}ms) — overload too weak"
    );

    // …while with controls on, every victim holds (the driver asserted
    // this via `assert_slo`; re-check explicitly) and the crowd was
    // turned away at admission.
    for name in ["site", "api"] {
        let t = controls.tenant(name).unwrap();
        assert!(
            t.p99_ms <= VICTIM_SLO_MS,
            "{name} p99 {:.2}ms over SLO with controls on",
            t.p99_ms
        );
    }
    let burst = controls.tenant("burst").unwrap();
    assert!(
        burst.crowd_rejected > 0,
        "controls run never rejected the flash crowd"
    );
    let ratio = baseline_worst
        / controls
            .tenant("site")
            .map(|t| t.p99_ms.max(0.001))
            .unwrap_or(0.001);
    row(&[
        (
            "baseline_worst_victim_p99_ms",
            format!("{baseline_worst:.2}"),
        ),
        ("isolation_ratio", format!("{ratio:.1}x")),
    ]);
}
