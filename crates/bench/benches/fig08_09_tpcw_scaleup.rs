//! Figures 8 & 9 — TPC-W scale-up (§8.4.1): throughput (WIPS) grows
//! linearly with storage nodes (paper R² = 0.99854) while the p99 web-
//! interaction latency stays flat. Data per node is constant; one client
//! machine (10 threads) per two storage nodes; ordering mix.

use piql_bench::{bench_cluster_calm, header, row, scaled};
use piql_engine::Database;
use piql_kv::SECONDS;
use piql_workloads::driver::{run_closed_loop, DriverConfig};
use piql_workloads::metrics::linear_fit;
use piql_workloads::tpcw::{setup, TpcwConfig, TpcwWorkload};

fn main() {
    header(
        "fig08_09",
        "Figures 8 and 9 (§8.4.1)",
        "TPC-W: WIPS and p99 (ms) vs number of storage nodes; clients scale with nodes",
    );
    let nodes_sweep: Vec<usize> = if piql_bench::quick() {
        vec![4, 8, 12]
    } else {
        vec![20, 40, 60, 80, 100]
    };
    let duration = scaled(15, 6) * SECONDS;

    // independent cluster configurations measured in parallel (items are
    // constant per config, so memory stays modest)
    let mut results: Vec<(usize, f64, f64)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = nodes_sweep
            .iter()
            .map(|&nodes| {
                scope.spawn(move || {
                    let cluster = bench_cluster_calm(nodes, 0xF89);
                    let db = Database::new(cluster);
                    let config = TpcwConfig {
                        items: if piql_bench::quick() { 2_000 } else { 10_000 },
                        customers_per_node: 100,
                        ..Default::default()
                    };
                    let (c, i, o) = setup(&db, &config, nodes).unwrap();
                    let workload = TpcwWorkload::new(&db, c, i, o).unwrap();
                    let cfg = DriverConfig {
                        // one client per two storage nodes, 10 threads each
                        sessions: (nodes / 2).max(1) * 10,
                        duration_us: duration,
                        warmup_us: 2 * SECONDS,
                        seed: 0xF89,
                        ..Default::default()
                    };
                    let m = run_closed_loop(&db, &workload, &cfg).unwrap();
                    (nodes, m.throughput_per_sec(), m.quantile_ms(0.99))
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().unwrap());
        }
    });
    results.sort_by_key(|r| r.0);

    println!("nodes\twips\tp99_ms");
    for (nodes, wips, p99) in &results {
        row(&[
            ("nodes", nodes.to_string()),
            ("wips", format!("{wips:.0}")),
            ("p99_ms", format!("{p99:.0}")),
        ]);
    }
    let xs: Vec<f64> = results.iter().map(|r| r.0 as f64).collect();
    let ys: Vec<f64> = results.iter().map(|r| r.1).collect();
    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!(
        "# fig8 linear fit: wips ≈ {slope:.1}*nodes + {intercept:.1}, R² = {r2:.5} (paper: 0.99854)"
    );
    let p99s: Vec<f64> = results.iter().map(|r| r.2).collect();
    let spread =
        p99s.iter().cloned().fold(0.0f64, f64::max) - p99s.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "# fig9 flatness: p99 spread across cluster sizes = {spread:.0} ms (paper: virtually constant)"
    );
}
