//! Durability cost and recovery speed on `LiveCluster`.
//!
//! Point-write throughput at 8 concurrent writers under three policies —
//! no WAL, group commit, fsync-per-write — both raw (in-memory store
//! speed, where every fsync is glaring) and with the modeled per-request
//! store delay the latency experiments use (where group commit must stay
//! within 3x of the in-memory path: the acceptance criterion this harness
//! pins). Then recovery time as a function of log size.
//!
//! Besides the printed table, publishes machine-readable baselines to
//! `BENCH_durability.json` at the workspace root.

use piql_bench::{header, quick, row, scaled};
use piql_durability::{Durability, DurabilityConfig, SyncPolicy};
use piql_kv::{KvRequest, KvStore, LiveCluster, LiveConfig, Session, WalSink};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const WRITERS: usize = 8;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("piql-bench-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, policy: SyncPolicy) -> Arc<Durability> {
    let (_, durability) = Durability::open(DurabilityConfig {
        dir: dir.to_path_buf(),
        policy,
        snapshot_wal_bytes: u64::MAX, // never auto-compact under the bench
    })
    .expect("open durability");
    durability
}

/// `WRITERS` threads each issue `ops_per_writer` durable point puts;
/// returns aggregate ops/sec.
fn write_throughput(
    policy: Option<SyncPolicy>,
    delay_us: u64,
    ops_per_writer: u64,
) -> (f64, PathBuf) {
    let label = match policy {
        None => "off",
        Some(SyncPolicy::GroupCommit) => "group-commit",
        Some(SyncPolicy::SyncEach) => "sync-each",
    };
    let dir = bench_dir(&format!("tput-{label}-{delay_us}"));
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    cluster.set_request_delay_us(delay_us);
    let ns = cluster.namespace("bench/points");
    let durability = policy.map(|p| {
        let d = open(&dir, p);
        cluster.attach_wal(d.clone());
        d
    });

    let t0 = Instant::now();
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let mut session = Session::new();
                for i in 0..ops_per_writer {
                    let key = format!("w{w}-{i:08}").into_bytes();
                    cluster.execute_round(
                        &mut session,
                        vec![KvRequest::Put {
                            ns,
                            key,
                            value: vec![7u8; 64],
                        }],
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    if let Some(d) = durability {
        cluster.detach_wal();
        d.close();
    }
    let total = (WRITERS as u64 * ops_per_writer) as f64;
    (total / secs, dir)
}

/// Append `records` puts to a fresh log, then measure a cold open.
fn recovery_time(records: u64) -> (u64, f64) {
    let dir = bench_dir(&format!("recover-{records}"));
    let durability = open(&dir, SyncPolicy::GroupCommit);
    let ns = piql_kv::NsId(0);
    durability.append_ns(ns, "bench/points");
    for i in 0..records {
        durability.append_put(
            ns,
            format!("k{i:010}").as_bytes(),
            format!("v{i:04}").repeat(8).as_bytes(),
        );
    }
    durability.commit();
    let wal_bytes = durability.wal_counters().segment_bytes;
    durability.close();

    let t0 = Instant::now();
    let (recovered, reopened) = Durability::open(DurabilityConfig {
        dir: dir.clone(),
        policy: SyncPolicy::GroupCommit,
        snapshot_wal_bytes: u64::MAX,
    })
    .expect("reopen");
    let cluster = LiveCluster::new(LiveConfig::default());
    cluster.namespace("bench/points");
    recovered.apply_kv(&cluster).expect("replay");
    let ms = t0.elapsed().as_secs_f64() * 1_000.0;
    reopened.close();
    let _ = std::fs::remove_dir_all(&dir);
    (wal_bytes, ms)
}

fn main() {
    header(
        "durability",
        "WAL group commit & recovery",
        "durable point-write throughput (8 writers) under off/group-commit/sync-each, raw and with modeled store delay; recovery time vs log size",
    );

    let ops = scaled(4_000, 500);
    let mut tput_rows: Vec<String> = Vec::new();
    let mut ratio_pinned = f64::NAN;
    println!("policy\tdelay_us\twriters\tops_per_sec\tvs_off");
    for delay_us in [0u64, 150] {
        let (off, _) = write_throughput(None, delay_us, ops);
        for (policy, label) in [
            (None, "off"),
            (Some(SyncPolicy::GroupCommit), "group-commit"),
            (Some(SyncPolicy::SyncEach), "sync-each"),
        ] {
            let (tput, dir) = write_throughput(policy, delay_us, ops);
            let ratio = off / tput;
            row(&[
                ("policy", label.to_string()),
                ("delay_us", delay_us.to_string()),
                ("writers", WRITERS.to_string()),
                ("ops_per_sec", format!("{tput:.0}")),
                ("vs_off", format!("{ratio:.2}x")),
            ]);
            tput_rows.push(format!(
                "{{\"policy\":\"{label}\",\"delay_us\":{delay_us},\"writers\":{WRITERS},\"ops_per_sec\":{tput:.1},\"slowdown_vs_off\":{ratio:.3}}}"
            ));
            if label == "group-commit" && delay_us > 0 {
                ratio_pinned = ratio;
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    println!("records\twal_bytes\trecovery_ms");
    let mut recovery_rows: Vec<String> = Vec::new();
    for records in [
        scaled(10_000, 1_000),
        scaled(50_000, 5_000),
        scaled(200_000, 20_000),
    ] {
        let (wal_bytes, ms) = recovery_time(records);
        row(&[
            ("records", records.to_string()),
            ("wal_bytes", wal_bytes.to_string()),
            ("recovery_ms", format!("{ms:.1}")),
        ]);
        recovery_rows.push(format!(
            "{{\"records\":{records},\"wal_bytes\":{wal_bytes},\"recovery_ms\":{ms:.2}}}"
        ));
    }

    // the acceptance pin: with the modeled store delay, group commit stays
    // within 3x of the in-memory path at 8 concurrent writers
    row(&[(
        "group_commit_slowdown_at_modeled_delay",
        format!("{ratio_pinned:.2}x (limit 3x)"),
    )]);
    assert!(
        ratio_pinned <= 3.0,
        "group commit slowdown {ratio_pinned:.2}x exceeds the 3x acceptance bound"
    );

    let json = format!(
        "{{\n  \"bench\": \"durability\",\n  \"mode\": \"{}\",\n  \"writers\": {WRITERS},\n  \"write_throughput\": [\n    {}\n  ],\n  \"recovery\": [\n    {}\n  ],\n  \"group_commit_slowdown_at_modeled_delay\": {:.3},\n  \"acceptance_bound\": 3.0\n}}\n",
        if quick() { "quick" } else { "full" },
        tput_rows.join(",\n    "),
        recovery_rows.join(",\n    "),
        ratio_pinned
    );
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_durability.json");
    std::fs::write(&out, json).expect("write BENCH_durability.json");
    println!("# wrote {}", out.display());
}
