//! Figure 6 — the Performance Insight Assistant's predicted-p99 heatmap
//! for the thoughtstream query (§6.4): subscriptions-per-user (100–500) ×
//! records-per-page (10–50), plus the average predicted-minus-actual gap
//! (paper: predictions average 13 ms above measurements).

use piql_bench::{bench_cluster, header, p99_ms, scaled};
use piql_core::catalog::{Catalog, TableDef};
use piql_core::opt::Optimizer;
use piql_core::parser::parse_select;
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::{DataType, Value};
use piql_engine::{Database, ExecStrategy};
use piql_kv::Session;
use piql_predict::{train, Heatmap, SloPredictor, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn thoughtstream_sql(page: u64) -> String {
    format!(
        "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
         WHERE thoughts.owner = s.target AND s.owner = <uname> AND s.approved = true \
         ORDER BY thoughts.timestamp DESC LIMIT {page}"
    )
}

/// Catalog with a given subscription cardinality limit (for prediction-side
/// compilation).
fn catalog_with_limit(subs: u64) -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("users")
            .column("username", DataType::Varchar(24))
            .primary_key(&["username"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("subscriptions")
            .column("owner", DataType::Varchar(24))
            .column("target", DataType::Varchar(24))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(subs, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(24))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .build(),
    )
    .unwrap();
    cat
}

fn main() {
    header(
        "fig06",
        "Figure 6 (§6.4)",
        "predicted p99 (ms) heatmap for the thoughtstream query; rows = subscriptions \
         per user, cols = records per page; plus predicted-vs-actual gap",
    );
    let subs_values: Vec<u64> = (100..=500).step_by(50).map(|v| v as u64).collect();
    let page_values: Vec<u64> = (10..=50).step_by(5).map(|v| v as u64).collect();
    let executions = scaled(80, 15) as usize;

    // ---- train the operator models (§6.1) on a production-like cluster
    let train_cluster = bench_cluster(10, 0xF06);
    let config = TrainConfig {
        intervals: scaled(20, 5) as usize,
        samples_per_interval: scaled(10, 4) as usize,
        ..TrainConfig::default()
    };
    let models = train(&train_cluster, &config);
    println!(
        "# trained {} samples over {} intervals",
        models.total_samples(),
        models.n_intervals()
    );
    let predictor = SloPredictor::new(models);

    // ---- predicted heatmap
    let optimizer = Optimizer::scale_independent();
    let heat = Heatmap::build(
        &predictor,
        "subscriptions per user",
        "records per page",
        subs_values.clone(),
        page_values.clone(),
        |subs, page| {
            let cat = catalog_with_limit(subs);
            optimizer
                .compile(&cat, &parse_select(&thoughtstream_sql(page)).unwrap())
                .unwrap()
        },
    );
    println!("{}", heat.render());
    println!(
        "# assistant: with SLO 500 ms and 10 records/page, the largest safe \
         CARDINALITY LIMIT is {:?}",
        heat.suggest_row_limit(10, 500.0)
    );

    // ---- actual measurements on a separate identically-configured cluster
    let cluster = bench_cluster(10, 0xF06 + 1);
    let db = Database::new(cluster);
    db.execute_ddl("CREATE TABLE users (username VARCHAR(24) NOT NULL, PRIMARY KEY (username))")
        .unwrap();
    db.execute_ddl(
        "CREATE TABLE subscriptions ( \
           owner VARCHAR(24) NOT NULL, target VARCHAR(24) NOT NULL, approved BOOL, \
           PRIMARY KEY (owner, target), CARDINALITY LIMIT 500 (owner))",
    )
    .unwrap();
    db.execute_ddl(
        "CREATE TABLE thoughts ( \
           owner VARCHAR(24) NOT NULL, timestamp TIMESTAMP NOT NULL, text VARCHAR(140), \
           PRIMARY KEY (owner, timestamp))",
    )
    .unwrap();
    // target pool with enough thoughts to fill any page size
    let n_targets = 2_000usize;
    let thoughts_per = 50usize;
    let uname = |i: usize| format!("t{i:06}");
    let group_user = |s: u64| format!("reader{s:04}");
    db.bulk_load(
        "users",
        (0..n_targets)
            .map(uname)
            .chain(subs_values.iter().map(|&s| group_user(s)))
            .map(|u| Tuple::new(vec![Value::Varchar(u)])),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xF06);
    let mut subs_rows = Vec::new();
    for &s in &subs_values {
        let mut seen = std::collections::BTreeSet::new();
        while (seen.len() as u64) < s {
            seen.insert(rng.gen_range(0..n_targets));
        }
        for t in seen {
            subs_rows.push(Tuple::new(vec![
                Value::Varchar(group_user(s)),
                Value::Varchar(uname(t)),
                Value::Bool(true),
            ]));
        }
    }
    db.bulk_load("subscriptions", subs_rows).unwrap();
    db.bulk_load(
        "thoughts",
        (0..n_targets).flat_map(|i| {
            (0..thoughts_per).map(move |p| {
                Tuple::new(vec![
                    Value::Varchar(uname(i)),
                    Value::Timestamp(1_000_000_000 + (i * 7919 + p * 613) as i64),
                    Value::Varchar(format!("thought {p}")),
                ])
            })
        }),
    )
    .unwrap();
    db.cluster().rebalance();

    println!("subs\tpage\tpredicted_p99_ms\tactual_p99_ms");
    let mut deltas = Vec::new();
    let mut clock: u64 = 0;
    for (ri, &s) in subs_values.iter().enumerate() {
        for (ci, &page) in page_values.iter().enumerate() {
            let prepared = db.prepare(&thoughtstream_sql(page)).unwrap();
            let mut params = Params::new();
            params.set(0, Value::Varchar(group_user(s)));
            let mut lat = Vec::with_capacity(executions);
            for _run in 0..executions {
                // unloaded: drain between executions
                let mut session = Session::at(clock);
                let t0 = session.begin();
                db.execute_with(
                    &mut session,
                    &prepared,
                    &params,
                    ExecStrategy::Parallel,
                    None,
                )
                .unwrap();
                lat.push(session.elapsed_since(t0));
                clock = session.now + 10_000;
            }
            let actual = p99_ms(&mut lat);
            let predicted = heat.cells[ri][ci];
            deltas.push(predicted - actual);
            println!("{s}\t{page}\t{predicted:.0}\t{actual:.0}");
        }
    }
    let avg_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let conservative = deltas.iter().filter(|d| **d >= -2.0).count();
    println!(
        "# avg (predicted - actual) = {avg_delta:+.1} ms over {} cells (paper: +13 ms); \
         {conservative}/{} cells conservative within 2 ms",
        deltas.len(),
        deltas.len()
    );
}
