//! Table 1 — for every TPC-W and SCADr query: the modifications/indexes the
//! compiler reports and the *actual vs predicted* 99th-percentile response
//! time (§8.2, §8.6). The paper's prediction is conservative (slightly
//! above actual) for most queries; the same shape should hold here.

use piql_bench::{bench_cluster, header, p99_ms, scaled};
use piql_core::plan::params::Params;
use piql_core::plan::physical::PhysicalPlan;
use piql_core::value::Value;
use piql_engine::{Database, ExecStrategy, Prepared};
use piql_kv::Session;
use piql_predict::{train, SloPredictor, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Secondary indexes a plan actually reads (the "Additional Indexes"
/// column).
fn used_indexes(prepared: &Prepared) -> String {
    let mut names = Vec::new();
    for op in prepared.compiled.physical.remote_ops() {
        let secondary = match op {
            PhysicalPlan::IndexScan { spec, .. } => spec.index.secondary.as_ref(),
            PhysicalPlan::SortedIndexJoin { spec, .. } => spec.index.secondary.as_ref(),
            _ => None,
        };
        if let Some(idx) = secondary {
            names.push(idx.name.clone());
        }
    }
    names.dedup();
    if names.is_empty() {
        "-".into()
    } else {
        names.join(", ")
    }
}

fn modifications(prepared: &Prepared) -> String {
    if prepared.compiled.notes.is_empty() {
        "-".into()
    } else {
        prepared.compiled.notes.join("; ")
    }
}

fn measure(
    db: &Database,
    prepared: &Prepared,
    mut gen_params: impl FnMut(&mut StdRng) -> Params,
    executions: usize,
    seed: u64,
    clock: &mut u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lat = Vec::with_capacity(executions);
    for _run in 0..executions {
        let params = gen_params(&mut rng);
        // unloaded measurement: start after the previous query drained
        let mut session = Session::at(*clock);
        let t0 = session.begin();
        db.execute_with(
            &mut session,
            prepared,
            &params,
            ExecStrategy::Parallel,
            None,
        )
        .unwrap();
        lat.push(session.elapsed_since(t0));
        *clock = session.now + 10_000;
    }
    p99_ms(&mut lat)
}

fn main() {
    header(
        "table1",
        "Table 1 (§8.2, §8.6)",
        "per-query modifications, indexes, actual vs predicted p99 (ms)",
    );
    let executions = scaled(600, 60) as usize;

    // ---- shared operator models (cluster-config specific, not app
    // specific, §6.1)
    let train_cluster = bench_cluster(10, 0x7A1);
    let tc = TrainConfig {
        intervals: scaled(20, 5) as usize,
        samples_per_interval: scaled(10, 4) as usize,
        ..TrainConfig::default()
    };
    let models = train(&train_cluster, &tc);
    let predictor = SloPredictor::new(models);
    println!(
        "benchmark\tquery\tmodifications\tadditional_indexes\tactual_p99_ms\tpredicted_p99_ms"
    );

    // ================= TPC-W =================
    {
        use piql_workloads::tpcw::*;
        let cluster = bench_cluster(10, 0x7A2);
        let db = Database::new(cluster);
        let config = TpcwConfig {
            items: if piql_bench::quick() { 2_000 } else { 10_000 },
            customers_per_node: 100,
            ..Default::default()
        };
        let (n_customers, n_items, n_orders) = setup(&db, &config, 10).unwrap();
        let w = TpcwWorkload::new(&db, n_customers, n_items, n_orders).unwrap();
        // a few carts so the Buy Request query has data
        let mut session = Session::new();
        for cart in 0..20 {
            let mut p = Params::new();
            p.set(0, Value::Int(cart));
            p.set(1, Value::Timestamp(0));
            db.execute_dml(
                &mut session,
                "INSERT INTO shopping_cart (sc_id, sc_time) VALUES (<c>, <t>)",
                &p,
            )
            .unwrap();
            for l in 0..3 {
                let mut p = Params::new();
                p.set(0, Value::Int(cart));
                p.set(1, Value::Int(cart * 17 + l));
                p.set(2, Value::Int(1));
                db.execute_dml(
                    &mut session,
                    "INSERT INTO shopping_cart_line (scl_sc_id, scl_i_id, scl_qty) \
                     VALUES (<c>, <i>, <q>)",
                    &p,
                )
                .unwrap();
            }
        }

        let q = &w.queries;
        type Gen<'a> = Box<dyn FnMut(&mut StdRng) -> Params + 'a>;
        let rows: Vec<(&str, &Prepared, Gen)> = vec![
            (
                "Home WI",
                &q.home_customer,
                Box::new(|rng| w.random_params(KIND_HOME, rng)),
            ),
            (
                "Home WI (promotions)",
                &q.home_promotions,
                Box::new(|rng| {
                    let mut p = Params::new();
                    p.set(
                        0,
                        (0..5)
                            .map(|_| Value::Int(rng.gen_range(0..n_items) as i32))
                            .collect::<Vec<_>>(),
                    );
                    p
                }),
            ),
            (
                "New Products WI",
                &q.new_products,
                Box::new(|rng| w.random_params(KIND_NEW_PRODUCTS, rng)),
            ),
            (
                "Product Detail WI",
                &q.product_detail,
                Box::new(|rng| w.random_params(KIND_PRODUCT_DETAIL, rng)),
            ),
            (
                "Search By Author WI",
                &q.search_by_author,
                Box::new(|rng| w.random_params(KIND_SEARCH_AUTHOR, rng)),
            ),
            (
                "Search By Title WI",
                &q.search_by_title,
                Box::new(|rng| w.random_params(KIND_SEARCH_TITLE, rng)),
            ),
            (
                "Order Display WI Get Customer",
                &q.order_display_customer,
                Box::new(|rng| w.random_params(KIND_HOME, rng)),
            ),
            (
                "Order Display WI Get Last Order",
                &q.order_display_last_order,
                Box::new(|rng| w.random_params(KIND_HOME, rng)),
            ),
            (
                "Order Display WI Get OrderLines",
                &q.order_display_lines,
                Box::new(move |rng| {
                    let mut p = Params::new();
                    p.set(
                        0,
                        Value::Int(initial_order_id(rng.gen_range(0..n_orders), n_orders)),
                    );
                    p
                }),
            ),
            (
                "Buy Request WI",
                &q.buy_request_cart,
                Box::new(|rng| {
                    let mut p = Params::new();
                    p.set(0, Value::Int(rng.gen_range(0..20)));
                    p
                }),
            ),
        ];
        // start measuring after the cart-setup writes have drained
        let mut clock: u64 = session.now + piql_kv::SECONDS;
        for (label, prepared, gen) in rows {
            let actual = measure(&db, prepared, gen, executions, 0x7A3, &mut clock);
            let predicted = predictor.predict(&prepared.compiled).max_p99_ms;
            println!(
                "TPC-W\t{label}\t{}\t{}\t{actual:.0}\t{predicted:.0}",
                modifications(prepared),
                used_indexes(prepared)
            );
        }
    }

    // ================= SCADr =================
    {
        use piql_workloads::scadr::*;
        let cluster = bench_cluster(10, 0x7A4);
        let db = Database::new(cluster);
        let config = ScadrConfig::default();
        let n_users = setup(&db, &config, 10).unwrap();
        let w = ScadrWorkload::new(&db, &config, n_users).unwrap();
        let mut clock: u64 = 0;
        for (label, prepared) in w.all_prepared() {
            let actual = measure(
                &db,
                prepared,
                |rng| {
                    let mut p = Params::new();
                    p.set(0, Value::Varchar(username(rng.gen_range(0..n_users))));
                    p
                },
                executions,
                0x7A5,
                &mut clock,
            );
            let predicted = predictor.predict(&prepared.compiled).max_p99_ms;
            println!(
                "SCADr\t{label}\t{}\t{}\t{actual:.0}\t{predicted:.0}",
                modifications(prepared),
                used_indexes(prepared)
            );
        }
    }
    println!("# paper shape: predictions slightly above actuals for most queries (conservative), never untrustworthily far off");
}
