//! Figure 12 — TPC-W p99 response time under the three execution
//! strategies (§8.5): LazyExecutor (tuple-at-a-time), SimpleExecutor
//! (batched, sequential), ParallelExecutor (batched + intra-query
//! parallelism). Paper: 639 / 451 / 331 ms on 10 storage nodes with 5
//! client machines.

use piql_bench::{bench_cluster, header, row, scaled};
use piql_engine::{Database, ExecStrategy};
use piql_kv::{KvRequest, KvStore, LiveCluster, LiveConfig, RequestRound, Session, SECONDS};
use piql_workloads::driver::{run_closed_loop, DriverConfig};
use piql_workloads::tpcw::{setup, TpcwConfig, TpcwWorkload};

fn main() {
    header(
        "fig12",
        "Figure 12 (§8.5)",
        "TPC-W p99 web-interaction latency by execution strategy, 10 storage nodes",
    );
    let duration = scaled(20, 6) * SECONDS;
    let results: Vec<(ExecStrategy, f64, f64)> = [
        ExecStrategy::Lazy,
        ExecStrategy::Simple,
        ExecStrategy::Parallel,
    ]
    .into_iter()
    .map(|strategy| {
        // a fresh, identically seeded cluster per strategy
        let cluster = bench_cluster(10, 0xF12);
        let db = Database::new(cluster);
        let config = TpcwConfig {
            items: if piql_bench::quick() { 2_000 } else { 10_000 },
            customers_per_node: 100,
            ..Default::default()
        };
        let (c, i, o) = setup(&db, &config, 10).unwrap();
        let workload = TpcwWorkload::new(&db, c, i, o).unwrap();
        let cfg = DriverConfig {
            // 5 client machines x 10 threads (§8.5)
            sessions: 50,
            duration_us: duration,
            warmup_us: 2 * SECONDS,
            strategy,
            seed: 0xF12,
        };
        let m = run_closed_loop(&db, &workload, &cfg).unwrap();
        (strategy, m.quantile_ms(0.99), m.throughput_per_sec())
    })
    .collect();

    println!("strategy\tp99_ms\twips");
    for (strategy, p99, wips) in &results {
        row(&[
            ("strategy", strategy.name().to_string()),
            ("p99_ms", format!("{p99:.0}")),
            ("wips", format!("{wips:.0}")),
        ]);
    }
    let lazy = results[0].1;
    let simple = results[1].1;
    let parallel = results[2].1;
    println!(
        "# paper shape: Parallel (331) < Simple (451) < Lazy (639); measured ordering {}",
        if parallel < simple && simple < lazy {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    live_round_fanout();
}

/// The same §8.5 story on the *real* backend: a 10-request `LiveCluster`
/// round with injected per-request service time, executed sequentially
/// (pool disabled — the pre-fan-out behavior) vs scattered over the
/// shared worker pool. Fanned rounds complete at ~max of the per-request
/// latencies, sequential at ~sum.
fn live_round_fanout() {
    println!();
    header(
        "fig12-live",
        "Figure 12 (§8.5), live backend",
        "mean 10-request round latency on LiveCluster, sequential vs fanned-out",
    );
    let delay_us: u64 = if piql_bench::quick() { 2_000 } else { 5_000 };
    let rounds = scaled(50, 10);
    println!("mode\tround_ms\tspeedup");
    let mut sequential_ms = 0.0f64;
    for (mode, pool_threads) in [("sequential", 0usize), ("fanned", 16)] {
        let cluster = LiveCluster::new(LiveConfig {
            shards_per_namespace: 16,
            pool_threads,
            request_delay_us: delay_us,
        });
        let ns = cluster.namespace("fig12/live");
        for i in 0..10u8 {
            cluster.bulk_put(ns, vec![i], vec![i; 64]);
        }
        let mut session = Session::new();
        let t0 = std::time::Instant::now();
        for _ in 0..rounds {
            let round: RequestRound = (0..10u8)
                .map(|i| KvRequest::Get { ns, key: vec![i] })
                .collect();
            cluster.execute_round(&mut session, round);
        }
        let round_ms = t0.elapsed().as_secs_f64() * 1e3 / rounds as f64;
        let speedup = if mode == "sequential" {
            sequential_ms = round_ms;
            1.0
        } else {
            sequential_ms / round_ms
        };
        row(&[
            ("mode", mode.to_string()),
            ("round_ms", format!("{round_ms:.2}")),
            ("speedup", format!("{speedup:.1}x")),
        ]);
    }
    println!(
        "# expected: fanned ≈ one service time ({:.0} ms), sequential ≈ ten",
        delay_us as f64 / 1e3
    );
}
