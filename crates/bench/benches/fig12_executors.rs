//! Figure 12 — TPC-W p99 response time under the three execution
//! strategies (§8.5): LazyExecutor (tuple-at-a-time), SimpleExecutor
//! (batched, sequential), ParallelExecutor (batched + intra-query
//! parallelism). Paper: 639 / 451 / 331 ms on 10 storage nodes with 5
//! client machines.

use piql_bench::{bench_cluster, header, row, scaled};
use piql_engine::{Database, ExecStrategy};
use piql_kv::SECONDS;
use piql_workloads::driver::{run_closed_loop, DriverConfig};
use piql_workloads::tpcw::{setup, TpcwConfig, TpcwWorkload};

fn main() {
    header(
        "fig12",
        "Figure 12 (§8.5)",
        "TPC-W p99 web-interaction latency by execution strategy, 10 storage nodes",
    );
    let duration = scaled(20, 6) * SECONDS;
    let results: Vec<(ExecStrategy, f64, f64)> = [
        ExecStrategy::Lazy,
        ExecStrategy::Simple,
        ExecStrategy::Parallel,
    ]
    .into_iter()
    .map(|strategy| {
        // a fresh, identically seeded cluster per strategy
        let cluster = bench_cluster(10, 0xF12);
        let db = Database::new(cluster);
        let config = TpcwConfig {
            items: if piql_bench::quick() { 2_000 } else { 10_000 },
            customers_per_node: 100,
            ..Default::default()
        };
        let (c, i, o) = setup(&db, &config, 10).unwrap();
        let workload = TpcwWorkload::new(&db, c, i, o).unwrap();
        let cfg = DriverConfig {
            // 5 client machines x 10 threads (§8.5)
            sessions: 50,
            duration_us: duration,
            warmup_us: 2 * SECONDS,
            strategy,
            seed: 0xF12,
        };
        let m = run_closed_loop(&db, &workload, &cfg).unwrap();
        (strategy, m.quantile_ms(0.99), m.throughput_per_sec())
    })
    .collect();

    println!("strategy\tp99_ms\twips");
    for (strategy, p99, wips) in &results {
        row(&[
            ("strategy", strategy.name().to_string()),
            ("p99_ms", format!("{p99:.0}")),
            ("wips", format!("{wips:.0}")),
        ]);
    }
    let lazy = results[0].1;
    let simple = results[1].1;
    let parallel = results[2].1;
    println!(
        "# paper shape: Parallel (331) < Simple (451) < Lazy (639); measured ordering {}",
        if parallel < simple && simple < lazy {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
