//! Figure 1 — query scaling classes (§2): the amount of relevant data a
//! query touches as the database grows. Class I stays constant, Class II is
//! bounded by a cardinality constraint, Class III grows linearly, Class IV
//! super-linearly. Measured as key/value-store entries shipped per query
//! (Class III/IV run through the cost-based baseline — the scale-
//! independent compiler rightly refuses them).

use piql_bench::{header, row};
use piql_core::catalog::Statistics;
use piql_core::opt::{Optimizer, QueryClass};
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{ClusterConfig, Session, SimCluster};
use std::sync::Arc;

fn main() {
    header(
        "fig01",
        "Figure 1 (§2)",
        "entries touched per query vs database size, one query per class",
    );
    let sizes: Vec<usize> = vec![500, 1_000, 2_000, 4_000, 8_000];

    println!(
        "users\tclass_I_pk_lookup\tclass_II_bounded_subs\tclass_III_town_scan\tclass_IV_self_join"
    );
    for &n_users in &sizes {
        let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(4)));
        let db = Database::new(cluster);
        db.execute_ddl(
            "CREATE TABLE users (username VARCHAR(24) NOT NULL, home_town VARCHAR(24), \
             PRIMARY KEY (username))",
        )
        .unwrap();
        db.execute_ddl(
            "CREATE TABLE subscriptions (owner VARCHAR(24) NOT NULL, \
             target VARCHAR(24) NOT NULL, PRIMARY KEY (owner, target), \
             FOREIGN KEY (owner) REFERENCES users, \
             FOREIGN KEY (target) REFERENCES users, \
             CARDINALITY LIMIT 20 (owner))",
        )
        .unwrap();
        let uname = |i: usize| format!("u{i:07}");
        db.bulk_load(
            "users",
            (0..n_users).map(|i| {
                Tuple::new(vec![
                    Value::Varchar(uname(i)),
                    Value::Varchar("berkeley".into()),
                ])
            }),
        )
        .unwrap();
        db.bulk_load(
            "subscriptions",
            (0..n_users).flat_map(|i| {
                (1..=10usize).map(move |d| {
                    Tuple::new(vec![
                        Value::Varchar(uname(i)),
                        Value::Varchar(uname((i + d) % n_users)),
                    ])
                })
            }),
        )
        .unwrap();
        db.cluster().rebalance();

        let mut params = Params::new();
        params.set(0, Value::Varchar(uname(n_users / 2)));

        let entries_for = |sql: &str, cost_based: bool| -> (u64, QueryClass) {
            let prepared = if cost_based {
                db.prepare_with(sql, &Optimizer::cost_based(Statistics::new()))
                    .unwrap()
            } else {
                db.prepare(sql).unwrap()
            };
            let mut s = Session::new();
            db.execute(&mut s, &prepared, &params).unwrap();
            (
                s.stats.entries + s.stats.logical_requests,
                prepared.compiled.class,
            )
        };

        // Class I: pk lookup — constant
        let (c1, k1) = entries_for("SELECT * FROM users WHERE username = <u>", false);
        // Class II: bounded by CARDINALITY LIMIT 20
        let (c2, k2) = entries_for("SELECT * FROM subscriptions WHERE owner = <u>", false);
        // Class III: all users in a town — linear (cost-based only)
        let (c3, k3) = entries_for("SELECT * FROM users WHERE home_town = 'berkeley'", true);
        // Class IV: who-subscribes-to-my-subscribers self join — super-linear
        let (c4, k4) = entries_for(
            "SELECT a.owner, b.owner FROM subscriptions a JOIN subscriptions b \
             WHERE b.target = a.owner",
            true,
        );
        assert_eq!(k1, QueryClass::Constant);
        assert_eq!(k2, QueryClass::Bounded);
        assert_eq!(k3, QueryClass::Linear);
        assert_eq!(k4, QueryClass::SuperLinear);
        row(&[
            ("users", n_users.to_string()),
            ("class_I", c1.to_string()),
            ("class_II", c2.to_string()),
            ("class_III", c3.to_string()),
            ("class_IV", c4.to_string()),
        ]);
    }
    println!("# paper shape: I and II flat; III grows ∝ size; IV grows faster than size");
    println!("# the scale-independent compiler accepts only classes I and II");
}
