//! Criterion microbenchmarks: the engine-side costs that must stay small
//! for the library-centric architecture to make sense (compilation,
//! codecs, histogram math, end-to-end execution against an instant store).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use piql_core::catalog::{Catalog, TableDef};
use piql_core::codec::key;
use piql_core::codec::row;
use piql_core::opt::Optimizer;
use piql_core::parser::parse_select;
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::{DataType, Value};
use piql_engine::Database;
use piql_kv::{ClusterConfig, Session, SimCluster};
use piql_predict::LatencyHistogram;
use std::hint::black_box;
use std::sync::Arc;

const THOUGHTSTREAM: &str = "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
     WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
     ORDER BY thoughts.timestamp DESC LIMIT 10";

fn scadr_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("subscriptions")
            .column("owner", DataType::Varchar(24))
            .column("target", DataType::Varchar(24))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(100, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(24))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .build(),
    )
    .unwrap();
    cat
}

fn bench_codecs(c: &mut Criterion) {
    let values = vec![
        Value::Varchar("someuser0042".into()),
        Value::Timestamp(1_300_000_000_000_000),
        Value::Int(-123),
    ];
    c.bench_function("key_encode_composite", |b| {
        b.iter(|| key::encode_key_asc(black_box(&values)).unwrap())
    });
    let encoded = key::encode_key_asc(&values).unwrap();
    let types = [DataType::Varchar(24), DataType::Timestamp, DataType::Int];
    c.bench_function("key_decode_composite", |b| {
        b.iter(|| key::decode_key(black_box(&encoded), &types, &[]).unwrap())
    });
    let tuple = Tuple::new(vec![
        Value::Varchar("user".into()),
        Value::Timestamp(99),
        Value::Varchar("the quick brown fox jumps over the lazy dog".into()),
    ]);
    c.bench_function("row_encode", |b| {
        b.iter(|| row::encode_tuple(black_box(&tuple)))
    });
    let bytes = row::encode_tuple(&tuple);
    c.bench_function("row_decode", |b| {
        b.iter(|| row::decode_tuple(black_box(&bytes)).unwrap())
    });
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("parse_thoughtstream", |b| {
        b.iter(|| parse_select(black_box(THOUGHTSTREAM)).unwrap())
    });
    let cat = scadr_catalog();
    let stmt = parse_select(THOUGHTSTREAM).unwrap();
    let opt = Optimizer::scale_independent();
    c.bench_function("compile_thoughtstream", |b| {
        b.iter(|| opt.compile(black_box(&cat), black_box(&stmt)).unwrap())
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut h1 = LatencyHistogram::standard();
    let mut h2 = LatencyHistogram::standard();
    for i in 0..2_000u64 {
        h1.record((3_000 + i * 17 % 40_000) as piql_kv::Micros);
        h2.record((8_000 + i * 23 % 60_000) as piql_kv::Micros);
    }
    c.bench_function("histogram_convolve", |b| {
        b.iter(|| black_box(&h1).convolve(black_box(&h2)))
    });
}

fn bench_execution(c: &mut Criterion) {
    let cluster = Arc::new(SimCluster::new(ClusterConfig::instant(4)));
    let db = Database::new(cluster);
    db.execute_ddl(
        "CREATE TABLE subscriptions (owner VARCHAR(24) NOT NULL, target VARCHAR(24) NOT NULL, \
         approved BOOL, PRIMARY KEY (owner, target), CARDINALITY LIMIT 100 (owner))",
    )
    .unwrap();
    db.execute_ddl(
        "CREATE TABLE thoughts (owner VARCHAR(24) NOT NULL, timestamp TIMESTAMP NOT NULL, \
         text VARCHAR(140), PRIMARY KEY (owner, timestamp))",
    )
    .unwrap();
    let uname = |i: usize| format!("u{i:05}");
    db.bulk_load(
        "subscriptions",
        (0..200usize).flat_map(|i| {
            (1..=10usize).map(move |d| {
                Tuple::new(vec![
                    Value::Varchar(format!("u{i:05}")),
                    Value::Varchar(format!("u{:05}", (i + d) % 200)),
                    Value::Bool(true),
                ])
            })
        }),
    )
    .unwrap();
    db.bulk_load(
        "thoughts",
        (0..200usize).flat_map(|i| {
            (0..20usize).map(move |p| {
                Tuple::new(vec![
                    Value::Varchar(format!("u{i:05}")),
                    Value::Timestamp((i * 131 + p) as i64),
                    Value::Varchar("hello world".into()),
                ])
            })
        }),
    )
    .unwrap();
    db.cluster().rebalance();
    let prepared = db.prepare(THOUGHTSTREAM).unwrap();
    let mut params = Params::new();
    params.set(0, Value::Varchar(uname(42)));
    c.bench_function("execute_thoughtstream_instant_cluster", |b| {
        b.iter_batched(
            Session::new,
            |mut session| {
                db.execute(&mut session, black_box(&prepared), black_box(&params))
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_codecs,
    bench_compiler,
    bench_histogram,
    bench_execution
);
criterion_main!(benches);
