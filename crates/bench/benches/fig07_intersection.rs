//! Figure 7 — the subscriber-intersection query: scale-independent bounded
//! random lookups vs the cost-based optimizer's unbounded index scan, p99
//! response time as the target user's popularity grows (§8.3).
//!
//! Expected shape: the unbounded plan wins for unpopular users (up to ~4x
//! in the paper), grows linearly with subscriber count, and blows through
//! the SLO for popular users; the bounded plan stays flat.

use piql_bench::{bench_cluster_calm, header, p99_ms, row, scaled};
use piql_core::catalog::{Statistics, TableStats};
use piql_core::opt::Optimizer;
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::{Database, ExecStrategy};
use piql_kv::Session;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FRIENDS: usize = 50;
const QUERY: &str = "SELECT owner, target FROM subscriptions \
     WHERE target = <target_user> AND owner IN [2: friends MAX 50]";

fn main() {
    header(
        "fig07",
        "Figure 7 (§8.3)",
        "subscriber intersection: p99 (ms) of 2 plans vs #subscribers; \
         bounded = PIQL scale-independent, unbounded = cost-based baseline",
    );
    let popularity: Vec<usize> = vec![10, 100, 500, 1000, 2000, 3000, 4000, 5000];
    let executions = scaled(2_000, 200) as usize;

    let cluster = bench_cluster_calm(10, 0x716);
    let db = Database::new(cluster);
    db.execute_ddl("CREATE TABLE users (username VARCHAR(24) NOT NULL, PRIMARY KEY (username))")
        .unwrap();
    db.execute_ddl(
        "CREATE TABLE subscriptions ( \
           owner VARCHAR(24) NOT NULL, target VARCHAR(24) NOT NULL, approved BOOL, \
           PRIMARY KEY (owner, target), \
           FOREIGN KEY (owner) REFERENCES users, \
           FOREIGN KEY (target) REFERENCES users, \
           CARDINALITY LIMIT 50 (owner) )",
    )
    .unwrap();

    // one celebrity per popularity level, each with exactly N subscribers
    let uname = |i: usize| format!("u{i:07}");
    let celeb = |n: usize| format!("celebrity{n:05}");
    let max_pop = *popularity.iter().max().unwrap();
    db.bulk_load(
        "users",
        (0..max_pop)
            .map(uname)
            .chain(popularity.iter().map(|&n| celeb(n)))
            .map(|u| Tuple::new(vec![Value::Varchar(u)])),
    )
    .unwrap();
    let mut subs = Vec::new();
    for &n in &popularity {
        for i in 0..n {
            subs.push(Tuple::new(vec![
                Value::Varchar(uname(i)),
                Value::Varchar(celeb(n)),
                Value::Bool(true),
            ]));
        }
    }
    db.bulk_load("subscriptions", subs).unwrap();
    db.cluster().rebalance();

    // the two optimizers: PIQL, and cost-based with Twitter-2009-ish stats
    // (average user has ~126 followers -> the scan looks cheap on average)
    let bounded = db.prepare(QUERY).unwrap();
    let mut stats = Statistics::new();
    let subs_table = db.catalog().table("subscriptions").unwrap().id;
    let mut ts = TableStats::with_rows(popularity.iter().sum::<usize>() as u64);
    ts.set_avg_group_size("target", 126.0);
    stats.set_table(subs_table, ts);
    let unbounded = db
        .prepare_with(QUERY, &Optimizer::cost_based(stats))
        .unwrap();
    assert!(bounded.compiled.bounds.guaranteed);
    assert!(!unbounded.compiled.bounds.guaranteed);
    println!(
        "# bounded plan: {} requests max | unbounded plan: est. {} requests at avg popularity",
        bounded.compiled.bounds.requests, unbounded.compiled.bounds.requests
    );

    let mut rng = StdRng::seed_from_u64(9);
    println!("subscribers\tp99_unbounded_scan_ms\tp99_bounded_lookup_ms");
    // unloaded measurement: each execution starts after the previous one
    // drained, so queries see the cluster's intrinsic latency, not a queue
    let mut clock: u64 = 0;
    for &n in &popularity {
        let mut lat_b = Vec::with_capacity(executions);
        let mut lat_u = Vec::with_capacity(executions);
        for _run in 0..executions {
            let friends: Vec<Value> = (0..FRIENDS)
                .map(|_| Value::Varchar(uname(rng.gen_range(0..max_pop))))
                .collect();
            let mut params = Params::new();
            params.set(0, Value::Varchar(celeb(n)));
            params.set(1, friends);
            let mut s = Session::at(clock);
            let t0 = s.begin();
            db.execute_with(&mut s, &bounded, &params, ExecStrategy::Parallel, None)
                .unwrap();
            lat_b.push(s.elapsed_since(t0));
            clock = s.now + 10_000;
            let mut s = Session::at(clock);
            let t0 = s.begin();
            db.execute_with(&mut s, &unbounded, &params, ExecStrategy::Parallel, None)
                .unwrap();
            lat_u.push(s.elapsed_since(t0));
            clock = s.now + 10_000;
        }
        row(&[
            ("subscribers", n.to_string()),
            (
                "p99_unbounded_scan_ms",
                format!("{:.1}", p99_ms(&mut lat_u)),
            ),
            (
                "p99_bounded_lookup_ms",
                format!("{:.1}", p99_ms(&mut lat_b)),
            ),
        ]);
    }
    println!("# paper shape: unbounded grows ~linearly and exceeds the bounded plan past the crossover; bounded stays flat (SLO-safe)");
}
