//! Shard rebalancing on `LiveCluster` — a 90%-skewed key prefix (the
//! "common username prefix" failure mode) under concurrent point traffic:
//! max-shard entry/op share and full-prefix scan latency on the static
//! leading-byte stripes vs the learned quantile split points.

use piql_bench::{header, row, scaled};
use piql_kv::{KvRequest, KvStore, LiveCluster, LiveConfig, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 16;
const WORKERS: usize = 8;

fn skewed_key(i: u64) -> Vec<u8> {
    // 90% of keys share the "user" prefix; the rest spread by leading byte
    let mut key = if !i.is_multiple_of(10) {
        b"user/".to_vec()
    } else {
        vec![(i % 251) as u8, b'/']
    };
    key.extend_from_slice(&i.to_be_bytes());
    key
}

fn main() {
    header(
        "rebalance",
        "LiveCluster shard rebalancing",
        "90%-skewed prefix workload: max-shard shares and prefix-scan latency, striped vs learned split points",
    );
    let keys = scaled(200_000, 20_000);
    let scans = scaled(200, 40);
    let cluster = Arc::new(LiveCluster::new(LiveConfig {
        shards_per_namespace: SHARDS,
        ..Default::default()
    }));
    let ns = cluster.namespace("bench/users");
    for i in 0..keys {
        cluster.bulk_put(ns, skewed_key(i), vec![0u8; 64]);
    }

    println!("phase\tmax_entry_share\tmax_op_share\tscan_ms\tpoint_qps");
    for phase in ["striped", "rebalanced"] {
        if phase == "rebalanced" {
            let t0 = std::time::Instant::now();
            cluster.rebalance();
            println!("# rebalance took {:?}", t0.elapsed());
        }

        // concurrent point traffic over the skewed keys...
        let stop = Arc::new(AtomicBool::new(false));
        let point_ops = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let cluster = cluster.clone();
                let stop = stop.clone();
                let point_ops = point_ops.clone();
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBA1A + w as u64);
                    let mut s = Session::new();
                    while !stop.load(Ordering::Relaxed) {
                        let i = rng.gen_range(0..keys);
                        let round = vec![
                            KvRequest::Get {
                                ns,
                                key: skewed_key(i),
                            },
                            KvRequest::Put {
                                ns,
                                key: skewed_key(i),
                                value: vec![1u8; 64],
                            },
                        ];
                        cluster.execute_round(&mut s, round);
                        point_ops.fetch_add(2, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        // ...let the point traffic reach steady state before timing...
        std::thread::sleep(std::time::Duration::from_millis(100));
        point_ops.store(0, Ordering::Relaxed);

        // ...while the main thread times hot-prefix scans under that load
        let mut s = Session::new();
        let t0 = std::time::Instant::now();
        for _ in 0..scans {
            let r = cluster.execute_round(
                &mut s,
                vec![KvRequest::GetRange {
                    ns,
                    start: b"user/".to_vec(),
                    end: Some(b"user0".to_vec()),
                    limit: Some(1_000),
                    reverse: false,
                }],
            );
            assert_eq!(r[0].expect_entries().len(), 1_000);
        }
        let window = t0.elapsed();
        let scan_ms = window.as_secs_f64() * 1e3 / scans as f64;
        let point_qps = point_ops.load(Ordering::Relaxed) as f64 / window.as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker panicked");
        }

        let balance = cluster
            .balance()
            .into_iter()
            .find(|b| b.name == "bench/users")
            .expect("bench namespace reported");
        row(&[
            ("phase", phase.to_string()),
            (
                "max_entry_share",
                format!("{:.3}", balance.max_entry_share()),
            ),
            ("max_op_share", format!("{:.3}", balance.max_op_share())),
            ("scan_ms", format!("{scan_ms:.3}")),
            ("point_qps", format!("{point_qps:.0}")),
        ]);
    }
    println!(
        "# expected: striped piles ~0.9 of entries/ops onto one of {SHARDS} shards; \
         rebalanced ≈ 1/{SHARDS} each"
    );
    println!(
        "# point_qps multiplies once the hot shard's lock stops serializing writes; \
         the hot-prefix scan crosses more shards after the re-split (and competes \
         with that much more traffic), so its latency is the price of the spread"
    );
}
