//! Cost of the live-model feedback loop.
//!
//! Two questions a serving deployment cares about:
//!
//! 1. **Hot-path overhead** — what does tagging + sampling every executed
//!    round cost the query path? (Answer: one striped-mutex push per
//!    round; measured here as executions/s with the sink filling vs being
//!    drained.)
//! 2. **Sweep cost** — how long does one re-validation sweep take as the
//!    number of registered statements and buffered samples grows? The
//!    sweep re-predicts every statement (compile + convolve), so it scales
//!    with registry size, not traffic.
//!
//! `PIQL_QUICK=1` shrinks the run.

use piql_bench::{header, row, scaled};
use piql_core::plan::params::Params;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig, Session};
use piql_server::testkit::linear_predictor;
use piql_server::{SloConfig, StatementRegistry};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::Arc;
use std::time::Instant;

fn build(n_statements: u64) -> (Arc<LiveCluster>, Arc<StatementRegistry<LiveCluster>>) {
    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster.clone()));
    let config = ScadrConfig {
        users_per_node: 100,
        thoughts_per_user: 12,
        subscriptions_per_user: 6,
        max_subscriptions: 100,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 3),
        SloConfig {
            slo_ms: 80.0,
            interval_confidence: 1.0,
            allow_degrade: true,
        },
    ));
    for i in 0..n_statements {
        registry
            .register(
                &format!("find_user_{i}"),
                "SELECT * FROM users WHERE username = <u>",
            )
            .unwrap();
    }
    (cluster, registry)
}

fn main() {
    header(
        "feedback_loop",
        "online §6.1 training + admission re-validation",
        "hot-path sampling overhead and sweep latency vs registry size",
    );

    // --- 1. hot path: execute a point query in a tight loop
    let iterations = scaled(20_000, 2_000);
    let (cluster, registry) = build(1);
    let mut session = Session::new();
    let mut params = Params::new();
    params.set(0, Value::Varchar(scadr::username(17)));
    // warm
    for _ in 0..200 {
        registry
            .execute(&mut session, "find_user_0", &params, None)
            .unwrap();
    }
    let t0 = Instant::now();
    for _ in 0..iterations {
        registry
            .execute(&mut session, "find_user_0", &params, None)
            .unwrap();
    }
    let hot = t0.elapsed();
    row(&[
        ("phase", "hot-path".into()),
        ("iterations", iterations.to_string()),
        (
            "exec_per_sec",
            format!("{:.0}", iterations as f64 / hot.as_secs_f64()),
        ),
        (
            "sink_recorded",
            cluster.sample_sink().recorded().to_string(),
        ),
        ("sink_dropped", cluster.sample_sink().dropped().to_string()),
    ]);

    // --- 2. sweep latency as the registry grows
    for n in [1u64, 10, 50] {
        let n = if piql_bench::quick() { n.min(10) } else { n };
        let (_cluster, registry) = build(n);
        // buffer a realistic batch of live samples to fold
        let mut session = Session::new();
        let mut params = Params::new();
        params.set(0, Value::Varchar(scadr::username(3)));
        for _ in 0..scaled(500, 50) {
            registry
                .execute(&mut session, "find_user_0", &params, None)
                .unwrap();
        }
        let t0 = Instant::now();
        let summary = registry.revalidate();
        let sweep = t0.elapsed();
        row(&[
            ("phase", "sweep".into()),
            ("statements", n.to_string()),
            ("samples_folded", summary.samples_folded.to_string()),
            ("sweep_us", sweep.as_micros().to_string()),
            (
                "us_per_statement",
                format!("{:.0}", sweep.as_micros() as f64 / n as f64),
            ),
        ]);
    }
}
