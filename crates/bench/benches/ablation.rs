//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Limit-hint prefetch** (§7.1): one bounded range request vs
//!    tuple-at-a-time fetching for a single IndexScan.
//! 2. **Intra-operator parallelism** (§7.1): parallel vs sequential probe
//!    rounds for a SortedIndexJoin.
//! 3. **Primary-index preference** (§5.1/Figure 3 discussion): serving a
//!    residual predicate with a LocalSelection over the primary index vs
//!    forcing a covering secondary index (extra deref round + maintenance).
//! 4. **Replication for reads**: least-loaded replica routing, replication
//!    1 vs 2, under moderate load.

use piql_bench::{bench_cluster_calm, header, p99_ms, row, scaled};
use piql_core::plan::params::Params;
use piql_core::tuple::Tuple;
use piql_core::value::Value;
use piql_engine::{Database, ExecStrategy};
use piql_kv::{ClusterConfig, KvRequest, KvStore, Session, SimCluster};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    header(
        "ablation",
        "design-choice ablations (DESIGN.md §4)",
        "p99 (ms) with the mechanism on vs off",
    );
    let executions = scaled(1_500, 150) as usize;

    // ---------------------------------------------- 1 + 2: executor knobs
    {
        let cluster = bench_cluster_calm(8, 0xAB1);
        let db = Database::new(cluster);
        db.execute_ddl(
            "CREATE TABLE events (stream VARCHAR(16) NOT NULL, seq INT NOT NULL, \
             payload VARCHAR(64), PRIMARY KEY (stream, seq), \
             CARDINALITY LIMIT 50 (stream))",
        )
        .unwrap();
        db.bulk_load(
            "events",
            (0..400usize).flat_map(|s| {
                (0..50).map(move |q| {
                    Tuple::new(vec![
                        Value::Varchar(format!("s{s:04}")),
                        Value::Int(q),
                        Value::Varchar("x".repeat(40)),
                    ])
                })
            }),
        )
        .unwrap();
        db.cluster().rebalance();
        let scan = db
            .prepare("SELECT * FROM events WHERE stream = <s> LIMIT 50")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut clock = 0u64;
        for (label, strategy) in [
            ("scan tuple-at-a-time (no prefetch)", ExecStrategy::Lazy),
            ("scan with limit-hint prefetch", ExecStrategy::Parallel),
        ] {
            let mut lat = Vec::with_capacity(executions);
            for _ in 0..executions {
                let mut p = Params::new();
                p.set(0, Value::Varchar(format!("s{:04}", rng.gen_range(0..400))));
                let mut s = Session::at(clock);
                let t0 = s.begin();
                db.execute_with(&mut s, &scan, &p, strategy, None).unwrap();
                lat.push(s.elapsed_since(t0));
                clock = s.now + 5_000;
            }
            row(&[
                ("mechanism", label.into()),
                ("p99_ms", format!("{:.1}", p99_ms(&mut lat))),
            ]);
        }

        // sorted join: sequential vs parallel probes
        db.execute_ddl(
            "CREATE TABLE follows (owner VARCHAR(16) NOT NULL, target VARCHAR(16) NOT NULL, \
             PRIMARY KEY (owner, target), CARDINALITY LIMIT 25 (owner))",
        )
        .unwrap();
        db.bulk_load(
            "follows",
            (0..400usize).flat_map(|o| {
                (1..=25usize).map(move |d| {
                    Tuple::new(vec![
                        Value::Varchar(format!("s{o:04}")),
                        Value::Varchar(format!("s{:04}", (o + d) % 400)),
                    ])
                })
            }),
        )
        .unwrap();
        db.cluster().rebalance();
        let join = db
            .prepare(
                "SELECT e.* FROM follows f JOIN events e \
                 WHERE e.stream = f.target AND f.owner = <s> \
                 ORDER BY e.seq DESC LIMIT 10",
            )
            .unwrap();
        let mut clock = clock + 1_000_000;
        for (label, strategy) in [
            ("join probes sequential (Simple)", ExecStrategy::Simple),
            ("join probes parallel (Parallel)", ExecStrategy::Parallel),
        ] {
            let mut lat = Vec::with_capacity(executions);
            for _ in 0..executions {
                let mut p = Params::new();
                p.set(0, Value::Varchar(format!("s{:04}", rng.gen_range(0..400))));
                let mut s = Session::at(clock);
                let t0 = s.begin();
                db.execute_with(&mut s, &join, &p, strategy, None).unwrap();
                lat.push(s.elapsed_since(t0));
                clock = s.now + 5_000;
            }
            row(&[
                ("mechanism", label.into()),
                ("p99_ms", format!("{:.1}", p99_ms(&mut lat))),
            ]);
        }
    }

    // ---------------------------------- 3: primary + residual vs secondary
    {
        let cluster = bench_cluster_calm(8, 0xAB2);
        let db = Database::new(cluster);
        db.execute_ddl(
            "CREATE TABLE subs (owner VARCHAR(16) NOT NULL, target VARCHAR(16) NOT NULL, \
             approved BOOL, PRIMARY KEY (owner, target), CARDINALITY LIMIT 50 (owner))",
        )
        .unwrap();
        db.bulk_load(
            "subs",
            (0..500usize).flat_map(|o| {
                (0..50usize).map(move |t| {
                    Tuple::new(vec![
                        Value::Varchar(format!("u{o:04}")),
                        Value::Varchar(format!("u{:04}", (o + t + 1) % 500)),
                        Value::Bool(t % 3 != 0),
                    ])
                })
            }),
        )
        .unwrap();
        // the plan the optimizer picks: primary scan + LocalSelection
        let primary_plan = db
            .prepare("SELECT * FROM subs WHERE owner = <o> AND approved = true")
            .unwrap();
        assert!(primary_plan
            .compiled
            .physical
            .remote_ops()
            .iter()
            .all(|op| match op {
                piql_core::plan::physical::PhysicalPlan::IndexScan { spec, .. } =>
                    spec.index.is_primary(),
                _ => true,
            }));
        // the rejected alternative: force a covering-ish secondary index on
        // (owner, approved) — requires a deref round for `*`
        db.execute_ddl("CREATE INDEX subs_by_approval ON subs (owner, approved)")
            .unwrap();
        let forced = db
            .prepare("SELECT * FROM subs WHERE owner = <o> AND approved = true")
            .unwrap();
        db.cluster().rebalance();
        let uses_secondary = forced.compiled.physical.remote_ops().iter().any(|op| {
            matches!(op, piql_core::plan::physical::PhysicalPlan::IndexScan { spec, .. }
                if !spec.index.is_primary())
        });
        let mut rng = StdRng::seed_from_u64(2);
        let mut clock = 0u64;
        for (label, plan) in [
            ("primary index + LocalSelection", &primary_plan),
            ("secondary index + deref round", &forced),
        ] {
            let mut lat = Vec::with_capacity(executions);
            for _ in 0..executions {
                let mut p = Params::new();
                p.set(0, Value::Varchar(format!("u{:04}", rng.gen_range(0..500))));
                let mut s = Session::at(clock);
                let t0 = s.begin();
                db.execute_with(&mut s, plan, &p, ExecStrategy::Parallel, None)
                    .unwrap();
                lat.push(s.elapsed_since(t0));
                clock = s.now + 5_000;
            }
            row(&[
                ("mechanism", label.into()),
                ("p99_ms", format!("{:.1}", p99_ms(&mut lat))),
            ]);
        }
        println!(
            "# note: with the index present the optimizer prefers it only when it serves \
             more (sort/range); here: secondary chosen = {uses_secondary}"
        );
    }

    // ------------------------------------------------ 4: replication knob
    {
        for replication in [1usize, 2, 3] {
            let mut cfg = ClusterConfig::default().with_nodes(6).with_seed(0xAB3);
            cfg.interference = piql_kv::InterferenceConfig::none();
            cfg.replication = replication;
            let cluster = Arc::new(SimCluster::new(cfg));
            let ns = cluster.namespace("t/x");
            for i in 0..5_000u64 {
                cluster.bulk_put(ns, i.to_be_bytes().to_vec(), vec![7; 64]);
            }
            cluster.rebalance();
            let mut rng = StdRng::seed_from_u64(3);
            let mut lat = Vec::with_capacity(executions);
            // heavy load: enough closed-loop readers to queue on nodes, so
            // replica choice matters
            let mut sessions: Vec<Session> = (0..64).map(|_| Session::new()).collect();
            for i in 0..executions {
                let s = &mut sessions[i % 64];
                let t0 = s.now;
                cluster.execute_round(
                    s,
                    vec![KvRequest::Get {
                        ns,
                        key: rng.gen_range(0..5_000u64).to_be_bytes().to_vec(),
                    }],
                );
                lat.push(s.now - t0);
            }
            row(&[
                ("mechanism", format!("reads with replication={replication}")),
                ("p99_ms", format!("{:.1}", p99_ms(&mut lat))),
            ]);
        }
        println!("# replication>1 lets the least-loaded replica serve reads (lower queueing)");
    }
}
