//! `fanout` — round-trip amortization for a high-fan-out page-view.
//!
//! PIQL's serving story (PAPER.md §2, Fig. 1) has an application server
//! fanning one page-view out into many prepared-statement executions.
//! Strictly request/response, that costs N network round trips; the
//! pipelined & batched protocol (PROTOCOL.md §5–6) pays ~1. This harness
//! measures a 10-statement page-view three ways over real TCP, with a
//! 2 ms injected client↔server RTT (loopback is ~µs, so the injection
//! *is* the network — one RTT charged per flush-and-wait exchange):
//!
//! * `sequential` — 10 round trips, one per statement (the old protocol),
//! * `pipelined`  — 10 id-tagged requests in one write, answered in
//!   completion order and reassembled positionally (1 RTT; the server
//!   also overlaps their execution on its dispatch pool),
//! * `batch`      — one `batch` line, one response (1 RTT; sub-requests
//!   run sequentially on one session, preserving write→read order).
//!
//! Acceptance: pipelined and batch each ≥5x over sequential at 2 ms RTT.
//! A second scenario injects 2 ms of *server-side* work per storage
//! request too, separating what pipelining buys (RTT **and** server
//! overlap) from what batch buys (RTT only — it promises sequential
//! semantics instead).

use piql_bench::{header, row, scaled};
use piql_core::plan::params::ParamValue;
use piql_core::value::Value;
use piql_engine::Database;
use piql_kv::{LiveCluster, LiveConfig};
use piql_server::testkit::linear_predictor;
use piql_server::{Client, Json, PiqlServer, Request, SloConfig, StatementRegistry};
use piql_workloads::scadr::{self, ScadrConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE_STATEMENTS: usize = 10;
const RTT: Duration = Duration::from_millis(2);

fn main() {
    header(
        "fanout",
        "PROTOCOL.md §5–6",
        "10-statement page-view over TCP: sequential vs pipelined vs batch, 2 ms injected RTT",
    );

    let cluster = Arc::new(LiveCluster::new(LiveConfig::default()));
    let db = Arc::new(Database::new(cluster.clone()));
    let config = ScadrConfig {
        users_per_node: 50,
        thoughts_per_user: 5,
        subscriptions_per_user: 4,
        ..Default::default()
    };
    scadr::setup(&db, &config, 2).unwrap();
    let registry = Arc::new(StatementRegistry::new(
        db,
        linear_predictor(200, 100, 2),
        SloConfig {
            slo_ms: 1e9,
            interval_confidence: 1.0,
            allow_degrade: false,
        },
    ));
    // dispatch width ≥ the fan-out, so pipelined statements truly overlap
    let server = PiqlServer::start_with_dispatch(registry, "127.0.0.1:0", 16).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .prepare("find_user", "SELECT * FROM users WHERE username = <u>")
        .unwrap();

    let iters = scaled(100, 20) as usize;
    let mut all_hold = true;
    for (scenario, store_delay_us) in [("rtt-only", 0u64), ("rtt+2ms-store", 2_000)] {
        cluster.set_request_delay_us(store_delay_us);
        println!("scenario={scenario}\tmode\tpage_view_ms\tspeedup");
        let sequential_ms = run_mode(&mut client, iters, page_view_sequential);
        let pipelined_ms = run_mode(&mut client, iters, page_view_pipelined);
        let batch_ms = run_mode(&mut client, iters, page_view_batch);
        for (mode, ms) in [
            ("sequential", sequential_ms),
            ("pipelined", pipelined_ms),
            ("batch", batch_ms),
        ] {
            row(&[
                ("scenario", scenario.to_string()),
                ("mode", mode.to_string()),
                ("page_view_ms", format!("{ms:.2}")),
                ("speedup", format!("{:.1}x", sequential_ms / ms)),
            ]);
        }
        // the acceptance criterion lives in the rtt-only scenario; with
        // server-side work injected, batch intentionally keeps sequential
        // execution semantics and only amortizes the RTT
        if scenario == "rtt-only" {
            all_hold &= sequential_ms / pipelined_ms >= 5.0 && sequential_ms / batch_ms >= 5.0;
        } else {
            all_hold &= sequential_ms / pipelined_ms >= 5.0;
        }
    }
    cluster.set_request_delay_us(0);
    println!(
        "# acceptance: ≥5x for the pipelined/batched page-view at 2 ms RTT — {}",
        if all_hold { "HOLDS" } else { "VIOLATED" }
    );
}

/// Mean page-view wall-clock (ms) over `iters` runs of `page_view`.
fn run_mode(client: &mut Client, iters: usize, page_view: fn(&mut Client) -> usize) -> f64 {
    // warm-up out of the measurement
    assert_eq!(page_view(client), PAGE_STATEMENTS);
    let t0 = Instant::now();
    for _ in 0..iters {
        let rows = page_view(client);
        assert_eq!(rows, PAGE_STATEMENTS, "every statement found its user");
    }
    t0.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn uname_param(i: usize) -> Vec<ParamValue> {
    vec![Value::Varchar(scadr::username(i)).into()]
}

/// One RTT charged per flush-and-wait exchange with the server.
fn charge_rtt() {
    std::thread::sleep(RTT);
}

fn page_view_sequential(client: &mut Client) -> usize {
    (0..PAGE_STATEMENTS)
        .map(|i| {
            charge_rtt();
            client
                .execute("find_user", &uname_param(i), None)
                .unwrap()
                .rows
                .len()
        })
        .sum()
}

fn page_view_pipelined(client: &mut Client) -> usize {
    let mut pipeline = client.pipeline();
    for i in 0..PAGE_STATEMENTS {
        pipeline.queue_execute("find_user", &uname_param(i));
    }
    charge_rtt();
    let responses = pipeline.flush().unwrap();
    responses
        .iter()
        .map(|r| piql_server::decode_page(r).unwrap().rows.len())
        .sum()
}

fn page_view_batch(client: &mut Client) -> usize {
    let requests: Vec<Request> = (0..PAGE_STATEMENTS)
        .map(|i| Request::Execute {
            name: "find_user".into(),
            params: uname_param(i),
            cursor: None,
        })
        .collect();
    charge_rtt();
    let results = client.execute_batch(&requests).unwrap();
    results
        .iter()
        .map(|r| {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            piql_server::decode_page(r).unwrap().rows.len()
        })
        .sum()
}
