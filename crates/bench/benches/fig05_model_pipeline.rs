//! Figure 5 — the SLO modeling pipeline (§6.1–§6.3): (a) per-operator
//! histograms at different (α, β) settings, (b) whole-plan distribution by
//! convolution, (c) the per-interval p99 distribution that expresses
//! SLO-violation risk under cloud volatility.

use piql_bench::{bench_cluster, header};
use piql_core::catalog::{Catalog, TableDef};
use piql_core::opt::Optimizer;
use piql_core::parser::parse_select;
use piql_core::value::DataType;
use piql_predict::{train, ModelKey, OpKind, SloPredictor, TrainConfig};

fn main() {
    header(
        "fig05",
        "Figure 5 (§6)",
        "operator models -> plan convolution -> interval p99 distribution",
    );
    let cluster = bench_cluster(10, 0xF05);
    let mut config = if piql_bench::quick() {
        TrainConfig::quick()
    } else {
        TrainConfig {
            intervals: 20,
            samples_per_interval: 10,
            ..TrainConfig::default()
        }
    };
    config.alphas = vec![1, 10, 50, 100, 150, 500];
    config.alpha_js = vec![1, 10, 50];
    config.betas = vec![40, 160];
    let models = train(&cluster, &config);
    println!(
        "# trained {} keys from {} samples over {} intervals",
        models.keys().len(),
        models.total_samples(),
        models.n_intervals()
    );

    // (a) single-operator models, the paper's Θ(100, 40B) vs Θ(150, 40B)
    println!("stage\toperator\talpha\tbeta\tmedian_ms\tp99_ms");
    for alpha in [100u32, 150] {
        let h = models
            .lookup_overall(ModelKey {
                op: OpKind::IndexScan,
                alpha_c: alpha,
                alpha_j: 1,
                beta: 40,
            })
            .expect("trained");
        println!(
            "a\tIndexScan\t{alpha}\t40\t{:.1}\t{:.1}",
            h.quantile_ms(0.5),
            h.quantile_ms(0.99)
        );
    }

    // (b) plan prediction: the thoughtstream convolution of §6.2
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("subscriptions")
            .column("owner", DataType::Varchar(24))
            .column("target", DataType::Varchar(24))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(100, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(24))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .build(),
    )
    .unwrap();
    let compiled = Optimizer::scale_independent()
        .compile(
            &cat,
            &parse_select(
                "SELECT thoughts.* FROM subscriptions s JOIN thoughts \
                 WHERE thoughts.owner = s.target AND s.owner = <u> \
                 ORDER BY thoughts.timestamp DESC LIMIT 10",
            )
            .unwrap(),
        )
        .unwrap();
    let predictor = SloPredictor::new(models);
    let pred = predictor.predict(&compiled);
    println!(
        "b\tQ_thoughtstream = Θ_IndexScan(100,·) ∗ Θ_SortedJoin(100,10,·)\t\t\t{:.1}\t{:.1}",
        pred.overall.quantile_ms(0.5),
        pred.overall.quantile_ms(0.99)
    );

    // (c) the p99-per-interval distribution and SLO risk
    let mut p99s = pred.p99_per_interval_ms.clone();
    p99s.sort_by(|a, b| a.total_cmp(b));
    println!(
        "c\tp99 per interval: min={:.0} median={:.0} p90={:.0} max={:.0} ms",
        p99s.first().unwrap_or(&0.0),
        pred.p99_quantile_ms(0.5),
        pred.p99_quantile_ms(0.9),
        pred.max_p99_ms
    );
    for slo in [100.0, 200.0, 500.0] {
        println!(
            "c\tSLO {:>3.0} ms: violation risk = {:.0}% of intervals",
            slo,
            pred.violation_risk(slo) * 100.0
        );
    }
}
