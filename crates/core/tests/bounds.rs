//! Bound-arithmetic tests: the per-operator annotations must sum into the
//! whole-query totals the paper's contribution revolves around (§1.3).

use piql_core::catalog::{Catalog, TableDef};
use piql_core::opt::Optimizer;
use piql_core::parser::parse_select;
use piql_core::plan::physical::PhysicalPlan;
use piql_core::value::DataType;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("orders")
            .column("o_id", DataType::Int)
            .column("c_uname", DataType::Varchar(20))
            .column("total", DataType::Double)
            .primary_key(&["o_id"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("lines")
            .column("o_id", DataType::Int)
            .column("l_id", DataType::Int)
            .column("item", DataType::Varchar(20))
            .primary_key(&["o_id", "l_id"])
            .foreign_key(&["o_id"], "orders")
            .cardinality_limit(30, &["o_id"])
            .build(),
    )
    .unwrap();
    cat
}

#[test]
fn totals_are_the_sum_of_operator_bounds() {
    let cat = catalog();
    let c = Optimizer::scale_independent()
        .compile(
            &cat,
            &parse_select(
                "SELECT l.*, o.total FROM lines l JOIN orders o \
                 WHERE l.o_id = <o> AND o.o_id = l.o_id",
            )
            .unwrap(),
        )
        .unwrap();
    let remotes = c.physical.remote_ops();
    assert_eq!(remotes.len(), 2, "{}", c.explain());
    let sum_requests: u64 = remotes.iter().map(|op| op.bounds().requests).sum();
    let sum_rounds: u64 = remotes.iter().map(|op| op.bounds().rounds).sum();
    assert_eq!(c.bounds.requests, sum_requests);
    assert_eq!(c.bounds.rounds, sum_rounds);
    // scan(30) + fk join per scanned line (30)
    assert_eq!(c.bounds.requests, 1 + 30);
    assert_eq!(c.bounds.tuples, 30);
    assert!(c.bounds.bytes > 0);
    assert!(c.bounds.guaranteed);
}

#[test]
fn remote_ops_are_reported_bottom_up() {
    let cat = catalog();
    let c = Optimizer::scale_independent()
        .compile(
            &cat,
            &parse_select(
                "SELECT l.*, o.total FROM lines l JOIN orders o \
                 WHERE l.o_id = <o> AND o.o_id = l.o_id",
            )
            .unwrap(),
        )
        .unwrap();
    let remotes = c.physical.remote_ops();
    assert!(matches!(remotes[0], PhysicalPlan::IndexScan { .. }));
    assert!(matches!(remotes[1], PhysicalPlan::IndexFKJoin { .. }));
}

#[test]
fn local_stop_tightens_the_tuple_bound() {
    let cat = catalog();
    let c = Optimizer::scale_independent()
        .compile(
            &cat,
            &parse_select("SELECT * FROM lines WHERE o_id = <o> LIMIT 7").unwrap(),
        )
        .unwrap();
    assert_eq!(c.bounds.tuples, 7, "{}", c.explain());
    // while the scan itself may fetch up to the folded limit
    assert_eq!(c.bounds.requests, 1);
}

#[test]
fn layouts_cover_every_projected_field() {
    let cat = catalog();
    let c = Optimizer::scale_independent()
        .compile(
            &cat,
            &parse_select(
                "SELECT item, total FROM lines l JOIN orders o \
                 WHERE l.o_id = <o> AND o.o_id = l.o_id",
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(c.physical.layout().len(), 2, "projection layout");
    assert_eq!(c.output.len(), 2);
    assert_eq!(c.output[0].name, "item");
    assert_eq!(c.output[1].ty, DataType::Double);
}
