//! Focused tests for Phase I (Algorithm 1): chain deconstruction, join
//! ordering, data-stop insertion, and the IN-rewrite.

use piql_core::catalog::{Catalog, TableDef};
use piql_core::opt::chain::{deconstruct, materialize, LegItem, TopOp};
use piql_core::opt::phase1::{insert_data_stops, order_joins, rewrite_in_params};
use piql_core::parser::parse_select;
use piql_core::plan::logical::StopKind;
use piql_core::plan::{bind, RelationSource};
use piql_core::value::DataType;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("users")
            .column("username", DataType::Varchar(24))
            .column("town", DataType::Varchar(24))
            .primary_key(&["username"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("subs")
            .column("owner", DataType::Varchar(24))
            .column("target", DataType::Varchar(24))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(100, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(24))
            .column("ts", DataType::Timestamp)
            .primary_key(&["owner", "ts"])
            .build(),
    )
    .unwrap();
    cat
}

#[test]
fn deconstruct_materialize_roundtrips_structure() {
    let cat = catalog();
    let stmt = parse_select(
        "SELECT thoughts.* FROM subs s JOIN thoughts \
         WHERE thoughts.owner = s.target AND s.owner = <u> AND s.approved = true \
         ORDER BY thoughts.ts DESC LIMIT 10",
    )
    .unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let chain = deconstruct(&bq.plan);
    assert_eq!(chain.legs.len(), 2);
    assert_eq!(chain.join_edges.len(), 1);
    assert_eq!(chain.sort.len(), 1);
    assert!(chain.stop.is_some());
    assert!(matches!(chain.top, TopOp::Project(ref items) if items.len() == 2));
    // re-materializing without transformations reproduces the same chain
    let rebuilt = materialize(&chain, &bq.schema);
    let chain2 = deconstruct(&rebuilt);
    assert_eq!(chain.legs, chain2.legs);
    assert_eq!(chain.sort, chain2.sort);
    assert_eq!(chain.stop, chain2.stop);
}

#[test]
fn join_ordering_puts_the_bounded_relation_first() {
    let cat = catalog();
    // written with thoughts FIRST; ordering must flip it: subs has the
    // pk/cardinality-addressable predicate
    let stmt = parse_select(
        "SELECT thoughts.* FROM thoughts JOIN subs s \
         WHERE thoughts.owner = s.target AND s.owner = <u>",
    )
    .unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let mut chain = deconstruct(&bq.plan);
    assert_eq!(bq.schema.relation(chain.legs[0].rel).binding, "thoughts");
    order_joins(&cat, &bq.schema, &mut chain);
    assert_eq!(
        bq.schema.relation(chain.legs[0].rel).binding,
        "s",
        "the constrained relation leads the chain"
    );
}

#[test]
fn data_stop_sits_between_cause_and_other_predicates() {
    let cat = catalog();
    let stmt = parse_select("SELECT * FROM subs WHERE owner = <u> AND approved = true").unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let mut chain = deconstruct(&bq.plan);
    insert_data_stops(&cat, &bq.schema, &mut chain);
    let leg = &chain.legs[0];
    // stack bottom-to-top: [cause preds][data stop][rest]
    assert_eq!(leg.items.len(), 3, "{:?}", leg.items);
    assert!(matches!(&leg.items[0], LegItem::Preds(p) if p.len() == 1));
    match &leg.items[1] {
        LegItem::Stop(s) => {
            assert_eq!(s.kind, StopKind::Data);
            assert_eq!(s.count, 100);
            assert_eq!(s.cause.len(), 1);
        }
        other => panic!("expected data stop, got {other:?}"),
    }
    assert!(matches!(&leg.items[2], LegItem::Preds(p) if p.len() == 1));
    // predicates above the stop are exactly the non-cause ones
    assert_eq!(leg.preds_above_stop().len(), 1);
}

#[test]
fn pk_coverage_beats_cardinality_for_the_data_stop() {
    let cat = catalog();
    let stmt = parse_select("SELECT * FROM subs WHERE owner = <u> AND target = <t>").unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let mut chain = deconstruct(&bq.plan);
    insert_data_stops(&cat, &bq.schema, &mut chain);
    let stop = chain.legs[0].data_stop().expect("stop inserted");
    assert_eq!(stop.count, 1, "full pk -> cardinality 1");
    assert_eq!(stop.provenance.kind(), "primary-key", "{}", stop.provenance);
}

#[test]
fn in_rewrite_adds_a_bounded_leg_and_edge() {
    let cat = catalog();
    let stmt = parse_select(
        "SELECT owner, target FROM subs \
         WHERE target = <t> AND owner IN [2: friends MAX 50]",
    )
    .unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let mut schema = bq.schema.clone();
    let mut chain = deconstruct(&bq.plan);
    let notes = rewrite_in_params(&cat, &mut schema, &mut chain);
    assert_eq!(notes.len(), 1, "{notes:?}");
    assert_eq!(chain.legs.len(), 2);
    assert_eq!(chain.join_edges.len(), 1);
    let param_leg = chain
        .legs
        .iter()
        .find(|l| {
            matches!(
                schema.relation(l.rel).source,
                RelationSource::ParamValues { .. }
            )
        })
        .expect("synthetic relation added");
    let stop = param_leg.data_stop().expect("param leg carries its bound");
    assert_eq!(stop.count, 50);

    // without MAX the rewrite must not fire
    let stmt =
        parse_select("SELECT owner, target FROM subs WHERE target = <t> AND owner IN [2: friends]")
            .unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let mut schema = bq.schema.clone();
    let mut chain = deconstruct(&bq.plan);
    assert!(rewrite_in_params(&cat, &mut schema, &mut chain).is_empty());
    assert_eq!(chain.legs.len(), 1);
}

#[test]
fn in_rewrite_requires_addressability() {
    let cat = catalog();
    // IN over a non-key column: lookups would not be bounded per element,
    // so the rewrite must not fire
    let stmt = parse_select("SELECT * FROM users WHERE town IN [1: towns MAX 5]").unwrap();
    let bq = bind(&cat, &stmt).unwrap();
    let mut schema = bq.schema.clone();
    let mut chain = deconstruct(&bq.plan);
    assert!(rewrite_in_params(&cat, &mut schema, &mut chain).is_empty());
}
