//! End-to-end compiler tests on the paper's own queries.

use piql_core::catalog::{Catalog, Statistics, TableDef, TableStats};
use piql_core::opt::{Optimizer, QueryClass, Suggestion};
use piql_core::parser::parse_select;
use piql_core::plan::physical::{PhysicalPlan, ScanLimit};
use piql_core::value::DataType;

/// The SCADr schema exactly as §8.1.2 describes it, with the §8.2
/// cardinality limit of 10 subscriptions per user changed to 100 (the §4.2
/// example) — tests that depend on the number use the constant below.
const MAX_SUBSCRIPTIONS: u64 = 100;

fn scadr_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("users")
            .column("username", DataType::Varchar(32))
            .column("home_town", DataType::Varchar(64))
            .primary_key(&["username"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("subscriptions")
            .column("owner", DataType::Varchar(32))
            .column("target", DataType::Varchar(32))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .foreign_key(&["target"], "users")
            .foreign_key(&["owner"], "users")
            .cardinality_limit(MAX_SUBSCRIPTIONS, &["owner"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(32))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .foreign_key(&["owner"], "users")
            .build(),
    )
    .unwrap();
    cat
}

const THOUGHTSTREAM: &str = "SELECT thoughts.* \
    FROM subscriptions s JOIN thoughts \
    WHERE thoughts.owner = s.target AND s.owner = <uname> AND s.approved = true \
    ORDER BY thoughts.timestamp DESC LIMIT 10";

#[test]
fn thoughtstream_compiles_to_figure_3d() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select(THOUGHTSTREAM).unwrap();
    let c = opt.compile(&cat, &q).unwrap();

    // Physical shape: Project(SortedIndexJoin(LocalSelection(IndexScan)))
    let explain = c.explain();
    println!("{explain}");
    let PhysicalPlan::LocalProject { child, .. } = &c.physical else {
        panic!("expected projection at top, got:\n{explain}");
    };
    let PhysicalPlan::SortedIndexJoin { child, spec, .. } = child.as_ref() else {
        panic!("expected SortedIndexJoin, got:\n{explain}");
    };
    assert_eq!(spec.per_key, 10, "limit hint 10 per subscription");
    assert_eq!(spec.emit_limit, Some(10));
    assert!(spec.index.is_primary(), "thoughts pk serves the join");
    assert!(
        spec.reverse,
        "timestamp DESC over ascending pk = reverse scan"
    );
    let PhysicalPlan::LocalSelection {
        child, predicates, ..
    } = child.as_ref()
    else {
        panic!("expected LocalSelection(approved), got:\n{explain}");
    };
    assert_eq!(predicates.len(), 1, "only the approved filter is local");
    let PhysicalPlan::IndexScan { spec, .. } = child.as_ref() else {
        panic!("expected IndexScan at the bottom, got:\n{explain}");
    };
    match &spec.limit {
        ScanLimit::Bounded { count, provenance } => {
            assert_eq!(*count, MAX_SUBSCRIPTIONS);
            assert_eq!(provenance.kind(), "cardinality", "{provenance}");
            assert!(provenance.is_cardinality_bound());
        }
        other => panic!("unexpected limit {other:?}"),
    }
    assert!(spec.index.is_primary(), "subscriptions pk serves owner=");

    // Bounds: 1 range request + 100 sorted probes (+0 derefs: both primary)
    assert_eq!(c.bounds.requests, 1 + MAX_SUBSCRIPTIONS);
    assert!(c.bounds.guaranteed);
    assert_eq!(c.class, QueryClass::Bounded);
    assert!(
        c.required_indexes.is_empty(),
        "no extra index needed (Table 1)"
    );
    assert_eq!(c.params.len(), 1);
}

#[test]
fn thoughtstream_without_cardinality_is_rejected_with_insight() {
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("users")
            .column("username", DataType::Varchar(32))
            .primary_key(&["username"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("subscriptions")
            .column("owner", DataType::Varchar(32))
            .column("target", DataType::Varchar(32))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .build(), // no CARDINALITY LIMIT
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("thoughts")
            .column("owner", DataType::Varchar(32))
            .column("timestamp", DataType::Timestamp)
            .column("text", DataType::Varchar(140))
            .primary_key(&["owner", "timestamp"])
            .build(),
    )
    .unwrap();
    let opt = Optimizer::scale_independent();
    let q = parse_select(THOUGHTSTREAM).unwrap();
    let err = opt.compile(&cat, &q).unwrap_err();
    let report = err.insight().expect("insight report");
    assert_eq!(report.relation.as_deref(), Some("s"));
    assert!(
        report.suggestions.iter().any(|s| matches!(
            s,
            Suggestion::AddCardinalityLimit { table, columns }
                if table == "subscriptions" && columns.contains(&"owner".to_string())
        )),
        "{report}"
    );
}

#[test]
fn recent_thoughts_is_class_i_primary_only() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select(
        "SELECT * FROM thoughts WHERE owner = <uname> \
         ORDER BY timestamp DESC PAGINATE 10",
    )
    .unwrap();
    let c = opt.compile(&cat, &q).unwrap();
    assert_eq!(c.class, QueryClass::Constant);
    assert_eq!(c.page_size, Some(10));
    assert_eq!(c.bounds.requests, 1);
    assert!(c.required_indexes.is_empty());
}

#[test]
fn pk_lookup_has_bound_one() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select("SELECT * FROM users WHERE username = <u>").unwrap();
    let c = opt.compile(&cat, &q).unwrap();
    assert_eq!(c.class, QueryClass::Constant);
    assert_eq!(c.bounds.requests, 1);
    assert_eq!(c.bounds.tuples, 1);
}

#[test]
fn users_followed_uses_fk_join() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select(
        "SELECT u.* FROM subscriptions s JOIN users u \
         WHERE u.username = s.target AND s.owner = <uname>",
    )
    .unwrap();
    let c = opt.compile(&cat, &q).unwrap();
    let explain = c.explain();
    let PhysicalPlan::LocalProject { child, .. } = &c.physical else {
        panic!("{explain}");
    };
    assert!(
        matches!(child.as_ref(), PhysicalPlan::IndexFKJoin { .. }),
        "unique-pk join maps to IndexFKJoin:\n{explain}"
    );
    // 1 scan request + up to 100 parallel gets
    assert_eq!(c.bounds.requests, 1 + MAX_SUBSCRIPTIONS);
    assert_eq!(c.bounds.rounds, 2);
    assert_eq!(c.class, QueryClass::Bounded);
}

#[test]
fn subscriber_intersection_bounded_vs_cost_based() {
    // §8.3's comparison query.
    let cat = scadr_catalog();
    // projecting only the key columns makes the by-target index covering,
    // matching the paper's description of the unbounded plan (one RPC)
    let q = parse_select(
        "SELECT owner, target FROM subscriptions \
         WHERE target = <target_user> AND owner IN [2: friends MAX 50]",
    )
    .unwrap();

    // SI mode: bounded random-lookup plan (ParamSource + IndexFKJoin)
    let opt = Optimizer::scale_independent();
    let c = opt.compile(&cat, &q).unwrap();
    let explain = c.explain();
    assert!(c.bounds.guaranteed);
    assert_eq!(c.bounds.requests, 50, "50 random reads max:\n{explain}");
    let mut saw_fk = false;
    let mut node = &c.physical;
    loop {
        if let PhysicalPlan::IndexFKJoin { child, .. } = node {
            saw_fk = true;
            assert!(matches!(child.as_ref(), PhysicalPlan::ParamSource { .. }));
            break;
        }
        match node.child() {
            Some(c) => node = c,
            None => break,
        }
    }
    assert!(saw_fk, "bounded plan does pk lookups:\n{explain}");

    // Cost-based mode with Twitter-2009 stats (avg 126 followers): prefers
    // the unbounded scan (1-2 expected requests beat 50 lookups).
    let mut stats = Statistics::new();
    let subs = cat.table("subscriptions").unwrap().id;
    let mut ts = TableStats::with_rows(1_000_000);
    ts.set_avg_group_size("target", 126.0);
    stats.set_table(subs, ts);
    let opt = Optimizer::cost_based(stats);
    let c = opt.compile(&cat, &q).unwrap();
    assert!(!c.bounds.guaranteed, "cost-based plan is unbounded");
    let remotes = c.physical.remote_ops();
    assert_eq!(remotes.len(), 1);
    match remotes[0] {
        PhysicalPlan::IndexScan { spec, .. } => {
            assert!(matches!(spec.limit, ScanLimit::Unbounded { estimate: 126 }));
            assert!(
                !spec.index.is_primary(),
                "needs subscriptions-by-target index"
            );
        }
        other => panic!("expected unbounded IndexScan, got {other:?}"),
    }
}

#[test]
fn tpcw_search_by_title_selects_token_index() {
    // §5.3's example: the derived index must be
    // Items(TOKEN(I_TITLE), I_TITLE, I_ID).
    let mut cat = Catalog::new();
    cat.create_table(
        TableDef::builder("author")
            .column("a_id", DataType::Int)
            .column("a_fname", DataType::Varchar(20))
            .column("a_lname", DataType::Varchar(20))
            .primary_key(&["a_id"])
            .build(),
    )
    .unwrap();
    cat.create_table(
        TableDef::builder("item")
            .column("i_id", DataType::Int)
            .column("i_title", DataType::Varchar(60))
            .column("i_a_id", DataType::Int)
            .primary_key(&["i_id"])
            .foreign_key(&["i_a_id"], "author")
            .build(),
    )
    .unwrap();
    let opt = Optimizer::scale_independent();
    let q = parse_select(
        "SELECT i_title, i_id, a_fname, a_lname FROM item, author \
         WHERE i_a_id = a_id AND i_title LIKE [1: titleWord] \
         ORDER BY i_title LIMIT 50",
    )
    .unwrap();
    let c = opt.compile(&cat, &q).unwrap();
    let explain = c.explain();
    assert_eq!(c.required_indexes.len(), 1, "{explain}");
    let idx = &c.required_indexes[0];
    assert!(idx.key[0].kind.is_token());
    assert_eq!(idx.key[0].kind.column_name(), "i_title");
    assert_eq!(idx.key[1].kind.column_name(), "i_title");
    // pk i_id is the implicit suffix
    let item = cat.table("item").unwrap();
    let full = idx.full_key_parts(item);
    assert_eq!(full.last().unwrap().kind.column_name(), "i_id");
    assert!(
        c.notes.iter().any(|n| n.contains("tokenized")),
        "{:?}",
        c.notes
    );

    // scan(item token idx) folded stop 50, then FK join to author
    let remotes = c.physical.remote_ops();
    assert_eq!(remotes.len(), 2, "{explain}");
    match remotes[0] {
        PhysicalPlan::IndexScan { spec, .. } => {
            assert!(matches!(&spec.limit, ScanLimit::Bounded { count: 50, .. }));
            assert!(spec.deref, "title index does not cover i_a_id");
        }
        other => panic!("{other:?}"),
    }
    assert!(matches!(remotes[1], PhysicalPlan::IndexFKJoin { .. }));
    // 1 range + 50 derefs + 50 author gets
    assert_eq!(c.bounds.requests, 101);
    assert_eq!(c.class, QueryClass::Constant);
}

#[test]
fn unbounded_scan_suggests_pagination() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select("SELECT * FROM users").unwrap();
    let err = opt.compile(&cat, &q).unwrap_err();
    let report = err.insight().unwrap();
    assert!(report.suggestions.contains(&Suggestion::AddLimitOrPaginate));
    assert!(report.suggestions.contains(&Suggestion::Precompute));
}

#[test]
fn class_iii_and_iv_detected_by_cost_based_analysis() {
    let cat = scadr_catalog();
    // Class III: single unbounded scan
    let q3 = parse_select("SELECT * FROM thoughts WHERE text = <x>").unwrap();
    let opt = Optimizer::cost_based(Statistics::new());
    let c3 = opt.compile(&cat, &q3).unwrap();
    assert_eq!(c3.class, QueryClass::Linear);
    // Class IV: join with unbounded fan-out over an unbounded scan
    let q4 = parse_select("SELECT * FROM thoughts t JOIN subscriptions s WHERE s.target = t.owner")
        .unwrap();
    let c4 = opt.compile(&cat, &q4).unwrap();
    assert_eq!(c4.class, QueryClass::SuperLinear);
}

#[test]
fn range_scan_with_limit_uses_primary_order() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select(
        "SELECT * FROM thoughts WHERE owner = <u> AND timestamp > <since> \
         ORDER BY timestamp ASC LIMIT 25",
    )
    .unwrap();
    let c = opt.compile(&cat, &q).unwrap();
    let remotes = c.physical.remote_ops();
    match remotes[0] {
        PhysicalPlan::IndexScan { spec, .. } => {
            assert!(spec.range.is_some());
            assert!(!spec.reverse);
            assert!(matches!(&spec.limit, ScanLimit::Bounded { count: 25, .. }));
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(c.bounds.requests, 1);
}

#[test]
fn explain_renders_all_three_stages() {
    let cat = scadr_catalog();
    let opt = Optimizer::scale_independent();
    let q = parse_select(THOUGHTSTREAM).unwrap();
    let c = opt.compile(&cat, &q).unwrap();
    let text = c.explain();
    assert!(text.contains("-- logical plan (naive)"));
    assert!(text.contains("DataStop"));
    assert!(text.contains("SortedIndexJoin"));
    assert!(text.contains("CARDINALITY LIMIT 100 (owner)"));
}
