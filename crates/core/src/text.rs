//! Tokenization for inverted full-text indexes (§7.3).
//!
//! PIQL rewrites `LIKE` predicates into lookups against a `TOKEN(col)`
//! index. The tokenizer is deliberately simple and deterministic: lowercase,
//! split on non-alphanumeric characters, drop empties. Both the write path
//! (index maintenance) and predicate evaluation use this single definition,
//! so a stored row always matches the tokens it was indexed under.

/// Split `text` into lowercase alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Canonical form of a single search token (what a `LIKE [param]` binds to).
/// Returns `None` when the pattern contains more than one token — PIQL's
/// inverted index serves single-token lookups (§7.3).
pub fn search_token(pattern: &str) -> Option<String> {
    let stripped = pattern.trim_matches('%');
    let mut toks = tokenize(stripped);
    if toks.len() == 1 {
        Some(toks.remove(0))
    } else {
        None
    }
}

/// Whether `text` contains `token` as one of its tokens.
pub fn contains_token(text: &str, token: &str) -> bool {
    let token = token.to_lowercase();
    tokenize(text).contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_lowercase_alnum() {
        assert_eq!(
            tokenize("The Grapes-of Wrath! 2nd ed."),
            vec!["the", "grapes", "of", "wrath", "2nd", "ed"]
        );
        assert!(tokenize("  --  ").is_empty());
    }

    #[test]
    fn search_token_accepts_single_words_only() {
        assert_eq!(search_token("Wrath"), Some("wrath".into()));
        assert_eq!(search_token("%wrath%"), Some("wrath".into()));
        assert_eq!(search_token("grapes of"), None);
        assert_eq!(search_token(""), None);
    }

    #[test]
    fn containment_is_token_exact() {
        assert!(contains_token("The Grapes of Wrath", "grapes"));
        assert!(!contains_token("The Grapes of Wrath", "rape"));
        assert!(contains_token("Ümlaut Text", "ümlaut"));
    }
}
