//! Query scaling classes (§2, Figure 1).
//!
//! * **Class I (Constant)** — the data a query touches is constant
//!   regardless of database size: pk lookups, fixed LIMITs without joins,
//!   joins against unique primary keys.
//! * **Class II (Bounded)** — touched data grows but is capped by explicit
//!   relationship-cardinality constraints (or declared parameter maxima).
//! * **Class III (Linear)** — touched data grows linearly (one unbounded
//!   scan or join fan-out).
//! * **Class IV (Super-linear)** — intermediate results grow faster than
//!   the database (two or more unbounded operators compounding, e.g. a self
//!   cartesian product).
//!
//! A success-tolerant application may only ship Class I and II queries.

use std::fmt;

/// The four classes of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryClass {
    Constant,
    Bounded,
    Linear,
    SuperLinear,
}

impl QueryClass {
    /// Classify from compilation evidence: how many remote operators had no
    /// static bound, and whether any bound came from a cardinality
    /// constraint (vs only pk/LIMIT bounds).
    pub fn from_analysis(unbounded_ops: u64, used_cardinality_bound: bool) -> QueryClass {
        match (unbounded_ops, used_cardinality_bound) {
            (0, false) => QueryClass::Constant,
            (0, true) => QueryClass::Bounded,
            (1, _) => QueryClass::Linear,
            (_, _) => QueryClass::SuperLinear,
        }
    }

    /// Scale-independent queries are exactly Classes I and II.
    pub fn is_scale_independent(self) -> bool {
        matches!(self, QueryClass::Constant | QueryClass::Bounded)
    }

    pub fn roman(self) -> &'static str {
        match self {
            QueryClass::Constant => "I",
            QueryClass::Bounded => "II",
            QueryClass::Linear => "III",
            QueryClass::SuperLinear => "IV",
        }
    }

    /// Why the class was assigned, in terms of the evidence
    /// [`QueryClass::from_analysis`] consumed — the derivation line audit
    /// reports attach to the root of the bound tree.
    pub fn derivation(self) -> &'static str {
        match self {
            QueryClass::Constant => {
                "every remote operator is statically bounded by a primary key, \
                 LIMIT, or PAGINATE clause alone"
            }
            QueryClass::Bounded => {
                "every remote operator is statically bounded, and at least one \
                 bound rests on a declared relationship cardinality or \
                 parameter maximum"
            }
            QueryClass::Linear => {
                "exactly one remote operator has no static bound; the data \
                 touched grows linearly with the database"
            }
            QueryClass::SuperLinear => {
                "two or more remote operators have no static bound; \
                 intermediate results compound faster than the database grows"
            }
        }
    }
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QueryClass::Constant => "Class I (constant)",
            QueryClass::Bounded => "Class II (bounded)",
            QueryClass::Linear => "Class III (linear)",
            QueryClass::SuperLinear => "Class IV (super-linear)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert_eq!(QueryClass::from_analysis(0, false), QueryClass::Constant);
        assert_eq!(QueryClass::from_analysis(0, true), QueryClass::Bounded);
        assert_eq!(QueryClass::from_analysis(1, true), QueryClass::Linear);
        assert_eq!(QueryClass::from_analysis(2, false), QueryClass::SuperLinear);
        assert!(QueryClass::Bounded.is_scale_independent());
        assert!(!QueryClass::Linear.is_scale_independent());
        assert_eq!(QueryClass::SuperLinear.roman(), "IV");
    }
}
