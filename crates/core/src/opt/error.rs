//! Optimizer errors and the structural half of the Performance Insight
//! Assistant (§6.4).
//!
//! When the compiler cannot produce a scale-independent plan, it does not
//! just fail: it identifies the unbounded plan segment and suggests concrete
//! schema or query changes that would allow optimization to proceed —
//! exactly the workflow Table 1's "Modifications" column records.

use crate::plan::BindError;
use std::fmt;

/// A concrete fix suggested by the assistant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suggestion {
    /// Add `CARDINALITY LIMIT n (columns)` to the table so the optimizer can
    /// insert a data-stop (§4.2). The paper's thoughtstream example.
    AddCardinalityLimit { table: String, columns: Vec<String> },
    /// Add `LIMIT k` / `PAGINATE k` so a standard stop bounds the plan.
    AddLimitOrPaginate,
    /// Rewrite a general `LIKE` into a single-keyword tokenized search
    /// served by an inverted `TOKEN(col)` index (§7.3).
    TokenizeSearch { table: String, column: String },
    /// Declare `MAX n` on a collection parameter so `IN` lookups are
    /// bounded.
    DeclareParamMax { param: String },
    /// The query is analytical (Class III/IV); serve it from a
    /// pre-computed/materialized result instead (§8.2, future work in §10).
    Precompute,
}

impl fmt::Display for Suggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suggestion::AddCardinalityLimit { table, columns } => write!(
                f,
                "add `CARDINALITY LIMIT <n> ({})` to table {table}",
                columns.join(", ")
            ),
            Suggestion::AddLimitOrPaginate => {
                write!(f, "add a LIMIT or PAGINATE clause to bound the result")
            }
            Suggestion::TokenizeSearch { table, column } => write!(
                f,
                "rewrite the LIKE predicate on {table}.{column} as a single-keyword \
                 tokenized search (served by an inverted TOKEN({column}) index)"
            ),
            Suggestion::DeclareParamMax { param } => {
                write!(f, "declare a maximum cardinality: `[{param} MAX <n>]`")
            }
            Suggestion::Precompute => write!(
                f,
                "this is an analytical query; answer it from a pre-computed result"
            ),
        }
    }
}

/// The assistant's diagnosis of a rejected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsightReport {
    /// What part of the plan is unbounded, in plain language.
    pub problem: String,
    /// Binding name of the offending relation, when identifiable.
    pub relation: Option<String>,
    pub suggestions: Vec<Suggestion>,
}

impl fmt::Display for InsightReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "not scale-independent: {}", self.problem)?;
        if let Some(rel) = &self.relation {
            writeln!(f, "  offending relation: {rel}")?;
        }
        for s in &self.suggestions {
            writeln!(f, "  suggestion: {s}")?;
        }
        Ok(())
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// Binding failed before optimization started.
    Bind(BindError),
    /// No scale-independent plan exists; the report explains why and how to
    /// fix it (Algorithm 2 line 12).
    NotScaleIndependent(InsightReport),
    /// Internal invariant violation (a bug, surfaced loudly).
    Internal(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Bind(e) => write!(f, "{e}"),
            OptError::NotScaleIndependent(r) => write!(f, "{r}"),
            OptError::Internal(msg) => write!(f, "internal optimizer error: {msg}"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<BindError> for OptError {
    fn from(e: BindError) -> Self {
        OptError::Bind(e)
    }
}

impl OptError {
    /// The insight report, when this is a scale-independence rejection.
    pub fn insight(&self) -> Option<&InsightReport> {
        match self {
            OptError::NotScaleIndependent(r) => Some(r),
            _ => None,
        }
    }
}
