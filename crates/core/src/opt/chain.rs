//! The optimizer's working representation: a *chain query*.
//!
//! Phase I reasons about join order, data-stop placement, and stop
//! push-down. Rather than rewriting trees in place, the optimizer
//! deconstructs the binder's naive plan into a flat [`Chain`] — one `Leg`
//! per relation with its predicate/stop stack, plus the global join edges,
//! residual predicates, sort, stop, and top operator — transforms that, and
//! re-materializes a logical tree (the Figure 3(c) stage) for display while
//! Phase II compiles the chain directly.

use crate::codec::key::Dir;
use crate::plan::logical::{LogicalPlan, Stop};
use crate::plan::{BoundAggregate, BoundPredicate, FieldId, QuerySchema, RelId};

/// One entry of a leg's bottom-to-top operator stack.
#[derive(Debug, Clone, PartialEq)]
pub enum LegItem {
    Preds(Vec<BoundPredicate>),
    Stop(Stop),
}

/// One relation of the chain with the operators stacked above its leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct Leg {
    pub rel: RelId,
    /// Bottom-to-top: `items[0]` sits directly above the leaf.
    pub items: Vec<LegItem>,
}

impl Leg {
    pub fn new(rel: RelId) -> Self {
        Leg {
            rel,
            items: Vec::new(),
        }
    }

    /// All predicates anywhere in the stack.
    pub fn all_preds(&self) -> Vec<&BoundPredicate> {
        self.items
            .iter()
            .filter_map(|i| match i {
                LegItem::Preds(ps) => Some(ps.iter()),
                LegItem::Stop(_) => None,
            })
            .flatten()
            .collect()
    }

    /// The data-stop, if one was inserted.
    pub fn data_stop(&self) -> Option<&Stop> {
        self.items.iter().find_map(|i| match i {
            LegItem::Stop(s) => Some(s),
            LegItem::Preds(_) => None,
        })
    }

    /// Predicates above the data-stop (not part of its cause). When there is
    /// no data-stop, every predicate is "above".
    pub fn preds_above_stop(&self) -> Vec<&BoundPredicate> {
        let stop_at = self
            .items
            .iter()
            .position(|i| matches!(i, LegItem::Stop(_)));
        match stop_at {
            None => self.all_preds(),
            Some(at) => self.items[at + 1..]
                .iter()
                .filter_map(|i| match i {
                    LegItem::Preds(ps) => Some(ps.iter()),
                    LegItem::Stop(_) => None,
                })
                .flatten()
                .collect(),
        }
    }
}

/// The top of the plan: plain projection or aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum TopOp {
    Project(Vec<(FieldId, String)>),
    Aggregate {
        group_by: Vec<FieldId>,
        aggs: Vec<BoundAggregate>,
    },
}

/// The flattened query.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Legs in join order (phase-I output order).
    pub legs: Vec<Leg>,
    /// All equi-join edges as unordered field pairs.
    pub join_edges: Vec<(FieldId, FieldId)>,
    /// Cross-relation predicates that are not equi-joins.
    pub residual: Vec<BoundPredicate>,
    pub sort: Vec<(FieldId, Dir)>,
    /// Standard stop from LIMIT/PAGINATE.
    pub stop: Option<Stop>,
    pub top: TopOp,
}

/// Deconstruct the binder's naive plan. The binder's output shape is fixed
/// (Project|Aggregate → Stop? → Sort? → Selection? → join tree), so this
/// cannot fail for plans it produced; unexpected shapes are a bug.
pub fn deconstruct(plan: &LogicalPlan) -> Chain {
    let mut node = plan;
    let top = match node {
        LogicalPlan::Project { input, items } => {
            node = input;
            TopOp::Project(items.clone())
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            node = input;
            TopOp::Aggregate {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            }
        }
        _ => TopOp::Project(Vec::new()),
    };
    let mut stop = None;
    if let LogicalPlan::Stop { input, stop: s } = node {
        stop = Some(s.clone());
        node = input;
    }
    let mut sort = Vec::new();
    if let LogicalPlan::Sort { input, keys } = node {
        sort = keys.clone();
        node = input;
    }
    let mut residual = Vec::new();
    if let LogicalPlan::Selection { input, predicates } = node {
        // only a selection sitting on a join is the residual (cross-
        // relation) filter; above a leaf it is the relation's own stack
        if matches!(input.as_ref(), LogicalPlan::Join { .. }) {
            residual = predicates.clone();
            node = input;
        }
    }
    // join tree
    let mut legs = Vec::new();
    let mut join_edges = Vec::new();
    fn walk_joins(node: &LogicalPlan, legs: &mut Vec<Leg>, edges: &mut Vec<(FieldId, FieldId)>) {
        match node {
            LogicalPlan::Join { left, right, on } => {
                walk_joins(left, legs, edges);
                walk_joins(right, legs, edges);
                edges.extend(on.iter().copied());
            }
            other => legs.push(leg_from_stack(other)),
        }
    }
    fn leg_from_stack(node: &LogicalPlan) -> Leg {
        let mut items_top_down = Vec::new();
        let mut cur = node;
        loop {
            match cur {
                LogicalPlan::Selection { input, predicates } => {
                    items_top_down.push(LegItem::Preds(predicates.clone()));
                    cur = input;
                }
                LogicalPlan::Stop { input, stop } => {
                    items_top_down.push(LegItem::Stop(stop.clone()));
                    cur = input;
                }
                LogicalPlan::Relation { rel } | LogicalPlan::ParamValues { rel } => {
                    items_top_down.reverse();
                    return Leg {
                        rel: *rel,
                        items: items_top_down,
                    };
                }
                other => {
                    unreachable!("unexpected node inside a leg stack: {other:?}")
                }
            }
        }
    }
    walk_joins(node, &mut legs, &mut join_edges);
    Chain {
        legs,
        join_edges,
        residual,
        sort,
        stop,
        top,
    }
}

/// Re-materialize a logical tree from the chain — the Figure 3(c) display.
pub fn materialize(chain: &Chain, schema: &QuerySchema) -> LogicalPlan {
    let leg_tree = |leg: &Leg| -> LogicalPlan {
        let is_param = matches!(
            schema.relation(leg.rel).source,
            crate::plan::RelationSource::ParamValues { .. }
        );
        let mut node = if is_param {
            LogicalPlan::ParamValues { rel: leg.rel }
        } else {
            LogicalPlan::Relation { rel: leg.rel }
        };
        for item in &leg.items {
            node = match item {
                LegItem::Preds(ps) => LogicalPlan::Selection {
                    input: Box::new(node),
                    predicates: ps.clone(),
                },
                LegItem::Stop(s) => LogicalPlan::Stop {
                    input: Box::new(node),
                    stop: s.clone(),
                },
            };
        }
        node
    };

    let mut joined_rels: Vec<RelId> = vec![chain.legs[0].rel];
    let mut node = leg_tree(&chain.legs[0]);
    for leg in &chain.legs[1..] {
        let on: Vec<(FieldId, FieldId)> = chain
            .join_edges
            .iter()
            .filter_map(|&(a, b)| {
                let (ra, rb) = (schema.rel_of(a), schema.rel_of(b));
                if ra == leg.rel && joined_rels.contains(&rb) {
                    Some((b, a))
                } else if rb == leg.rel && joined_rels.contains(&ra) {
                    Some((a, b))
                } else {
                    None
                }
            })
            .collect();
        node = LogicalPlan::Join {
            left: Box::new(node),
            right: Box::new(leg_tree(leg)),
            on,
        };
        joined_rels.push(leg.rel);
    }
    if !chain.residual.is_empty() {
        node = LogicalPlan::Selection {
            input: Box::new(node),
            predicates: chain.residual.clone(),
        };
    }
    if !chain.sort.is_empty() {
        node = LogicalPlan::Sort {
            input: Box::new(node),
            keys: chain.sort.clone(),
        };
    }
    if let Some(stop) = &chain.stop {
        node = LogicalPlan::Stop {
            input: Box::new(node),
            stop: stop.clone(),
        };
    }
    match &chain.top {
        TopOp::Project(items) => LogicalPlan::Project {
            input: Box::new(node),
            items: items.clone(),
        },
        TopOp::Aggregate { group_by, aggs } => LogicalPlan::Aggregate {
            input: Box::new(node),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
    }
}
