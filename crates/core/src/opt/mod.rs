//! The PIQL scale-independent query optimizer (§5).
//!
//! Entry point: [`Optimizer::compile`]. Unlike a traditional optimizer,
//! its objective is not the fastest plan on current data but a plan whose
//! key/value-store operation count is statically bounded no matter how
//! large the database grows. The compiler runs in two phases (Algorithms 1
//! and 2) and either returns a [`Compiled`] query — physical plan, bounds,
//! scaling class, derived indexes, notes — or rejects the query with a
//! [`InsightReport`] explaining how to fix it.

pub mod chain;
pub mod classify;
pub mod error;
pub mod index_selection;
pub mod phase1;
pub mod phase2;

pub use classify::QueryClass;
pub use error::{InsightReport, OptError, Suggestion};
pub use phase1::Objective;
pub use phase2::UNBOUNDED_SCAN_BATCH;

use crate::ast::SelectStmt;
use crate::catalog::{Catalog, IndexDef, Statistics};
use crate::plan::logical::LogicalPlan;
use crate::plan::physical::{PhysicalPlan, QueryBounds};
use crate::plan::{bind, BoundQuery, OutputField, ParamSlot, QuerySchema};

/// A fully compiled PIQL query.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Global field space (may include synthetic `IN`-rewrite relations).
    pub schema: QuerySchema,
    /// Stage (b): the naive logical plan straight out of the binder.
    pub naive: LogicalPlan,
    /// Stage (c): after Phase I (join order, data-stops, push-down).
    pub optimized: LogicalPlan,
    /// Stage (d): the physical plan.
    pub physical: PhysicalPlan,
    /// Whole-query static bounds (guaranteed unless cost-based).
    pub bounds: QueryBounds,
    pub class: QueryClass,
    /// Indexes the plan requires that did not exist at compile time; the
    /// engine creates and maintains them (§5.3).
    pub required_indexes: Vec<IndexDef>,
    pub params: Vec<ParamSlot>,
    /// `Some(page size)` when the query used PAGINATE.
    pub page_size: Option<u64>,
    pub output: Vec<OutputField>,
    /// Modifications/decisions worth surfacing (Table 1's notes).
    pub notes: Vec<String>,
}

impl Compiled {
    /// Render all three plan stages, Figure-3 style.
    pub fn explain(&self) -> String {
        format!(
            "-- logical plan (naive)\n{}\n-- logical plan (after phase 1)\n{}\n-- physical plan\n{}",
            self.naive.display_with(&self.schema),
            self.optimized.display_with(&self.schema),
            self.physical.display_with(&self.schema),
        )
    }
}

/// The optimizer facade.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    pub objective: Objective,
    /// Statistics for the cost-based baseline (ignored in SI mode).
    pub stats: Option<Statistics>,
}

impl Optimizer {
    pub fn scale_independent() -> Self {
        Optimizer {
            objective: Objective::ScaleIndependent,
            stats: None,
        }
    }

    pub fn cost_based(stats: Statistics) -> Self {
        Optimizer {
            objective: Objective::CostBased,
            stats: Some(stats),
        }
    }

    /// Compile a bound query.
    pub fn compile_bound(
        &self,
        catalog: &Catalog,
        bound: BoundQuery,
    ) -> Result<Compiled, OptError> {
        let BoundQuery {
            mut schema,
            plan: naive,
            row_bound,
            output,
            params: _,
        } = bound;

        // ---------------- Phase I
        let mut working = chain::deconstruct(&naive);
        let mut notes = Vec::new();
        match self.objective {
            Objective::ScaleIndependent => {
                notes.extend(phase1::rewrite_in_params(
                    catalog,
                    &mut schema,
                    &mut working,
                ));
                phase1::order_joins(catalog, &schema, &mut working);
                phase1::insert_data_stops(catalog, &schema, &mut working);
                self.finish(catalog, schema, naive, working, row_bound, output, notes)
            }
            Objective::CostBased => {
                // consider both shapes (with and without the IN rewrite) and
                // keep the one with the lower *expected* request count —
                // the traditional objective (§8.3)
                let mut alt_schema = schema.clone();
                let mut alt_chain = working.clone();
                let alt_notes = phase1::rewrite_in_params(catalog, &mut alt_schema, &mut alt_chain);

                phase1::order_joins(catalog, &schema, &mut working);
                phase1::insert_data_stops(catalog, &schema, &mut working);
                let plain = self.finish(
                    catalog,
                    schema,
                    naive.clone(),
                    working,
                    row_bound,
                    output.clone(),
                    notes.clone(),
                );
                if alt_notes.is_empty() {
                    return plain;
                }
                phase1::order_joins(catalog, &alt_schema, &mut alt_chain);
                phase1::insert_data_stops(catalog, &alt_schema, &mut alt_chain);
                let mut notes2 = notes;
                notes2.extend(alt_notes);
                let rewritten = self.finish(
                    catalog, alt_schema, naive, alt_chain, row_bound, output, notes2,
                );
                match (plain, rewritten) {
                    (Ok(a), Ok(b)) => {
                        // expected requests: estimates for unbounded ops are
                        // already folded into bounds.requests
                        Ok(if a.bounds.requests <= b.bounds.requests {
                            a
                        } else {
                            b
                        })
                    }
                    (Ok(a), Err(_)) => Ok(a),
                    (Err(_), Ok(b)) => Ok(b),
                    (Err(e), Err(_)) => Err(e),
                }
            }
        }
    }

    /// Bind and compile a parsed SELECT.
    pub fn compile(&self, catalog: &Catalog, stmt: &SelectStmt) -> Result<Compiled, OptError> {
        let bound = bind(catalog, stmt)?;
        self.compile_bound(catalog, bound)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        catalog: &Catalog,
        schema: QuerySchema,
        naive: LogicalPlan,
        working: chain::Chain,
        row_bound: Option<crate::ast::RowBound>,
        output: Vec<OutputField>,
        mut notes: Vec<String>,
    ) -> Result<Compiled, OptError> {
        let optimized = chain::materialize(&working, &schema);
        let mut p2 = phase2::Phase2::new(catalog, &schema, self.objective, self.stats.as_ref());
        let physical = p2.compile(&working)?;
        notes.append(&mut p2.notes);
        notes.dedup();
        let class = QueryClass::from_analysis(p2.unbounded_ops, p2.used_cardinality_bound);
        let bounds = physical.total_bounds(p2.unbounded_ops == 0);
        // dedup derived indexes by shape
        let mut required_indexes: Vec<IndexDef> = Vec::new();
        for idx in p2.required_indexes {
            if !required_indexes
                .iter()
                .any(|e| e.table == idx.table && e.key == idx.key)
            {
                required_indexes.push(idx);
            }
        }
        // recompute param slots against the final (possibly rewritten) plan
        let params = {
            let bq = BoundQuery {
                schema: schema.clone(),
                plan: optimized.clone(),
                row_bound,
                output: output.clone(),
                params: Vec::new(),
            };
            collect_final_params(&bq)
        };
        Ok(Compiled {
            schema,
            naive,
            optimized,
            physical,
            bounds,
            class,
            required_indexes,
            params,
            page_size: row_bound.and_then(|b| {
                if b.is_paginated() {
                    Some(b.count())
                } else {
                    None
                }
            }),
            output,
            notes,
        })
    }
}

/// Parameter slots of the final plan (ParamValues relations included).
fn collect_final_params(bq: &BoundQuery) -> Vec<ParamSlot> {
    use crate::plan::RelationSource;
    let mut slots: std::collections::BTreeMap<usize, ParamSlot> = std::collections::BTreeMap::new();
    // from relations
    for rel in &bq.schema.relations {
        if let RelationSource::ParamValues { param, .. } = &rel.source {
            slots.insert(
                param.index,
                ParamSlot {
                    index: param.index,
                    name: param.name.clone(),
                    collection_max: param.max_cardinality,
                },
            );
        }
    }
    // from predicates in the plan
    fn visit(plan: &LogicalPlan, slots: &mut std::collections::BTreeMap<usize, ParamSlot>) {
        use crate::plan::{BoundPredicate, InOperand, Operand};
        let mut visit_preds = |preds: &[BoundPredicate]| {
            for p in preds {
                match p {
                    BoundPredicate::Compare { operand, .. }
                    | BoundPredicate::TokenMatch { operand, .. } => {
                        if let Operand::Param(prm) = operand {
                            slots.entry(prm.index).or_insert(ParamSlot {
                                index: prm.index,
                                name: prm.name.clone(),
                                collection_max: None,
                            });
                        }
                    }
                    BoundPredicate::In {
                        operand: InOperand::Param(prm),
                        ..
                    } => {
                        slots.entry(prm.index).or_insert(ParamSlot {
                            index: prm.index,
                            name: prm.name.clone(),
                            collection_max: Some(prm.max_cardinality.unwrap_or(u64::MAX)),
                        });
                    }
                    _ => {}
                }
            }
        };
        match plan {
            LogicalPlan::Selection { input, predicates } => {
                visit_preds(predicates);
                visit(input, slots);
            }
            LogicalPlan::Stop { input, stop } => {
                visit_preds(&stop.cause);
                visit(input, slots);
            }
            LogicalPlan::Join { left, right, .. } => {
                visit(left, slots);
                visit(right, slots);
            }
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => visit(input, slots),
            LogicalPlan::Relation { .. } | LogicalPlan::ParamValues { .. } => {}
        }
    }
    visit(&bq.plan, &mut slots);
    let max_index = slots.keys().copied().max().map(|m| m + 1).unwrap_or(0);
    (0..max_index)
        .map(|i| {
            slots.remove(&i).unwrap_or(ParamSlot {
                index: i,
                name: format!("p{}", i + 1),
                collection_max: None,
            })
        })
        .collect()
}
