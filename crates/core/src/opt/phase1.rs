//! Phase I of the optimizer — `StopOperatorPrepare` (Algorithm 1, §5.1).
//!
//! 1. Rewrite bounded `IN [param MAX n]` predicates into joins against a
//!    synthetic bounded relation (enabling the paper's "bounded random
//!    lookup" plans, §8.3).
//! 2. Find a linear join ordering that starts from the most tightly bounded
//!    relation and extends along join edges.
//! 3. Insert *data-stop* operators wherever attribute-equality predicates
//!    cover a primary key (cardinality 1) or a `CARDINALITY LIMIT`
//!    constraint (lines 3–11).
//! 4. Push stops down: a data-stop sinks past every predicate except the
//!    ones that caused its insertion (line 12); the standard stop stays atop
//!    the sort, to be folded into remote operators by Phase II.

use super::chain::{Chain, Leg, LegItem};
use crate::catalog::CardinalityConstraint;
use crate::catalog::{Catalog, ColumnId, TableDef};
use crate::plan::logical::{Stop, StopKind};
use crate::plan::provenance::Provenance;
use crate::plan::{BoundPredicate, InOperand, QuerySchema, RelId, RelationSource};
use std::collections::BTreeSet;

/// Base column of a (possibly `token:`-prefixed) constraint column.
fn piql_cc_base(col: &str) -> &str {
    CardinalityConstraint::base_column(col)
}

/// Which objective the compiler pursues (§8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// The paper's contribution: refuse plans without static bounds.
    #[default]
    ScaleIndependent,
    /// Traditional baseline: minimize expected operation count using table
    /// statistics; unbounded plans allowed.
    CostBased,
}

/// Attribute-equality predicates of a leg, as (table column, predicate).
pub fn leg_eq_columns(schema: &QuerySchema, leg: &Leg) -> Vec<(ColumnId, BoundPredicate)> {
    let mut out = Vec::new();
    for p in leg.all_preds() {
        if let Some((field, _)) = p.as_attribute_equality() {
            if let Some(col) = schema.field(field).column {
                out.push((col, p.clone()));
            }
        }
    }
    out
}

/// The table behind a leg, when it is a base table.
pub fn leg_table<'a>(
    catalog: &'a Catalog,
    schema: &QuerySchema,
    leg: &Leg,
) -> Option<&'a std::sync::Arc<TableDef>> {
    match schema.relation(leg.rel).source {
        RelationSource::Table(id) => Some(catalog.table_by_id(id)),
        RelationSource::ParamValues { .. } => None,
    }
}

/// Step 1: rewrite `col IN [param MAX n]` into a join with a synthetic
/// bounded relation when the lookup side is otherwise pk- or
/// constraint-addressable. Returns human-readable notes of rewrites applied.
pub fn rewrite_in_params(
    catalog: &Catalog,
    schema: &mut QuerySchema,
    chain: &mut Chain,
) -> Vec<String> {
    let mut notes = Vec::new();
    let mut new_legs = Vec::new();
    for leg in &mut chain.legs {
        let Some(table) = leg_table(catalog, schema, leg) else {
            continue;
        };
        let table = table.clone();
        let eq_cols: BTreeSet<ColumnId> = leg_eq_columns(schema, leg)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        for item in &mut leg.items {
            let LegItem::Preds(preds) = item else {
                continue;
            };
            let mut i = 0;
            while i < preds.len() {
                let candidate = match &preds[i] {
                    BoundPredicate::In {
                        field,
                        operand: InOperand::Param(p),
                    } if p.max_cardinality.is_some() => Some((*field, p.clone())),
                    _ => None,
                };
                let Some((field, param)) = candidate else {
                    i += 1;
                    continue;
                };
                let Some(col) = schema.field(field).column else {
                    i += 1;
                    continue;
                };
                // beneficial only if eq cols + IN col pin the pk or a
                // cardinality constraint
                let mut cols: Vec<ColumnId> = eq_cols.iter().copied().collect();
                cols.push(col);
                let addressable =
                    table.covers_primary_key(&cols) || table.matching_cardinality(&cols).is_some();
                if !addressable {
                    i += 1;
                    continue;
                }
                let max = param.max_cardinality.expect("checked");
                let binding = format!("${}", param.name);
                let ty = schema.field(field).ty;
                let rel = schema.add_param_values(param.clone(), ty, &binding);
                let value_field = schema.relation(rel).first_field;
                chain.join_edges.push((value_field, field));
                let mut new_leg = Leg::new(rel);
                new_leg.items.push(LegItem::Stop(Stop {
                    kind: StopKind::Data,
                    count: max,
                    provenance: Provenance::ParamMax {
                        param: param.name.clone(),
                        max,
                    },
                    cause: Vec::new(),
                }));
                new_legs.push(new_leg);
                notes.push(format!(
                    "rewrote `{} IN [{}]` into a bounded lookup join ({} random reads max)",
                    schema.field(field).qualified_name(),
                    param.name,
                    max
                ));
                preds.remove(i);
            }
        }
        leg.items
            .retain(|i| !matches!(i, LegItem::Preds(ps) if ps.is_empty()));
    }
    chain.legs.extend(new_legs);
    notes
}

/// Step 2: linear join ordering (Algorithm 1 line 1).
pub fn order_joins(catalog: &Catalog, schema: &QuerySchema, chain: &mut Chain) {
    let n = chain.legs.len();
    if n <= 1 {
        return;
    }

    // how tightly a leg is bounded on its own
    let self_score = |leg: &Leg| -> u8 {
        match schema.relation(leg.rel).source {
            RelationSource::ParamValues { .. } => 0,
            RelationSource::Table(_) => {
                let table = leg_table(catalog, schema, leg).expect("table leg");
                let cols: Vec<ColumnId> = leg_eq_columns(schema, leg)
                    .into_iter()
                    .map(|(c, _)| c)
                    .collect();
                let token_bounded = leg.all_preds().iter().any(|p| match p {
                    BoundPredicate::TokenMatch { field, .. } => schema
                        .field(*field)
                        .column
                        .and_then(|c| table.matching_token_cardinality(c))
                        .is_some(),
                    _ => false,
                });
                if table.covers_primary_key(&cols) {
                    0
                } else if table.matching_cardinality(&cols).is_some() || token_bounded {
                    1
                } else if leg
                    .all_preds()
                    .iter()
                    .any(|p| matches!(p, BoundPredicate::TokenMatch { .. }))
                    || !cols.is_empty()
                {
                    2
                } else if !leg.all_preds().is_empty() {
                    3
                } else {
                    4
                }
            }
        }
    };

    // how good it is to join `leg` given already-placed relations
    let join_score = |leg: &Leg, placed: &BTreeSet<RelId>| -> u8 {
        let Some(table) = leg_table(catalog, schema, leg) else {
            return 0; // ParamValues join: bounded lookups
        };
        let mut cols: Vec<ColumnId> = leg_eq_columns(schema, leg)
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        for &(a, b) in &chain.join_edges {
            for (mine, other) in [(a, b), (b, a)] {
                if schema.rel_of(mine) == leg.rel && placed.contains(&schema.rel_of(other)) {
                    if let Some(c) = schema.field(mine).column {
                        cols.push(c);
                    }
                }
            }
        }
        if table.covers_primary_key(&cols) {
            0
        } else if table.matching_cardinality(&cols).is_some() {
            1
        } else {
            2
        }
    };

    let connected = |leg: &Leg, placed: &BTreeSet<RelId>| -> bool {
        chain.join_edges.iter().any(|&(a, b)| {
            (schema.rel_of(a) == leg.rel && placed.contains(&schema.rel_of(b)))
                || (schema.rel_of(b) == leg.rel && placed.contains(&schema.rel_of(a)))
        })
    };

    let mut remaining: Vec<Leg> = std::mem::take(&mut chain.legs);
    let mut ordered: Vec<Leg> = Vec::with_capacity(n);
    // first leg: tightest self-bound, ties by syntactic position
    let first = remaining
        .iter()
        .enumerate()
        .min_by_key(|(pos, leg)| (self_score(leg), *pos))
        .map(|(pos, _)| pos)
        .expect("nonempty");
    ordered.push(remaining.remove(first));
    let mut placed: BTreeSet<RelId> = ordered.iter().map(|l| l.rel).collect();
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .enumerate()
            .min_by_key(|(pos, leg)| {
                let conn = connected(leg, &placed);
                (
                    !conn, // connected legs first
                    if conn {
                        join_score(leg, &placed)
                    } else {
                        self_score(leg)
                    },
                    *pos,
                )
            })
            .map(|(pos, _)| pos)
            .expect("nonempty");
        let leg = remaining.remove(next);
        placed.insert(leg.rel);
        ordered.push(leg);
    }
    chain.legs = ordered;
}

/// Steps 3–4: data-stop insertion (Algorithm 1 lines 3–11) and stop
/// push-down (line 12). Each table leg gets at most one data-stop — the
/// tightest applicable — placed directly above its cause predicates, with
/// the remaining predicates above it.
pub fn insert_data_stops(catalog: &Catalog, schema: &QuerySchema, chain: &mut Chain) {
    for leg in &mut chain.legs {
        let Some(table) = leg_table(catalog, schema, leg) else {
            continue; // ParamValues legs carry their stop from the rewrite
        };
        if leg.data_stop().is_some() {
            continue;
        }
        let eq = leg_eq_columns(schema, leg);
        let cols: Vec<ColumnId> = eq.iter().map(|(c, _)| *c).collect();
        // tokenized searches may be bounded by TOKEN(col) constraints
        let token_pred: Option<(ColumnId, BoundPredicate)> =
            leg.all_preds().iter().find_map(|p| match p {
                BoundPredicate::TokenMatch { field, .. } => {
                    schema.field(*field).column.map(|c| (c, (*p).clone()))
                }
                _ => None,
            });
        let (count, provenance, cause): (u64, Provenance, Vec<BoundPredicate>) =
            if table.covers_primary_key(&cols) {
                let pk = table.primary_key_ids();
                let cause = eq
                    .iter()
                    .filter(|(c, _)| pk.contains(c))
                    .map(|(_, p)| p.clone())
                    .collect();
                (
                    1,
                    Provenance::PrimaryKey {
                        table: table.name.clone(),
                    },
                    cause,
                )
            } else if let Some(cc) = table.matching_cardinality(&cols) {
                let cc_cols: Vec<ColumnId> = cc
                    .columns
                    .iter()
                    .map(|n| table.column_id(n).expect("validated"))
                    .collect();
                let cause = eq
                    .iter()
                    .filter(|(c, _)| cc_cols.contains(c))
                    .map(|(_, p)| p.clone())
                    .collect();
                (
                    cc.limit,
                    Provenance::Cardinality {
                        table: table.name.clone(),
                        limit: cc.limit,
                        columns: cc.columns.clone(),
                    },
                    cause,
                )
            } else if let Some((tc, tp)) = token_pred
                .as_ref()
                .and_then(|(c, p)| table.matching_token_cardinality(*c).map(|cc| (cc, p)))
                .map(|(cc, p)| {
                    (
                        (
                            cc.limit,
                            Provenance::TokenCardinality {
                                table: table.name.clone(),
                                limit: cc.limit,
                                column: piql_cc_base(&cc.columns[0]).to_string(),
                            },
                        ),
                        p.clone(),
                    )
                })
            {
                (tc.0, tc.1, vec![tp])
            } else {
                continue;
            };
        // push-down result: [cause][data-stop][rest]
        let all: Vec<BoundPredicate> = leg.all_preds().into_iter().cloned().collect();
        let rest: Vec<BoundPredicate> =
            all.iter().filter(|p| !cause.contains(p)).cloned().collect();
        let mut items = Vec::new();
        if !cause.is_empty() {
            items.push(LegItem::Preds(cause.clone()));
        }
        items.push(LegItem::Stop(Stop {
            kind: StopKind::Data,
            count,
            provenance,
            cause,
        }));
        if !rest.is_empty() {
            items.push(LegItem::Preds(rest));
        }
        leg.items = items;
    }
}
