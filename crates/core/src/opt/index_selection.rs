//! Index selection (§5.3).
//!
//! Given the predicates a remote operator must serve, find an index whose
//! key layout makes the matching entries *contiguous*: `[token?] [equality
//! columns] [one inequality column] [sort columns]` with a consistent
//! direction (forward or fully reversed scan). The optimizer prefers the
//! primary index (no deref round trip, no maintenance cost — the Figure 3
//! discussion), then existing secondary indexes, and otherwise *derives* a
//! new index definition which the engine will create and maintain.

use crate::catalog::{Catalog, ColumnId, IndexDef, IndexKeyPart, IndexKind, TableDef};
use crate::codec::key::Dir;
use std::collections::BTreeSet;

/// What the operator needs from an index.
#[derive(Debug, Clone)]
pub struct IndexRequest {
    /// Column a TOKEN() lookup targets (must be the first key part).
    pub token_col: Option<ColumnId>,
    /// Columns with attribute-equality predicates (probe prefix candidates).
    pub eq_cols: BTreeSet<ColumnId>,
    /// Column with a servable inequality, if any.
    pub range_col: Option<ColumnId>,
    /// Desired output order, table-local columns.
    pub sort: Vec<(ColumnId, Dir)>,
    /// Columns that MUST be served as index prefix (⊆ `eq_cols`): a join's
    /// probe columns, a data-stop's cause columns, or all eq columns when a
    /// standard stop provides the bound. Other eq columns may fall back to
    /// local residual filters.
    pub required_eq: BTreeSet<ColumnId>,
}

/// A successful match.
#[derive(Debug, Clone)]
pub struct IndexMatch {
    /// `None` = primary index.
    pub index: Option<IndexDef>,
    /// Eq columns served as index prefix, in index-part order (after the
    /// token part, when present).
    pub served_eq: Vec<ColumnId>,
    pub range_served: bool,
    pub sort_served: bool,
    /// Scan direction: reverse iff the desired sort is the exact reverse of
    /// the index order.
    pub reverse: bool,
    /// Columns reconstructible from the index entry key alone.
    pub covering: BTreeSet<ColumnId>,
    /// True when this match required creating a new index.
    pub derived: bool,
}

impl IndexMatch {
    /// Eq columns NOT served (become local residual predicates).
    pub fn residual_eq(&self, req: &IndexRequest) -> Vec<ColumnId> {
        req.eq_cols
            .iter()
            .copied()
            .filter(|c| !self.served_eq.contains(c))
            .collect()
    }
}

/// Try to match one concrete key-part layout.
fn match_parts(table: &TableDef, parts: &[IndexKeyPart], req: &IndexRequest) -> Option<IndexMatch> {
    let col_id = |part: &IndexKeyPart| table.column_id(part.kind.column_name()).expect("validated");
    let mut i = 0usize;

    // token part handling
    match (req.token_col, parts.first()) {
        (Some(tc), Some(p)) if p.kind.is_token() && col_id(p) == tc => i = 1,
        (Some(_), _) => return None,
        (None, Some(p)) if p.kind.is_token() => return None,
        (None, _) => {}
    }

    // consume equality prefix greedily
    let mut remaining = req.eq_cols.clone();
    let mut served_eq = Vec::new();
    while i < parts.len() && !parts[i].kind.is_token() {
        let c = col_id(&parts[i]);
        if remaining.remove(&c) {
            served_eq.push(c);
            i += 1;
        } else {
            break;
        }
    }
    if req.required_eq.iter().any(|c| remaining.contains(c)) {
        return None;
    }

    // inequality: must sit directly after the eq prefix
    let mut range_served = false;
    if let Some(rc) = req.range_col {
        if i < parts.len() && !parts[i].kind.is_token() && col_id(&parts[i]) == rc {
            range_served = true;
            // the range column doubles as the first sort column when both
            // exist; do not advance — sort matching starts here.
        }
    }

    // sort: skip columns pinned by served equalities (constants)
    let pending: Vec<(ColumnId, Dir)> = req
        .sort
        .iter()
        .copied()
        .filter(|(c, _)| !served_eq.contains(c))
        .collect();
    let mut sort_served = true;
    let mut reverse = false;
    if !pending.is_empty() {
        // §5.2.1: an inequality attribute must be the first sort field
        if req.range_col.is_some() && range_served && pending[0].0 != req.range_col.unwrap() {
            sort_served = false;
        } else if req.range_col.is_some() && !range_served {
            // inequality unserved: sorting via this index is still possible
            // (range becomes residual) as long as sort columns line up.
        }
        if sort_served {
            let mut flip: Option<bool> = None;
            for (offset, (c, d)) in pending.iter().enumerate() {
                let j = i + offset;
                let ok = j < parts.len() && !parts[j].kind.is_token() && col_id(&parts[j]) == *c;
                if !ok {
                    sort_served = false;
                    break;
                }
                let f = parts[j].dir != *d;
                match flip {
                    None => flip = Some(f),
                    Some(prev) if prev != f => {
                        sort_served = false;
                        break;
                    }
                    _ => {}
                }
            }
            reverse = sort_served && flip.unwrap_or(false);
        }
    }

    let covering: BTreeSet<ColumnId> = parts
        .iter()
        .filter(|p| !p.kind.is_token())
        .map(col_id)
        .collect();
    Some(IndexMatch {
        index: None, // caller fills in
        served_eq,
        range_served,
        sort_served,
        reverse,
        covering,
        derived: false,
    })
}

/// Find the best index for `req` on `table`, deriving one if permitted.
pub fn select_index(
    catalog: &Catalog,
    table: &TableDef,
    req: &IndexRequest,
    allow_derive: bool,
) -> Option<IndexMatch> {
    // quality: bigger is better
    let score = |m: &IndexMatch, is_primary: bool| -> (u8, u8, usize, u8) {
        (
            m.sort_served as u8,
            m.range_served as u8,
            m.served_eq.len(),
            is_primary as u8,
        )
    };

    let mut best: Option<(IndexMatch, (u8, u8, usize, u8))> = None;

    // 1. primary index (key = pk asc, value = full row: always covering)
    if req.token_col.is_none() {
        let pk_parts: Vec<IndexKeyPart> = table
            .primary_key
            .iter()
            .map(|c| IndexKeyPart::asc(c.clone()))
            .collect();
        if let Some(mut m) = match_parts(table, &pk_parts, req) {
            m.covering = (0..table.columns.len()).collect();
            let s = score(&m, true);
            best = Some((m, s));
        }
    }

    // 2. existing secondary indexes
    for idx in catalog.indexes_for_table(table.id) {
        let parts = idx.full_key_parts(table);
        if let Some(mut m) = match_parts(table, &parts, req) {
            m.index = Some((*idx).clone());
            let s = score(&m, false);
            if best.as_ref().map(|(_, bs)| s > *bs).unwrap_or(true) {
                best = Some((m, s));
            }
        }
    }

    // A match is *useful* when it serves every obligation that cannot be
    // deferred to a residual filter: all eq columns if required, plus sort
    // and range whenever those were requested and a derived index could
    // serve them.
    let fully_serves = |m: &IndexMatch| -> bool {
        req.required_eq.iter().all(|c| m.served_eq.contains(c))
            && (req.sort.is_empty() || m.sort_served)
            && (req.range_col.is_none() || m.range_served)
    };

    if let Some((m, _)) = &best {
        if fully_serves(m) {
            return best.map(|(m, _)| m);
        }
    }

    // 3. derive a new index (§5.3): [token?] eq cols, range col, sort cols
    if allow_derive {
        let mut parts: Vec<IndexKeyPart> = Vec::new();
        if let Some(tc) = req.token_col {
            parts.push(IndexKeyPart::token(table.columns[tc].name.clone()));
        }
        let mut used: BTreeSet<ColumnId> = BTreeSet::new();
        for &c in &req.eq_cols {
            parts.push(IndexKeyPart::asc(table.columns[c].name.clone()));
            used.insert(c);
        }
        if let Some(rc) = req.range_col {
            if !used.contains(&rc) {
                parts.push(IndexKeyPart::asc(table.columns[rc].name.clone()));
                used.insert(rc);
            }
        }
        for (c, d) in &req.sort {
            if !used.contains(c) && req.range_col != Some(*c) {
                parts.push(IndexKeyPart {
                    kind: IndexKind::Column(table.columns[*c].name.clone()),
                    dir: *d,
                });
                used.insert(*c);
            }
        }
        // all-key-compatible check
        let keyable = parts.iter().all(|p| {
            table
                .column_id(p.kind.column_name())
                .map(|c| table.columns[c].ty.key_compatible())
                .unwrap_or(false)
        });
        if keyable && !parts.is_empty() {
            let name = IndexDef::derived_name(table, &parts);
            let def = IndexDef::new(name, table.id, parts);
            let full = def.full_key_parts(table);
            if let Some(mut m) = match_parts(table, &full, req) {
                if fully_serves(&m) {
                    m.index = Some(def);
                    m.derived = true;
                    return Some(m);
                }
            }
        }
    }

    best.map(|(m, _)| m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::value::DataType;

    fn setup() -> (Catalog, TableDef) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table(
                TableDef::builder("thoughts")
                    .column("owner", DataType::Varchar(32))
                    .column("timestamp", DataType::Timestamp)
                    .column("text", DataType::Varchar(140))
                    .primary_key(&["owner", "timestamp"])
                    .build(),
            )
            .unwrap();
        let t = (**cat.table_by_id(id)).clone();
        (cat, t)
    }

    #[test]
    fn primary_serves_eq_prefix_and_reverse_sort() {
        let (cat, t) = setup();
        let owner = t.column_id("owner").unwrap();
        let ts = t.column_id("timestamp").unwrap();
        let req = IndexRequest {
            token_col: None,
            eq_cols: [owner].into(),
            range_col: None,
            sort: vec![(ts, Dir::Desc)],
            required_eq: [owner].into(),
        };
        let m = select_index(&cat, &t, &req, true).unwrap();
        assert!(m.index.is_none(), "primary index preferred");
        assert!(m.sort_served);
        assert!(m.reverse, "DESC over ASC pk column = reverse scan");
        assert!(!m.derived);
    }

    #[test]
    fn derives_index_when_primary_cannot_serve() {
        let (cat, t) = setup();
        let ts = t.column_id("timestamp").unwrap();
        let text = t.column_id("text").unwrap();
        let req = IndexRequest {
            token_col: Some(text),
            eq_cols: BTreeSet::new(),
            range_col: None,
            sort: vec![(ts, Dir::Desc)],
            required_eq: BTreeSet::new(),
        };
        let m = select_index(&cat, &t, &req, true).unwrap();
        let idx = m.index.expect("derived index");
        assert!(m.derived);
        assert!(idx.key[0].kind.is_token());
        assert_eq!(idx.key[1].kind.column_name(), "timestamp");
        assert_eq!(idx.key[1].dir, Dir::Desc);
        assert!(m.sort_served && !m.reverse);
    }

    #[test]
    fn existing_secondary_reused_instead_of_deriving() {
        let (mut cat, t) = setup();
        let text = t.column_id("text").unwrap();
        cat.create_index(IndexDef::new(
            "idx_existing",
            t.id,
            vec![IndexKeyPart::token("text")],
        ))
        .unwrap();
        let req = IndexRequest {
            token_col: Some(text),
            eq_cols: BTreeSet::new(),
            range_col: None,
            sort: vec![],
            required_eq: BTreeSet::new(),
        };
        let m = select_index(&cat, &t, &req, true).unwrap();
        assert!(!m.derived);
        assert_eq!(m.index.unwrap().name, "idx_existing");
    }

    #[test]
    fn range_must_follow_eq_prefix() {
        let (cat, t) = setup();
        let owner = t.column_id("owner").unwrap();
        let ts = t.column_id("timestamp").unwrap();
        let req = IndexRequest {
            token_col: None,
            eq_cols: [owner].into(),
            range_col: Some(ts),
            sort: vec![],
            required_eq: [owner].into(),
        };
        let m = select_index(&cat, &t, &req, false).unwrap();
        assert!(m.range_served);
        // range on a col not after the prefix: not served by primary
        let req2 = IndexRequest {
            token_col: None,
            eq_cols: BTreeSet::new(),
            range_col: Some(ts),
            sort: vec![],
            required_eq: BTreeSet::new(),
        };
        let m2 = select_index(&cat, &t, &req2, false).unwrap();
        assert!(!m2.range_served, "timestamp is second pk column");
    }

    #[test]
    fn residual_eq_allowed_when_not_required() {
        let (cat, t) = setup();
        let owner = t.column_id("owner").unwrap();
        let text = t.column_id("text").unwrap();
        let req = IndexRequest {
            token_col: None,
            eq_cols: [owner, text].into(),
            range_col: None,
            sort: vec![],
            required_eq: [owner].into(),
        };
        let m = select_index(&cat, &t, &req, false).unwrap();
        assert_eq!(m.served_eq, vec![owner]);
        assert_eq!(m.residual_eq(&req), vec![text]);
    }
}
