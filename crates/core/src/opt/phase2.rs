//! Phase II of the optimizer — `PlanGenerate` (Algorithm 2, §5.2).
//!
//! Walks the chain bottom-up, mapping each leg onto one of the three remote
//! operators (Figure 4):
//!
//! * the first leg becomes an `IndexScan` (or a local `ParamSource`),
//! * a leg whose join keys plus constant equalities pin the target's full
//!   primary key becomes an `IndexFKJoin`,
//! * any other leg becomes a `SortedIndexJoin`, bounded by a folded
//!   standard stop or by a `CARDINALITY LIMIT` on its probe columns.
//!
//! Every remote operator must have an explicit bound; when none exists the
//! compiler rejects the query with an [`InsightReport`]
//! (scale-independent mode) or falls back to statistics-based estimates
//! (cost-based baseline mode, §8.3).

use super::chain::{Chain, Leg, TopOp};
use super::error::{InsightReport, OptError, Suggestion};
use super::index_selection::{select_index, IndexRequest};
use super::phase1::{leg_eq_columns, leg_table, Objective};
use crate::ast::CompareOp;
use crate::catalog::{Catalog, ColumnId, IndexDef, Statistics, TableDef};
use crate::codec::key::Dir;
use crate::plan::logical::Stop;
use crate::plan::physical::{
    IndexRef, KeySource, OpBounds, PhysAggregate, PhysicalPlan, RangeBound, RangeSpec, ScanLimit,
    ScanSpec, SortedJoinSpec,
};
use crate::plan::provenance::Provenance;
use crate::plan::{
    BoundPredicate, FieldId, InOperand, Operand, QuerySchema, RelId, RelationSource,
};
use crate::text;
use std::collections::{BTreeMap, BTreeSet};

/// Fallback row estimate when the cost-based mode has no statistics.
const DEFAULT_GROUP_ESTIMATE: u64 = 1_000;
/// Batch size the executor uses for unbounded scans (cost-based plans).
pub const UNBOUNDED_SCAN_BATCH: u64 = 100;

pub struct Phase2<'a> {
    pub catalog: &'a Catalog,
    pub schema: &'a QuerySchema,
    pub objective: Objective,
    pub stats: Option<&'a Statistics>,
    /// Indexes that must exist for the plan (derived by index selection).
    pub required_indexes: Vec<IndexDef>,
    /// Human-readable compilation notes (Table 1 "modifications").
    pub notes: Vec<String>,
    /// Remote operators without a static bound (cost-based mode only).
    pub unbounded_ops: u64,
    /// Bound provenances that came from schema cardinality constraints or
    /// parameter MAX declarations (drives Class I vs II).
    pub used_cardinality_bound: bool,
}

/// Classified predicates of one leg.
struct LegAnalysis {
    /// Attribute equalities, one per column (first wins).
    eq: BTreeMap<ColumnId, (Operand, BoundPredicate)>,
    token: Option<(ColumnId, Operand, BoundPredicate)>,
    /// Range (inequality) specs per column.
    ranges: BTreeMap<ColumnId, (RangeSpec, Vec<BoundPredicate>)>,
    /// Predicates that can only run as local filters.
    residual: Vec<BoundPredicate>,
    data_stop: Option<Stop>,
}

impl LegAnalysis {
    fn eq_cols(&self) -> BTreeSet<ColumnId> {
        self.eq.keys().copied().collect()
    }
}

struct Build {
    plan: PhysicalPlan,
    /// Global field ids in tuple-position order.
    layout: Vec<FieldId>,
    /// Whether the plan already emits rows in the query's requested order.
    order_ok: bool,
}

impl<'a> Phase2<'a> {
    pub fn new(
        catalog: &'a Catalog,
        schema: &'a QuerySchema,
        objective: Objective,
        stats: Option<&'a Statistics>,
    ) -> Self {
        Phase2 {
            catalog,
            schema,
            objective,
            stats,
            required_indexes: Vec::new(),
            notes: Vec::new(),
            unbounded_ops: 0,
            used_cardinality_bound: false,
        }
    }

    pub fn compile(&mut self, chain: &Chain) -> Result<PhysicalPlan, OptError> {
        let needed = self.needed_fields(chain);
        let pure_fk = self.pure_fk_flags(chain);
        let fold = self.fold_leg(chain, &pure_fk);

        // ---- leg 0
        let leg0 = &chain.legs[0];
        let mut build = match self.schema.relation(leg0.rel).source.clone() {
            RelationSource::ParamValues { param, ty } => {
                let max = param.max_cardinality.unwrap_or(0);
                let field = self.schema.relation(leg0.rel).first_field;
                Build {
                    plan: PhysicalPlan::ParamSource {
                        rel: leg0.rel,
                        param,
                        ty,
                        max,
                        layout: vec![field],
                        bounds: OpBounds {
                            requests: 0,
                            rounds: 0,
                            tuples: max,
                            bytes: 0,
                        },
                    },
                    layout: vec![field],
                    order_ok: chain.sort.is_empty(),
                }
            }
            RelationSource::Table(_) => self.compile_scan(chain, leg0, fold == Some(0), &needed)?,
        };

        // ---- remaining legs
        for (i, leg) in chain.legs.iter().enumerate().skip(1) {
            build = if pure_fk[i].fk_possible {
                self.compile_fk_join(chain, leg, build, &needed)?
            } else {
                self.compile_sorted_join(chain, leg, build, fold == Some(i), &needed)?
            };
        }

        // ---- residual cross-relation predicates
        if !chain.residual.is_empty() {
            let preds = self.remap_preds(&chain.residual, &build.layout);
            build.plan = local_selection(build.plan, preds, build.layout.clone());
        }

        match &chain.top {
            TopOp::Project(items) => {
                if !chain.sort.is_empty() && !build.order_ok {
                    build = self.apply_local_sort(build, &chain.sort)?;
                }
                if let Some(stop) = &chain.stop {
                    if fold.is_none() {
                        build.plan = local_stop(build.plan, stop.count, build.layout.clone());
                    }
                }
                let columns: Vec<(usize, String)> = items
                    .iter()
                    .map(|(fid, name)| {
                        Ok::<_, OptError>((self.pos_of(&build.layout, *fid)?, name.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let layout: Vec<FieldId> = items.iter().map(|(fid, _)| *fid).collect();
                let child_bounds = build.plan.bounds();
                build.plan = PhysicalPlan::LocalProject {
                    child: Box::new(build.plan),
                    columns,
                    layout: layout.clone(),
                    bounds: OpBounds {
                        requests: 0,
                        rounds: 0,
                        tuples: child_bounds.tuples,
                        bytes: 0,
                    },
                };
                build.layout = layout;
            }
            TopOp::Aggregate { group_by, aggs } => {
                let group_pos: Vec<usize> = group_by
                    .iter()
                    .map(|g| self.pos_of(&build.layout, *g))
                    .collect::<Result<_, _>>()?;
                let phys_aggs: Vec<PhysAggregate> = aggs
                    .iter()
                    .map(|a| {
                        Ok::<_, OptError>(PhysAggregate {
                            func: a.func,
                            arg: a.arg.map(|f| self.pos_of(&build.layout, f)).transpose()?,
                            alias: a.alias.clone(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let child_bounds = build.plan.bounds();
                // aggregate output layout: group fields keep their global
                // ids; aggregate columns have no global field (use the
                // group fields only for naming)
                let layout: Vec<FieldId> = group_by.clone();
                build.plan = PhysicalPlan::LocalAggregate {
                    child: Box::new(build.plan),
                    group_by: group_pos,
                    aggs: phys_aggs,
                    layout: layout.clone(),
                    bounds: OpBounds {
                        requests: 0,
                        rounds: 0,
                        tuples: child_bounds.tuples,
                        bytes: 0,
                    },
                };
                build.layout = layout;
                if !chain.sort.is_empty() {
                    // sort keys must be group columns (validated here)
                    build = self.apply_local_sort(build, &chain.sort)?;
                }
                if let Some(stop) = &chain.stop {
                    build.plan = local_stop(build.plan, stop.count, build.layout.clone());
                }
            }
        }
        Ok(build.plan)
    }

    // ------------------------------------------------------------ analysis

    fn analyze_leg(&self, leg: &Leg) -> Result<LegAnalysis, OptError> {
        let mut eq: BTreeMap<ColumnId, (Operand, BoundPredicate)> = BTreeMap::new();
        let mut token = None;
        let mut ranges: BTreeMap<ColumnId, (RangeSpec, Vec<BoundPredicate>)> = BTreeMap::new();
        let mut residual = Vec::new();
        for p in leg.all_preds() {
            match p {
                BoundPredicate::Compare { field, op, operand } => {
                    let Some(col) = self.schema.field(*field).column else {
                        residual.push(p.clone());
                        continue;
                    };
                    match op {
                        CompareOp::Eq => match eq.entry(col) {
                            std::collections::btree_map::Entry::Occupied(_) => {
                                residual.push(p.clone())
                            }
                            std::collections::btree_map::Entry::Vacant(v) => {
                                v.insert((operand.clone(), p.clone()));
                            }
                        },
                        CompareOp::Ne => residual.push(p.clone()),
                        CompareOp::Lt | CompareOp::Le => {
                            let entry = ranges.entry(col).or_default();
                            if entry.0.high.is_none() {
                                entry.0.high = Some(RangeBound {
                                    operand: operand.clone(),
                                    inclusive: *op == CompareOp::Le,
                                });
                                entry.1.push(p.clone());
                            } else {
                                residual.push(p.clone());
                            }
                        }
                        CompareOp::Gt | CompareOp::Ge => {
                            let entry = ranges.entry(col).or_default();
                            if entry.0.low.is_none() {
                                entry.0.low = Some(RangeBound {
                                    operand: operand.clone(),
                                    inclusive: *op == CompareOp::Ge,
                                });
                                entry.1.push(p.clone());
                            } else {
                                residual.push(p.clone());
                            }
                        }
                    }
                }
                BoundPredicate::TokenMatch { field, operand } => {
                    if let Operand::Literal(v) = operand {
                        let ok = v.as_str().and_then(text::search_token).is_some();
                        if !ok {
                            let f = self.schema.field(*field);
                            let table = self.schema.relation(f.rel_id).binding.clone();
                            return Err(OptError::NotScaleIndependent(InsightReport {
                                problem: format!(
                                    "LIKE pattern {operand} is not a single keyword; \
                                     general substring search over a growing relation is \
                                     not scale-independent (§7.3)"
                                ),
                                relation: Some(table.clone()),
                                suggestions: vec![Suggestion::TokenizeSearch {
                                    table,
                                    column: f.name.clone(),
                                }],
                            }));
                        }
                    }
                    let col = self.schema.field(*field).column;
                    match (col, &token) {
                        (Some(c), None) => token = Some((c, operand.clone(), p.clone())),
                        _ => residual.push(p.clone()),
                    }
                }
                other => residual.push(other.clone()),
            }
        }
        Ok(LegAnalysis {
            eq,
            token,
            ranges,
            residual,
            data_stop: leg.data_stop().cloned(),
        })
    }

    // ------------------------------------------------------------ leg 0

    fn compile_scan(
        &mut self,
        chain: &Chain,
        leg: &Leg,
        fold_here: bool,
        needed: &BTreeMap<RelId, BTreeSet<ColumnId>>,
    ) -> Result<Build, OptError> {
        let table = leg_table(self.catalog, self.schema, leg)
            .expect("table leg")
            .clone();
        let analysis = self.analyze_leg(leg)?;

        // sort desired at this leg?
        let local_sort = self.sort_on_rel(chain, leg.rel);
        let sort_cols: Vec<(ColumnId, Dir)> = local_sort
            .iter()
            .filter_map(|(f, d)| self.schema.field(*f).column.map(|c| (c, *d)))
            .collect();

        // range column: prefer the first sort column, else the first range
        let range_col = analysis
            .ranges
            .keys()
            .copied()
            .find(|c| sort_cols.first().map(|(sc, _)| sc == c).unwrap_or(true))
            .or_else(|| analysis.ranges.keys().next().copied());

        // required columns: data-stop cause cols, or everything when the
        // bound must come from the standard stop
        let cause_cols: BTreeSet<ColumnId> = match &analysis.data_stop {
            Some(ds) => ds
                .cause
                .iter()
                .filter_map(|p| {
                    p.as_attribute_equality()
                        .and_then(|(f, _)| self.schema.field(f).column)
                })
                .collect(),
            None => analysis.eq_cols(),
        };

        let req = IndexRequest {
            token_col: analysis.token.as_ref().map(|(c, _, _)| *c),
            eq_cols: analysis.eq_cols(),
            range_col,
            sort: sort_cols.clone(),
            required_eq: cause_cols.clone(),
        };
        let m = select_index(self.catalog, &table, &req, true).ok_or_else(|| {
            self.insight_scan(&table, leg, &analysis, "no usable index layout exists")
        })?;

        // residuals after index choice
        let mut residual = analysis.residual.clone();
        for c in m.residual_eq(&req) {
            residual.push(analysis.eq[&c].1.clone());
        }
        for (c, (_, preds)) in &analysis.ranges {
            if !(m.range_served && range_col == Some(*c)) {
                residual.extend(preds.iter().cloned());
            }
        }

        // ---- bound determination
        let sort_fully_served = chain.sort.is_empty()
            || (!local_sort.is_empty() && local_sort.len() == chain.sort.len() && m.sort_served);
        let can_fold_stop =
            fold_here && residual.is_empty() && sort_fully_served && chain.stop.is_some();
        let limit: ScanLimit = match (&analysis.data_stop, can_fold_stop) {
            (Some(ds), true) => {
                let stop = chain.stop.as_ref().expect("fold implies stop");
                if stop.count < ds.count {
                    ScanLimit::Bounded {
                        count: stop.count,
                        provenance: stop.provenance.clone(),
                    }
                } else {
                    self.record_data_stop(ds);
                    ScanLimit::Bounded {
                        count: ds.count,
                        provenance: ds.provenance.clone(),
                    }
                }
            }
            (Some(ds), false) => {
                self.record_data_stop(ds);
                ScanLimit::Bounded {
                    count: ds.count,
                    provenance: ds.provenance.clone(),
                }
            }
            (None, true) => {
                let stop = chain.stop.as_ref().expect("fold implies stop");
                ScanLimit::Bounded {
                    count: stop.count,
                    provenance: stop.provenance.clone(),
                }
            }
            (None, false) => {
                // token-only lookups, unconstrained scans, ...: unbounded
                match self.objective {
                    Objective::ScaleIndependent => {
                        return Err(self.insight_scan(
                            &table,
                            leg,
                            &analysis,
                            "no stop operator bounds this index scan",
                        ));
                    }
                    Objective::CostBased => {
                        self.unbounded_ops += 1;
                        ScanLimit::Unbounded {
                            estimate: self.estimate_group(&table, m.served_eq.first().copied()),
                        }
                    }
                }
            }
        };

        if analysis.token.is_some() {
            self.notes
                .push("tokenized search (LIKE served by inverted TOKEN index)".into());
        }

        // ---- spec assembly
        let needed_cols = needed.get(&leg.rel).cloned().unwrap_or_default();
        let deref = !needed_cols.is_subset(&m.covering);
        let row_bytes = match &m.index {
            Some(idx) if !deref => index_entry_bytes(&table, idx),
            _ => table.max_row_bytes() as u64,
        };
        let mut eq_prefix: Vec<Operand> = Vec::new();
        if let Some((_, op, _)) = &analysis.token {
            eq_prefix.push(op.clone());
        }
        for c in &m.served_eq {
            eq_prefix.push(analysis.eq[c].0.clone());
        }
        let range = if m.range_served {
            range_col.map(|c| analysis.ranges[&c].0.clone())
        } else {
            None
        };
        if let Some(idx) = &m.index {
            if m.derived {
                self.required_indexes.push(idx.clone());
            }
        }
        let count = limit.count_or_estimate();
        // bounded scans prefetch in ONE range request (§7.1); unbounded
        // (cost-based) scans page through in executor-sized batches
        let range_requests = if limit.is_bounded() {
            1
        } else {
            count.div_ceil(UNBOUNDED_SCAN_BATCH).max(1)
        };
        let bounds = OpBounds {
            requests: range_requests + if deref { count } else { 0 },
            rounds: range_requests + deref as u64,
            tuples: count,
            bytes: count * row_bytes,
        };
        let spec = ScanSpec {
            index: IndexRef {
                table: table.id,
                rel: leg.rel,
                secondary: m.index.clone(),
            },
            eq_prefix,
            range,
            reverse: m.reverse,
            limit,
            deref,
            row_bytes,
        };
        let layout: Vec<FieldId> = self.schema.relation(leg.rel).fields().collect();
        let mut plan = PhysicalPlan::IndexScan {
            spec,
            layout: layout.clone(),
            bounds,
        };
        if !residual.is_empty() {
            let preds = self.remap_preds(&residual, &layout);
            plan = local_selection(plan, preds, layout.clone());
        }
        Ok(Build {
            plan,
            layout,
            order_ok: sort_fully_served,
        })
    }

    // ------------------------------------------------------------ FK join

    fn compile_fk_join(
        &mut self,
        chain: &Chain,
        leg: &Leg,
        child: Build,
        needed: &BTreeMap<RelId, BTreeSet<ColumnId>>,
    ) -> Result<Build, OptError> {
        let table = leg_table(self.catalog, self.schema, leg)
            .expect("table leg")
            .clone();
        let analysis = self.analyze_leg(leg)?;
        let edges = self.edges_into(chain, leg.rel, &child.layout);

        // key sources in pk order
        let mut key = Vec::new();
        let mut consumed_eq: BTreeSet<ColumnId> = BTreeSet::new();
        for pk_col in table.primary_key_ids() {
            if let Some((_, child_pos)) = edges.iter().find(|(c, _)| *c == pk_col) {
                key.push(KeySource::ChildField(*child_pos));
            } else if let Some((op, _)) = analysis.eq.get(&pk_col) {
                key.push(KeySource::Const(op.clone()));
                consumed_eq.insert(pk_col);
            } else {
                return Err(OptError::Internal(format!(
                    "FK join on {} missing pk column {}",
                    table.name, table.columns[pk_col].name
                )));
            }
        }

        let mut residual: Vec<BoundPredicate> = analysis.residual.clone();
        for (c, (_, pred)) in &analysis.eq {
            if !consumed_eq.contains(c) {
                residual.push(pred.clone());
            }
        }
        for (_, preds) in analysis.ranges.values() {
            residual.extend(preds.iter().cloned());
        }

        let child_bounds = child.plan.bounds();
        let row_bytes = table.max_row_bytes() as u64;
        let bounds = OpBounds {
            requests: child_bounds.tuples,
            rounds: 1,
            tuples: child_bounds.tuples,
            bytes: child_bounds.tuples * row_bytes,
        };
        let mut layout = child.layout.clone();
        layout.extend(self.schema.relation(leg.rel).fields());
        let mut plan = PhysicalPlan::IndexFKJoin {
            child: Box::new(child.plan),
            rel: leg.rel,
            table: table.id,
            key,
            row_bytes,
            layout: layout.clone(),
            bounds,
        };
        if !residual.is_empty() {
            let preds = self.remap_preds(&residual, &layout);
            plan = local_selection(plan, preds, layout.clone());
        }
        let _ = needed;
        Ok(Build {
            plan,
            layout,
            order_ok: child.order_ok, // 1:1 join preserves child order
        })
    }

    // ------------------------------------------------------------ sorted join

    fn compile_sorted_join(
        &mut self,
        chain: &Chain,
        leg: &Leg,
        child: Build,
        fold_here: bool,
        needed: &BTreeMap<RelId, BTreeSet<ColumnId>>,
    ) -> Result<Build, OptError> {
        let table = leg_table(self.catalog, self.schema, leg)
            .expect("table leg")
            .clone();
        let analysis = self.analyze_leg(leg)?;
        let edges = self.edges_into(chain, leg.rel, &child.layout);
        if edges.is_empty() {
            return Err(self.insight_join(
                &table,
                leg,
                "relation is joined without any equi-join condition (cross join)",
            ));
        }

        let local_sort = self.sort_on_rel(chain, leg.rel);
        let sort_cols: Vec<(ColumnId, Dir)> = local_sort
            .iter()
            .filter_map(|(f, d)| self.schema.field(*f).column.map(|c| (c, *d)))
            .collect();

        let edge_cols: BTreeSet<ColumnId> = edges.iter().map(|(c, _)| *c).collect();
        let mut eq_cols = analysis.eq_cols();
        eq_cols.extend(edge_cols.iter().copied());
        let req = IndexRequest {
            token_col: analysis.token.as_ref().map(|(c, _, _)| *c),
            eq_cols: eq_cols.clone(),
            range_col: None,
            sort: sort_cols.clone(),
            required_eq: eq_cols.clone(),
        };
        let m = select_index(self.catalog, &table, &req, true)
            .ok_or_else(|| self.insight_join(&table, leg, "no usable index layout exists"))?;

        let mut residual = analysis.residual.clone();
        for (_, preds) in analysis.ranges.values() {
            residual.extend(preds.iter().cloned());
        }

        // ---- per-key bound
        let sort_fully_served = chain.sort.is_empty()
            || (!local_sort.is_empty() && local_sort.len() == chain.sort.len() && m.sort_served);
        let can_fold = fold_here && residual.is_empty() && sort_fully_served;
        let probe_cols: Vec<ColumnId> = eq_cols.iter().copied().collect();
        let cc_bound = table.matching_cardinality(&probe_cols).map(|cc| {
            (
                cc.limit,
                Provenance::Cardinality {
                    table: table.name.clone(),
                    limit: cc.limit,
                    columns: cc.columns.clone(),
                },
            )
        });
        let (per_key, per_key_provenance, bounded) = match (can_fold, &chain.stop, cc_bound) {
            (true, Some(stop), Some((cc, cc_prov))) if cc < stop.count => {
                self.used_cardinality_bound = true;
                self.notes
                    .push(format!("join fan-out bounded by {cc_prov}"));
                (cc, cc_prov, true)
            }
            (true, Some(stop), _) => (stop.count, stop.provenance.clone(), true),
            (_, _, Some((cc, cc_prov))) => {
                self.used_cardinality_bound = true;
                self.notes
                    .push(format!("join fan-out bounded by {cc_prov}"));
                (cc, cc_prov, true)
            }
            _ => match self.objective {
                Objective::ScaleIndependent => {
                    return Err(self.insight_join(
                        &table,
                        leg,
                        "the number of matching rows per join key is unbounded",
                    ));
                }
                Objective::CostBased => {
                    self.unbounded_ops += 1;
                    let est = self.estimate_group(&table, edge_cols.iter().next().copied());
                    (est, Provenance::Estimate, false)
                }
            },
        };

        if analysis.token.is_some() {
            self.notes
                .push("tokenized search (LIKE served by inverted TOKEN index)".into());
        }

        // ---- spec assembly
        let needed_cols = needed.get(&leg.rel).cloned().unwrap_or_default();
        let deref = !needed_cols.is_subset(&m.covering);
        let row_bytes = match &m.index {
            Some(idx) if !deref => index_entry_bytes(&table, idx),
            _ => table.max_row_bytes() as u64,
        };
        let mut prefix: Vec<KeySource> = Vec::new();
        if let Some((_, op, _)) = &analysis.token {
            prefix.push(KeySource::Const(op.clone()));
        }
        for c in &m.served_eq {
            if let Some((_, child_pos)) = edges.iter().find(|(ec, _)| ec == c) {
                prefix.push(KeySource::ChildField(*child_pos));
            } else {
                prefix.push(KeySource::Const(analysis.eq[c].0.clone()));
            }
        }
        if let Some(idx) = &m.index {
            if m.derived {
                self.required_indexes.push(idx.clone());
            }
        }

        let mut layout = child.layout.clone();
        layout.extend(self.schema.relation(leg.rel).fields());
        // the right row occupies positions child.len()..; its column c sits
        // at child.len() + c
        let merge_by: Vec<(usize, Dir)> = if m.sort_served && !sort_cols.is_empty() {
            sort_cols
                .iter()
                .map(|(c, d)| (child.layout.len() + *c, *d))
                .collect()
        } else {
            Vec::new()
        };

        let emit_limit = if can_fold {
            chain.stop.as_ref().map(|s| s.count)
        } else {
            None
        };
        let child_bounds = child.plan.bounds();
        let fetched = child_bounds.tuples.saturating_mul(per_key);
        let emitted = emit_limit.map(|e| e.min(fetched)).unwrap_or(fetched);
        let bounds = OpBounds {
            requests: child_bounds.tuples + if deref { fetched } else { 0 },
            rounds: 1 + deref as u64,
            tuples: emitted,
            bytes: fetched * row_bytes,
        };
        let spec = SortedJoinSpec {
            index: IndexRef {
                table: table.id,
                rel: leg.rel,
                secondary: m.index.clone(),
            },
            prefix,
            per_key,
            per_key_provenance,
            merge_by,
            reverse: m.reverse,
            emit_limit,
            deref,
            row_bytes,
        };
        let mut plan = PhysicalPlan::SortedIndexJoin {
            child: Box::new(child.plan),
            rel: leg.rel,
            table: table.id,
            spec,
            layout: layout.clone(),
            bounds,
        };
        if !residual.is_empty() {
            let preds = self.remap_preds(&residual, &layout);
            plan = local_selection(plan, preds, layout.clone());
        }
        let _ = bounded;
        Ok(Build {
            plan,
            layout,
            order_ok: sort_fully_served,
        })
    }

    // ------------------------------------------------------------ helpers

    fn record_data_stop(&mut self, ds: &Stop) {
        if ds.provenance.is_cardinality_bound() {
            self.used_cardinality_bound = true;
            self.notes
                .push(format!("scan bounded by {}", ds.provenance));
        }
    }

    /// Sort keys that live on `rel` — only meaningful when *all* sort keys
    /// live there.
    fn sort_on_rel(&self, chain: &Chain, rel: RelId) -> Vec<(FieldId, Dir)> {
        if chain.sort.is_empty()
            || !chain
                .sort
                .iter()
                .all(|(f, _)| self.schema.rel_of(*f) == rel)
        {
            return Vec::new();
        }
        chain.sort.clone()
    }

    /// Join edges that connect `rel` to relations already in `layout`,
    /// returned as (column of `rel`, child tuple position).
    fn edges_into(
        &self,
        chain: &Chain,
        rel: RelId,
        child_layout: &[FieldId],
    ) -> Vec<(ColumnId, usize)> {
        let mut out = Vec::new();
        for &(a, b) in &chain.join_edges {
            for (mine, other) in [(a, b), (b, a)] {
                if self.schema.rel_of(mine) == rel {
                    if let Some(pos) = child_layout.iter().position(|&f| f == other) {
                        if let Some(col) = self.schema.field(mine).column {
                            out.push((col, pos));
                        }
                    }
                }
            }
        }
        out
    }

    fn pure_fk_flags(&self, chain: &Chain) -> Vec<FkInfo> {
        let mut placed: Vec<FieldId> = Vec::new();
        let mut flags = Vec::with_capacity(chain.legs.len());
        for (i, leg) in chain.legs.iter().enumerate() {
            let rel_fields: Vec<FieldId> = self.schema.relation(leg.rel).fields().collect();
            if i == 0 {
                flags.push(FkInfo {
                    fk_possible: false,
                    pure: false,
                });
                placed.extend(rel_fields);
                continue;
            }
            let info = match leg_table(self.catalog, self.schema, leg) {
                None => FkInfo {
                    fk_possible: false,
                    pure: false,
                },
                Some(table) => {
                    let edges: BTreeSet<ColumnId> = chain
                        .join_edges
                        .iter()
                        .flat_map(|&(a, b)| [(a, b), (b, a)])
                        .filter(|(mine, other)| {
                            self.schema.rel_of(*mine) == leg.rel && placed.contains(other)
                        })
                        .filter_map(|(mine, _)| self.schema.field(mine).column)
                        .collect();
                    let eq: BTreeSet<ColumnId> = leg_eq_columns(self.schema, leg)
                        .into_iter()
                        .map(|(c, _)| c)
                        .collect();
                    let mut cols: Vec<ColumnId> = edges.iter().copied().collect();
                    cols.extend(eq.iter().copied());
                    let fk_possible = table.covers_primary_key(&cols);
                    // pure: count-preserving — every predicate consumed by
                    // the pk probe, and the child side declares the FK
                    let pk: BTreeSet<ColumnId> = table.primary_key_ids().into_iter().collect();
                    let extra_preds = leg.all_preds().iter().any(|p| match p {
                        BoundPredicate::Compare {
                            field,
                            op: CompareOp::Eq,
                            ..
                        } => {
                            let col = self.schema.field(*field).column;
                            col.map(|c| !pk.contains(&c)).unwrap_or(true)
                        }
                        _ => true,
                    });
                    let fk_declared = self.fk_declared(chain, leg.rel);
                    FkInfo {
                        fk_possible,
                        pure: fk_possible && !extra_preds && fk_declared,
                    }
                }
            };
            flags.push(info);
            placed.extend(rel_fields);
        }
        flags
    }

    /// Whether some earlier relation declares a FOREIGN KEY onto `rel`'s
    /// table via the join-edge columns — required for count-preservation.
    fn fk_declared(&self, chain: &Chain, rel: RelId) -> bool {
        let RelationSource::Table(target_tid) = self.schema.relation(rel).source else {
            return false;
        };
        let target_name = &self.catalog.table_by_id(target_tid).name;
        for &(a, b) in &chain.join_edges {
            for (mine, other) in [(a, b), (b, a)] {
                if self.schema.rel_of(mine) != rel {
                    continue;
                }
                let other_field = self.schema.field(other);
                let RelationSource::Table(src_tid) =
                    self.schema.relation(other_field.rel_id).source
                else {
                    continue;
                };
                let src = self.catalog.table_by_id(src_tid);
                for fk in &src.foreign_keys {
                    if fk.ref_table.eq_ignore_ascii_case(target_name)
                        && fk
                            .columns
                            .iter()
                            .any(|c| c.eq_ignore_ascii_case(&other_field.name))
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// The fold target: the leg whose remote operator may absorb the
    /// query's Sort and standard Stop as a limit hint.
    fn fold_leg(&self, chain: &Chain, fk: &[FkInfo]) -> Option<usize> {
        chain.stop.as_ref()?;
        if !chain.residual.is_empty() || matches!(chain.top, TopOp::Aggregate { .. }) {
            return None;
        }
        let sort_rel: Option<RelId> = if chain.sort.is_empty() {
            None
        } else {
            let rels: BTreeSet<RelId> = chain
                .sort
                .iter()
                .map(|(f, _)| self.schema.rel_of(*f))
                .collect();
            if rels.len() == 1 {
                Some(rels.into_iter().next().unwrap())
            } else {
                return None; // multi-relation sort: LocalSort, no fold
            }
        };
        for i in 0..chain.legs.len() {
            let sort_ok = sort_rel.map(|r| r == chain.legs[i].rel).unwrap_or(true);
            let suffix_pure = ((i + 1)..chain.legs.len()).all(|j| fk[j].pure);
            if sort_ok && suffix_pure {
                return Some(i);
            }
        }
        None
    }

    fn needed_fields(&self, chain: &Chain) -> BTreeMap<RelId, BTreeSet<ColumnId>> {
        let mut needed: BTreeMap<RelId, BTreeSet<ColumnId>> = BTreeMap::new();
        let add_field = |f: FieldId, needed: &mut BTreeMap<RelId, BTreeSet<ColumnId>>| {
            let field = self.schema.field(f);
            if let Some(col) = field.column {
                needed.entry(field.rel_id).or_default().insert(col);
            }
        };
        for leg in &chain.legs {
            for p in leg.all_preds() {
                for f in p.fields() {
                    add_field(f, &mut needed);
                }
            }
        }
        for p in &chain.residual {
            for f in p.fields() {
                add_field(f, &mut needed);
            }
        }
        for &(a, b) in &chain.join_edges {
            add_field(a, &mut needed);
            add_field(b, &mut needed);
        }
        for (f, _) in &chain.sort {
            add_field(*f, &mut needed);
        }
        match &chain.top {
            TopOp::Project(items) => {
                for (f, _) in items {
                    add_field(*f, &mut needed);
                }
            }
            TopOp::Aggregate { group_by, aggs } => {
                for f in group_by {
                    add_field(*f, &mut needed);
                }
                for a in aggs {
                    if let Some(f) = a.arg {
                        add_field(f, &mut needed);
                    }
                }
            }
        }
        needed
    }

    fn pos_of(&self, layout: &[FieldId], fid: FieldId) -> Result<usize, OptError> {
        layout
            .iter()
            .position(|&f| f == fid)
            .ok_or_else(|| OptError::Internal(format!("field {fid} missing from layout")))
    }

    fn remap_preds(&self, preds: &[BoundPredicate], layout: &[FieldId]) -> Vec<BoundPredicate> {
        preds
            .iter()
            .map(|p| {
                p.remap(|f| {
                    layout
                        .iter()
                        .position(|&x| x == f)
                        .expect("predicate field present in layout")
                })
            })
            .collect()
    }

    fn apply_local_sort(
        &self,
        mut build: Build,
        sort: &[(FieldId, Dir)],
    ) -> Result<Build, OptError> {
        let keys: Vec<(usize, Dir)> = sort
            .iter()
            .map(|(f, d)| Ok::<_, OptError>((self.pos_of(&build.layout, *f)?, *d)))
            .collect::<Result<_, _>>()?;
        let bounds = OpBounds {
            requests: 0,
            rounds: 0,
            tuples: build.plan.bounds().tuples,
            bytes: 0,
        };
        build.plan = PhysicalPlan::LocalSort {
            child: Box::new(build.plan),
            keys,
            layout: build.layout.clone(),
            bounds,
        };
        build.order_ok = true;
        Ok(build)
    }

    fn estimate_group(&self, table: &TableDef, col: Option<ColumnId>) -> u64 {
        let stats = self.stats.and_then(|s| s.table(table.id));
        match (stats, col) {
            (Some(ts), Some(c)) => ts
                .avg_group_size(&table.columns[c].name)
                .map(|v| v.ceil() as u64)
                .unwrap_or(DEFAULT_GROUP_ESTIMATE),
            (Some(ts), None) => ts.row_count.max(1),
            (None, _) => DEFAULT_GROUP_ESTIMATE,
        }
    }

    // ------------------------------------------------------------ insight

    fn insight_scan(
        &self,
        table: &TableDef,
        leg: &Leg,
        analysis: &LegAnalysis,
        problem: &str,
    ) -> OptError {
        let binding = self.schema.relation(leg.rel).binding.clone();
        let mut suggestions = Vec::new();
        let eq_cols: Vec<String> = analysis
            .eq
            .keys()
            .map(|&c| table.columns[c].name.clone())
            .collect();
        if !eq_cols.is_empty() {
            suggestions.push(Suggestion::AddCardinalityLimit {
                table: table.name.clone(),
                columns: eq_cols,
            });
        }
        for p in &analysis.residual {
            if let BoundPredicate::In {
                operand: InOperand::Param(prm),
                ..
            } = p
            {
                if prm.max_cardinality.is_none() {
                    suggestions.push(Suggestion::DeclareParamMax {
                        param: prm.name.clone(),
                    });
                }
            }
        }
        suggestions.push(Suggestion::AddLimitOrPaginate);
        if analysis.eq.is_empty() && analysis.token.is_none() {
            suggestions.push(Suggestion::Precompute);
        }
        OptError::NotScaleIndependent(InsightReport {
            problem: format!("{problem} (relation '{binding}' would be scanned without a bound)"),
            relation: Some(binding),
            suggestions,
        })
    }

    fn insight_join(&self, table: &TableDef, leg: &Leg, problem: &str) -> OptError {
        let binding = self.schema.relation(leg.rel).binding.clone();
        // suggest a cardinality limit on the probe columns
        let cols: Vec<String> = {
            let eq: Vec<String> = leg_eq_columns(self.schema, leg)
                .into_iter()
                .map(|(c, _)| table.columns[c].name.clone())
                .collect();
            if eq.is_empty() {
                table.primary_key.clone()
            } else {
                eq
            }
        };
        OptError::NotScaleIndependent(InsightReport {
            problem: format!("{problem} (joining relation '{binding}')"),
            relation: Some(binding),
            suggestions: vec![
                Suggestion::AddCardinalityLimit {
                    table: table.name.clone(),
                    columns: cols,
                },
                Suggestion::AddLimitOrPaginate,
            ],
        })
    }
}

struct FkInfo {
    fk_possible: bool,
    pure: bool,
}

fn local_selection(
    child: PhysicalPlan,
    predicates: Vec<BoundPredicate>,
    layout: Vec<FieldId>,
) -> PhysicalPlan {
    let b = child.bounds();
    PhysicalPlan::LocalSelection {
        child: Box::new(child),
        predicates,
        layout,
        bounds: OpBounds {
            requests: 0,
            rounds: 0,
            tuples: b.tuples,
            bytes: 0,
        },
    }
}

fn local_stop(child: PhysicalPlan, count: u64, layout: Vec<FieldId>) -> PhysicalPlan {
    let b = child.bounds();
    PhysicalPlan::LocalStop {
        child: Box::new(child),
        count,
        layout,
        bounds: OpBounds {
            requests: 0,
            rounds: 0,
            tuples: b.tuples.min(count),
            bytes: 0,
        },
    }
}

/// Upper bound on one secondary-index entry's key size.
fn index_entry_bytes(table: &TableDef, index: &IndexDef) -> u64 {
    index
        .full_key_types(table)
        .iter()
        .map(|t| t.max_encoded_len() as u64)
        .sum::<u64>()
        + 2
}
