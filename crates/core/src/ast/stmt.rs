//! Statements: SELECT (with PAGINATE), INSERT, UPDATE, DELETE, and DDL.

use super::expr::{ColumnRef, Predicate, ScalarExpr};
use crate::catalog::{CardinalityConstraint, ForeignKey, IndexKeyPart};
use crate::codec::key::Dir;
use crate::value::DataType;
use std::fmt;

/// A table reference with an optional alias: `subscriptions s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    pub fn named(table: &str) -> Self {
        TableRef {
            table: table.to_string(),
            alias: None,
        }
    }

    /// The name other clauses may use to refer to this relation.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table)?;
        if let Some(a) = &self.alias {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

/// An inner equi-join: `JOIN thoughts t ON t.owner = s.target`. Join
/// conditions may also be written in the WHERE clause (the paper's style);
/// the planner treats both identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub on: Vec<Predicate>,
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderByItem {
    pub column: ColumnRef,
    pub dir: Dir,
}

/// Result-size bound: the standard `LIMIT k` or the paper's `PAGINATE k`
/// (§4.1), which turns the query into a resumable client-side cursor
/// returning `k` rows per interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBound {
    Limit(u64),
    Paginate(u64),
}

impl RowBound {
    pub fn count(self) -> u64 {
        match self {
            RowBound::Limit(k) | RowBound::Paginate(k) => k,
        }
    }

    pub fn is_paginated(self) -> bool {
        matches!(self, RowBound::Paginate(_))
    }
}

/// Aggregate functions (computed client-side on bounded inputs, §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        })
    }
}

/// `COUNT(*)`, `SUM(qty)` etc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateExpr {
    pub func: AggFunc,
    /// `None` means `COUNT(*)`.
    pub arg: Option<ColumnRef>,
    pub alias: Option<String>,
}

/// One item of the SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `col [AS alias]`
    Column {
        column: ColumnRef,
        alias: Option<String>,
    },
    /// `AGG(col) [AS alias]`
    Aggregate(AggregateExpr),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub projection: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    /// Conjunction of predicates.
    pub filter: Vec<Predicate>,
    pub group_by: Vec<ColumnRef>,
    pub order_by: Vec<OrderByItem>,
    pub bound: Option<RowBound>,
}

/// `INSERT INTO t [(cols)] VALUES (exprs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    /// Empty means "all columns in declaration order".
    pub columns: Vec<String>,
    pub values: Vec<ScalarExpr>,
}

/// `UPDATE t SET c = expr, ... WHERE <pk equality>`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub assignments: Vec<(String, ScalarExpr)>,
    pub filter: Vec<Predicate>,
}

/// `DELETE FROM t WHERE <pk equality>`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub filter: Vec<Predicate>,
}

/// `CREATE TABLE` with PIQL's DDL extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTableStmt {
    pub name: String,
    pub columns: Vec<(String, DataType, bool)>,
    pub primary_key: Vec<String>,
    pub foreign_keys: Vec<ForeignKey>,
    pub cardinality_constraints: Vec<CardinalityConstraint>,
}

/// `CREATE INDEX name ON table (parts)` — usually unnecessary because the
/// compiler derives required indexes, but available for explicit control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateIndexStmt {
    pub name: String,
    pub table: String,
    pub parts: Vec<IndexKeyPart>,
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
    CreateTable(CreateTableStmt),
    CreateIndex(CreateIndexStmt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            table: "subscriptions".into(),
            alias: Some("s".into()),
        };
        assert_eq!(t.binding_name(), "s");
        assert_eq!(TableRef::named("x").binding_name(), "x");
    }

    #[test]
    fn row_bound_accessors() {
        assert_eq!(RowBound::Limit(10).count(), 10);
        assert!(RowBound::Paginate(5).is_paginated());
        assert!(!RowBound::Limit(5).is_paginated());
    }
}
