//! Abstract syntax of the PIQL language: standard SQL select/insert/update/
//! delete plus the paper's extensions — `PAGINATE` (§4.1), `CARDINALITY
//! LIMIT` in DDL (§4.2), and declared-maximum parameters (needed to bound
//! `IN <collection>` predicates).

mod expr;
mod stmt;

pub use expr::{ColumnRef, CompareOp, InList, Param, Predicate, ScalarExpr};
pub use stmt::{
    AggFunc, AggregateExpr, CreateIndexStmt, CreateTableStmt, DeleteStmt, InsertStmt, Join,
    OrderByItem, RowBound, SelectItem, SelectStmt, Statement, TableRef, UpdateStmt,
};
