//! Scalar expressions and predicates.
//!
//! PIQL's WHERE clause is a conjunction of simple predicates over columns —
//! deliberately so: the compiler must be able to map every predicate onto a
//! contiguous index range or a bounded lookup set, and arbitrary boolean
//! structure would defeat the static analysis (§5.2.1).

use crate::value::Value;
use std::fmt;

/// A possibly-qualified column reference, e.g. `s.target` or `owner`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn new(qualifier: Option<&str>, column: &str) -> Self {
        ColumnRef {
            qualifier: qualifier.map(|s| s.to_string()),
            column: column.to_string(),
        }
    }

    pub fn bare(column: &str) -> Self {
        Self::new(None, column)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A query parameter.
///
/// The paper writes parameters as `[1: titleWord]` (indexed + named) or
/// `<uname>` (named); both forms parse to this. A parameter used as an `IN`
/// collection must declare a maximum cardinality (`[2: friends MAX 50]`) for
/// the plan to be bounded.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// 0-based position in the bind list.
    pub index: usize,
    pub name: String,
    /// Declared maximum number of elements when bound to a collection.
    pub max_cardinality: Option<u64>,
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}: {}", self.index + 1, self.name)?;
        if let Some(m) = self.max_cardinality {
            write!(f, " MAX {m}")?;
        }
        write!(f, "]")
    }
}

/// A scalar expression: the right-hand side of comparisons and the values of
/// INSERT/UPDATE.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    Column(ColumnRef),
    Literal(Value),
    Param(Param),
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Param(p) => write!(f, "{p}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// Evaluate against an ordering outcome.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CompareOp::Eq, Equal)
                | (CompareOp::Ne, Less | Greater)
                | (CompareOp::Lt, Less)
                | (CompareOp::Le, Less | Equal)
                | (CompareOp::Gt, Greater)
                | (CompareOp::Ge, Greater | Equal)
        )
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The collection side of an `IN` predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum InList {
    /// A literal list: `status IN ('a', 'b')`. Bounded by its length.
    Values(Vec<Value>),
    /// A parameter collection: `owner IN [2: friends MAX 50]`. Bounded only
    /// if the parameter declares `MAX`.
    Param(Param),
}

/// One conjunct of a WHERE clause or a join condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col OP scalar` (scalar may itself be a column, forming a join
    /// predicate).
    Compare {
        left: ColumnRef,
        op: CompareOp,
        right: ScalarExpr,
    },
    /// `col LIKE pattern` — compiles to a tokenized-index lookup (§7.3).
    Like {
        column: ColumnRef,
        pattern: ScalarExpr,
    },
    /// `col IN (...)`.
    In { column: ColumnRef, list: InList },
    /// `col IS [NOT] NULL`.
    IsNull { column: ColumnRef, negated: bool },
}

impl Predicate {
    /// Column references mentioned by this predicate.
    pub fn columns(&self) -> Vec<&ColumnRef> {
        match self {
            Predicate::Compare { left, right, .. } => {
                let mut v = vec![left];
                if let ScalarExpr::Column(c) = right {
                    v.push(c);
                }
                v
            }
            Predicate::Like { column, .. }
            | Predicate::In { column, .. }
            | Predicate::IsNull { column, .. } => vec![column],
        }
    }

    /// Whether this is an equality between two columns (a join predicate).
    pub fn as_column_equality(&self) -> Option<(&ColumnRef, &ColumnRef)> {
        match self {
            Predicate::Compare {
                left,
                op: CompareOp::Eq,
                right: ScalarExpr::Column(right),
            } => Some((left, right)),
            _ => None,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::Like { column, pattern } => write!(f, "{column} LIKE {pattern}"),
            Predicate::In { column, list } => {
                write!(f, "{column} IN ")?;
                match list {
                    InList::Values(vs) => {
                        write!(f, "(")?;
                        for (i, v) in vs.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{v}")?;
                        }
                        write!(f, ")")
                    }
                    InList::Param(p) => write!(f, "{p}"),
                }
            }
            Predicate::IsNull { column, negated } => {
                write!(f, "{column} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_matches() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Le.matches(Equal));
        assert!(CompareOp::Le.matches(Less));
        assert!(!CompareOp::Lt.matches(Equal));
        assert!(CompareOp::Ne.matches(Greater));
    }

    #[test]
    fn join_predicate_detection() {
        let p = Predicate::Compare {
            left: ColumnRef::new(Some("t"), "owner"),
            op: CompareOp::Eq,
            right: ScalarExpr::Column(ColumnRef::new(Some("s"), "target")),
        };
        assert!(p.as_column_equality().is_some());
        let q = Predicate::Compare {
            left: ColumnRef::bare("owner"),
            op: CompareOp::Eq,
            right: ScalarExpr::Literal(Value::Int(1)),
        };
        assert!(q.as_column_equality().is_none());
    }

    #[test]
    fn display_roundtrippable_shapes() {
        let p = Predicate::Like {
            column: ColumnRef::bare("i_title"),
            pattern: ScalarExpr::Param(Param {
                index: 0,
                name: "titleWord".into(),
                max_cardinality: None,
            }),
        };
        assert_eq!(p.to_string(), "i_title LIKE [1: titleWord]");
    }
}
