//! Tuples: ordered collections of [`Value`]s flowing through the engine.

use crate::value::Value;
use std::fmt;

/// A row of values. Column resolution (name → position) happens at plan
/// time, so the runtime representation is positional and cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Concatenate two tuples (used by join operators: left ++ right).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Project a subset of positions into a new tuple.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple {
            values: positions.iter().map(|&p| self.values[p].clone()).collect(),
        }
    }

    /// Approximate encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.values.iter().map(Value::encoded_len).sum::<usize>() + 2
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple { values }
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

/// Build a tuple from heterogeneous literals: `tuple![1, "bob", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {

    #[test]
    fn concat_and_project() {
        let a = tuple![1, "x"];
        let b = tuple![true];
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.project(&[2, 0]), tuple![true, 1]);
    }

    #[test]
    fn display_renders_values() {
        assert_eq!(format!("{}", tuple![1, "a"]), "(1, 'a')");
    }
}
