//! Schema catalog: tables, constraints, and indexes.
//!
//! PIQL's DDL extension (§4.2) lives here: besides standard columns, primary
//! keys, and foreign keys, a table may declare `CARDINALITY LIMIT n (cols)`
//! constraints, which bound how many rows may share one value of `cols`.
//! Those limits are what allow the optimizer to insert *data-stop* operators
//! (§5.1) and are enforced at runtime by the engine's write path (§7.2).

mod index;
mod stats;
mod table;

pub use index::{IndexDef, IndexId, IndexKeyPart, IndexKind};
pub use stats::{Statistics, TableStats};
pub use table::{CardinalityConstraint, ColumnDef, ColumnId, ForeignKey, TableDef, TableId};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    DuplicateTable(String),
    DuplicateIndex(String),
    UnknownTable(String),
    UnknownColumn { table: String, column: String },
    InvalidDefinition(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            CatalogError::DuplicateIndex(i) => write!(f, "index '{i}' already exists"),
            CatalogError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            CatalogError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            CatalogError::InvalidDefinition(msg) => write!(f, "invalid definition: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The schema catalog. Cheap to clone handles out of (definitions are
/// `Arc`ed); mutation is append-only (create table / create index), mirroring
/// how the paper's system auto-creates indexes during compilation (§5.3).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: Vec<Arc<TableDef>>,
    indexes: Vec<Arc<IndexDef>>,
    table_names: BTreeMap<String, TableId>,
    index_names: BTreeMap<String, IndexId>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table, validating constraints against its columns.
    pub fn create_table(&mut self, mut def: TableDef) -> Result<TableId, CatalogError> {
        let key = def.name.to_ascii_lowercase();
        if self.table_names.contains_key(&key) {
            return Err(CatalogError::DuplicateTable(def.name.clone()));
        }
        def.validate()?;
        let id = TableId(self.tables.len() as u32);
        def.id = id;
        self.table_names.insert(key, id);
        self.tables.push(Arc::new(def));
        Ok(id)
    }

    /// Register a secondary index. Idempotent on identical key shape: if an
    /// index with the same table and key parts exists, its id is returned
    /// instead (the optimizer re-derives required indexes on every compile).
    pub fn create_index(&mut self, mut def: IndexDef) -> Result<IndexId, CatalogError> {
        if let Some(existing) = self
            .indexes
            .iter()
            .find(|i| i.table == def.table && i.key == def.key)
        {
            return Ok(existing.id);
        }
        let key = def.name.to_ascii_lowercase();
        if self.index_names.contains_key(&key) {
            return Err(CatalogError::DuplicateIndex(def.name.clone()));
        }
        let table = self.table_by_id(def.table);
        def.validate(table)?;
        let id = IndexId(self.indexes.len() as u32);
        def.id = id;
        self.index_names.insert(key, id);
        self.indexes.push(Arc::new(def));
        Ok(id)
    }

    pub fn table(&self, name: &str) -> Option<&Arc<TableDef>> {
        self.table_names
            .get(&name.to_ascii_lowercase())
            .map(|id| &self.tables[id.0 as usize])
    }

    pub fn table_by_id(&self, id: TableId) -> &Arc<TableDef> {
        &self.tables[id.0 as usize]
    }

    pub fn index(&self, name: &str) -> Option<&Arc<IndexDef>> {
        self.index_names
            .get(&name.to_ascii_lowercase())
            .map(|id| &self.indexes[id.0 as usize])
    }

    pub fn index_by_id(&self, id: IndexId) -> &Arc<IndexDef> {
        &self.indexes[id.0 as usize]
    }

    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableDef>> {
        self.tables.iter()
    }

    pub fn indexes(&self) -> impl Iterator<Item = &Arc<IndexDef>> {
        self.indexes.iter()
    }

    /// All secondary indexes defined on `table`.
    pub fn indexes_for_table(&self, table: TableId) -> Vec<Arc<IndexDef>> {
        self.indexes
            .iter()
            .filter(|i| i.table == table)
            .cloned()
            .collect()
    }

    /// Key/value-store namespace holding a table's primary records.
    pub fn table_namespace(table: &TableDef) -> String {
        format!("t/{}", table.name.to_ascii_lowercase())
    }

    /// Key/value-store namespace holding an index's entries.
    pub fn index_namespace(index: &IndexDef) -> String {
        format!("i/{}", index.name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn users() -> TableDef {
        TableDef::builder("Users")
            .column("username", DataType::Varchar(32))
            .column("home_town", DataType::Varchar(64))
            .primary_key(&["username"])
            .build()
    }

    #[test]
    fn create_and_lookup_table() {
        let mut cat = Catalog::new();
        let id = cat.create_table(users()).unwrap();
        assert_eq!(cat.table("users").unwrap().id, id);
        assert_eq!(cat.table("USERS").unwrap().name, "Users");
        assert!(cat.table("nope").is_none());
        assert!(matches!(
            cat.create_table(users()),
            Err(CatalogError::DuplicateTable(_))
        ));
    }

    #[test]
    fn index_creation_is_idempotent_by_shape() {
        let mut cat = Catalog::new();
        let t = cat.create_table(users()).unwrap();
        let mk = |name: &str| IndexDef::on_columns(name, t, &[("home_town", Default::default())]);
        let a = cat.create_index(mk("idx_a")).unwrap();
        let b = cat.create_index(mk("idx_b")).unwrap();
        assert_eq!(a, b, "same shape resolves to same index");
        assert_eq!(cat.indexes_for_table(t).len(), 1);
    }

    #[test]
    fn invalid_constraint_rejected() {
        let mut cat = Catalog::new();
        let def = TableDef::builder("T")
            .column("a", DataType::Int)
            .primary_key(&["a"])
            .cardinality_limit(10, &["nope"])
            .build();
        assert!(cat.create_table(def).is_err());
    }
}
