//! Index definitions.
//!
//! The primary index of a table is implicit (its namespace maps
//! `encode(pk) -> row`). Secondary indexes map
//! `encode(declared parts ++ pk) -> ()` and require a dereferencing get to
//! fetch the full row (the extra round trip §5.1 mentions). A key part may
//! be `TOKEN(col)`, the inverted full-text entry the paper uses to make
//! `LIKE` scale-independent (§7.3).

use super::table::{TableDef, TableId};
use super::CatalogError;
use crate::codec::key::Dir;
use crate::value::DataType;
use std::fmt;

/// Stable identifier of an index within a [`super::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// What an index key component is computed from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// The raw column value.
    Column(String),
    /// One inverted-index entry per token of the column's text. A row with
    /// `k` tokens produces `k` index entries.
    Token(String),
}

impl IndexKind {
    pub fn column_name(&self) -> &str {
        match self {
            IndexKind::Column(c) | IndexKind::Token(c) => c,
        }
    }

    pub fn is_token(&self) -> bool {
        matches!(self, IndexKind::Token(_))
    }
}

/// One declared component of an index key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKeyPart {
    pub kind: IndexKind,
    pub dir: Dir,
}

impl IndexKeyPart {
    pub fn asc(col: impl Into<String>) -> Self {
        IndexKeyPart {
            kind: IndexKind::Column(col.into()),
            dir: Dir::Asc,
        }
    }

    pub fn desc(col: impl Into<String>) -> Self {
        IndexKeyPart {
            kind: IndexKind::Column(col.into()),
            dir: Dir::Desc,
        }
    }

    pub fn token(col: impl Into<String>) -> Self {
        IndexKeyPart {
            kind: IndexKind::Token(col.into()),
            dir: Dir::Asc,
        }
    }
}

impl fmt::Display for IndexKeyPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            IndexKind::Column(c) => write!(f, "{c}")?,
            IndexKind::Token(c) => write!(f, "TOKEN({c})")?,
        }
        if self.dir == Dir::Desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

/// A secondary index over one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    /// Declared key parts; the table's primary key is an implicit ascending
    /// suffix (stored entries are always unique).
    pub key: Vec<IndexKeyPart>,
}

impl IndexDef {
    pub fn new(name: impl Into<String>, table: TableId, key: Vec<IndexKeyPart>) -> Self {
        IndexDef {
            id: IndexId(u32::MAX),
            name: name.into(),
            table,
            key,
        }
    }

    /// Convenience constructor from `(column, direction)` pairs.
    pub fn on_columns(name: impl Into<String>, table: TableId, cols: &[(&str, Dir)]) -> Self {
        Self::new(
            name,
            table,
            cols.iter()
                .map(|(c, d)| IndexKeyPart {
                    kind: IndexKind::Column(c.to_string()),
                    dir: *d,
                })
                .collect(),
        )
    }

    /// The full stored key layout: declared parts followed by any primary-key
    /// columns not already present as plain columns.
    pub fn full_key_parts(&self, table: &TableDef) -> Vec<IndexKeyPart> {
        let mut parts = self.key.clone();
        for pk in &table.primary_key {
            let present = parts
                .iter()
                .any(|p| !p.kind.is_token() && p.kind.column_name().eq_ignore_ascii_case(pk));
            if !present {
                parts.push(IndexKeyPart::asc(pk.clone()));
            }
        }
        parts
    }

    /// Data types of the full stored key, in order. Token parts are typed as
    /// the token text.
    pub fn full_key_types(&self, table: &TableDef) -> Vec<DataType> {
        self.full_key_parts(table)
            .iter()
            .map(|p| match &p.kind {
                IndexKind::Token(_) => DataType::Varchar(64),
                IndexKind::Column(c) => table.columns[table.column_id(c).expect("validated")].ty,
            })
            .collect()
    }

    /// Sort directions of the full stored key.
    pub fn full_key_dirs(&self, table: &TableDef) -> Vec<Dir> {
        self.full_key_parts(table).iter().map(|p| p.dir).collect()
    }

    /// Whether any key part is a token expansion.
    pub fn has_token_part(&self) -> bool {
        self.key.iter().any(|p| p.kind.is_token())
    }

    pub(super) fn validate(&self, table: &TableDef) -> Result<(), CatalogError> {
        if self.key.is_empty() {
            return Err(CatalogError::InvalidDefinition(format!(
                "index '{}' has no key parts",
                self.name
            )));
        }
        for part in &self.key {
            let col = part.kind.column_name();
            let id = table
                .column_id(col)
                .ok_or_else(|| CatalogError::UnknownColumn {
                    table: table.name.clone(),
                    column: col.to_string(),
                })?;
            match &part.kind {
                IndexKind::Column(_) if !table.columns[id].ty.key_compatible() => {
                    return Err(CatalogError::InvalidDefinition(format!(
                        "column '{col}' of type {} cannot be indexed",
                        table.columns[id].ty
                    )));
                }
                IndexKind::Token(_) if !matches!(table.columns[id].ty, DataType::Varchar(_)) => {
                    return Err(CatalogError::InvalidDefinition(format!(
                        "TOKEN({col}) requires a VARCHAR column"
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Canonical auto-generated name for a derived index, as the optimizer's
    /// index-selection step produces (§5.3).
    pub fn derived_name(table: &TableDef, parts: &[IndexKeyPart]) -> String {
        let mut name = format!("idx_{}", table.name.to_ascii_lowercase());
        for p in parts {
            name.push('_');
            if p.kind.is_token() {
                name.push_str("tok_");
            }
            name.push_str(&p.kind.column_name().to_ascii_lowercase());
            if p.dir == Dir::Desc {
                name.push_str("_d");
            }
        }
        name
    }
}

impl fmt::Display for IndexDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INDEX {} (", self.name)?;
        for (i, p) in self.key.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;

    fn items() -> TableDef {
        let mut t = TableDef::builder("Items")
            .column("i_id", DataType::Int)
            .column("i_title", DataType::Varchar(60))
            .column("i_a_id", DataType::Int)
            .primary_key(&["i_id"])
            .build();
        t.id = TableId(0);
        t
    }

    #[test]
    fn full_key_appends_missing_pk() {
        let t = items();
        let idx = IndexDef::new(
            "idx_title",
            t.id,
            vec![IndexKeyPart::token("i_title"), IndexKeyPart::asc("i_title")],
        );
        let parts = idx.full_key_parts(&t);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].kind.column_name(), "i_id");
        // pk column already declared -> not duplicated
        let idx2 = IndexDef::on_columns("idx2", t.id, &[("i_a_id", Dir::Asc), ("i_id", Dir::Asc)]);
        assert_eq!(idx2.full_key_parts(&t).len(), 2);
    }

    #[test]
    fn token_requires_varchar() {
        let t = items();
        let bad = IndexDef::new("bad", t.id, vec![IndexKeyPart::token("i_id")]);
        assert!(bad.validate(&t).is_err());
    }

    #[test]
    fn derived_names_are_stable() {
        let t = items();
        let name = IndexDef::derived_name(
            &t,
            &[IndexKeyPart::token("i_title"), IndexKeyPart::desc("i_id")],
        );
        assert_eq!(name, "idx_items_tok_i_title_i_id_d");
    }
}
