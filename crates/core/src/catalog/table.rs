//! Table definitions: columns, primary keys, foreign keys, and the paper's
//! `CARDINALITY LIMIT` relationship-cardinality constraints (§4.2).

use super::CatalogError;
use crate::value::DataType;
use std::fmt;

/// Stable identifier of a table within a [`super::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Position of a column within its table.
pub type ColumnId = usize;

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
    pub nullable: bool,
}

/// A standard SQL referential-integrity constraint: `columns` reference the
/// primary key of `ref_table`. The optimizer uses these for uniqueness
/// inference in one direction (FK → one tuple, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub columns: Vec<String>,
    pub ref_table: String,
}

/// PIQL's DDL extension: at most `limit` rows may share one value of
/// `columns`. Example from the paper: `CARDINALITY LIMIT 100 (ownerUserId)`
/// caps each user at 100 subscriptions.
///
/// A column spelled `TOKEN(col)` (stored as `token:col`) bounds how many
/// rows may share one *token* of the column's text instead — the natural
/// constraint for inverted-index searches (e.g. "no name token appears in
/// more than 25 authors").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardinalityConstraint {
    pub limit: u64,
    pub columns: Vec<String>,
}

impl CardinalityConstraint {
    /// The `token:` marker used to store `TOKEN(col)` constraint columns.
    pub const TOKEN_PREFIX: &'static str = "token:";

    /// Plain column name of a (possibly token-) constraint column.
    pub fn base_column(col: &str) -> &str {
        col.strip_prefix(Self::TOKEN_PREFIX).unwrap_or(col)
    }

    pub fn is_token_column(col: &str) -> bool {
        col.starts_with(Self::TOKEN_PREFIX)
    }

    /// Whether this is a single-token-column constraint.
    pub fn token_column(&self) -> Option<&str> {
        match self.columns.as_slice() {
            [c] if Self::is_token_column(c) => Some(Self::base_column(c)),
            _ => None,
        }
    }
}

/// Full definition of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Column names of the primary key, in key order.
    pub primary_key: Vec<String>,
    pub foreign_keys: Vec<ForeignKey>,
    pub cardinality_constraints: Vec<CardinalityConstraint>,
}

impl TableDef {
    /// Start building a table definition.
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            def: TableDef {
                id: TableId(u32::MAX),
                name: name.into(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
                cardinality_constraints: Vec::new(),
            },
        }
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, id: ColumnId) -> &ColumnDef {
        &self.columns[id]
    }

    /// Primary-key column positions, in key order.
    pub fn primary_key_ids(&self) -> Vec<ColumnId> {
        self.primary_key
            .iter()
            .map(|n| self.column_id(n).expect("validated pk column"))
            .collect()
    }

    /// Whether `cols` (a set of column positions) contains every primary-key
    /// column — the Algorithm-1 line-5 test.
    pub fn covers_primary_key(&self, cols: &[ColumnId]) -> bool {
        self.primary_key_ids().iter().all(|pk| cols.contains(pk))
    }

    /// The tightest cardinality constraint whose columns are all contained
    /// in `cols` — the Algorithm-1 line-7 test. Token constraints never
    /// match plain column equalities.
    pub fn matching_cardinality(&self, cols: &[ColumnId]) -> Option<&CardinalityConstraint> {
        self.cardinality_constraints
            .iter()
            .filter(|c| {
                c.columns.iter().all(|n| {
                    !CardinalityConstraint::is_token_column(n)
                        && self
                            .column_id(n)
                            .map(|id| cols.contains(&id))
                            .unwrap_or(false)
                })
            })
            .min_by_key(|c| c.limit)
    }

    /// The tightest `CARDINALITY LIMIT n (TOKEN(col))` constraint on a
    /// column targeted by a tokenized search.
    pub fn matching_token_cardinality(&self, col: ColumnId) -> Option<&CardinalityConstraint> {
        self.cardinality_constraints
            .iter()
            .filter(|c| {
                c.token_column()
                    .and_then(|n| self.column_id(n))
                    .map(|id| id == col)
                    .unwrap_or(false)
            })
            .min_by_key(|c| c.limit)
    }

    /// Upper bound on the encoded byte size of one row.
    pub fn max_row_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.ty.max_encoded_len())
            .sum::<usize>()
            + 2
    }

    pub(super) fn validate(&self) -> Result<(), CatalogError> {
        if self.columns.is_empty() {
            return Err(CatalogError::InvalidDefinition(format!(
                "table '{}' has no columns",
                self.name
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.columns {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(CatalogError::InvalidDefinition(format!(
                    "duplicate column '{}' in table '{}'",
                    c.name, self.name
                )));
            }
        }
        if self.primary_key.is_empty() {
            return Err(CatalogError::InvalidDefinition(format!(
                "table '{}' has no primary key (required: records live in a key/value store)",
                self.name
            )));
        }
        let check_cols = |cols: &[String], what: &str| -> Result<(), CatalogError> {
            for n in cols {
                let base = CardinalityConstraint::base_column(n);
                let id = self
                    .column_id(base)
                    .ok_or_else(|| CatalogError::UnknownColumn {
                        table: self.name.clone(),
                        column: base.to_string(),
                    })?;
                if CardinalityConstraint::is_token_column(n)
                    && !matches!(self.columns[id].ty, crate::value::DataType::Varchar(_))
                {
                    return Err(CatalogError::InvalidDefinition(format!(
                        "TOKEN({base}) cardinality limits require a VARCHAR column"
                    )));
                }
                if what == "primary key" && !self.columns[id].ty.key_compatible() {
                    return Err(CatalogError::InvalidDefinition(format!(
                        "column '{}' of type {} cannot be part of the {what}",
                        n, self.columns[id].ty
                    )));
                }
            }
            Ok(())
        };
        check_cols(&self.primary_key, "primary key")?;
        for fk in &self.foreign_keys {
            check_cols(&fk.columns, "foreign key")?;
        }
        for cc in &self.cardinality_constraints {
            check_cols(&cc.columns, "cardinality limit")?;
            if cc.limit == 0 {
                return Err(CatalogError::InvalidDefinition(
                    "CARDINALITY LIMIT must be positive".into(),
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for TableDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CREATE TABLE {} (", self.name)?;
        for c in &self.columns {
            writeln!(f, "  {} {},", c.name, c.ty)?;
        }
        writeln!(f, "  PRIMARY KEY ({})", self.primary_key.join(", "))?;
        for fk in &self.foreign_keys {
            writeln!(
                f,
                "  , FOREIGN KEY ({}) REFERENCES {}",
                fk.columns.join(", "),
                fk.ref_table
            )?;
        }
        for cc in &self.cardinality_constraints {
            writeln!(
                f,
                "  , CARDINALITY LIMIT {} ({})",
                cc.limit,
                cc.columns.join(", ")
            )?;
        }
        write!(f, ")")
    }
}

/// Fluent builder used by tests, examples, and the DDL evaluator.
pub struct TableBuilder {
    def: TableDef,
}

impl TableBuilder {
    pub fn column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.def.columns.push(ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        });
        self
    }

    pub fn not_null_column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.def.columns.push(ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        });
        self
    }

    pub fn primary_key(mut self, cols: &[&str]) -> Self {
        self.def.primary_key = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn foreign_key(mut self, cols: &[&str], ref_table: impl Into<String>) -> Self {
        self.def.foreign_keys.push(ForeignKey {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            ref_table: ref_table.into(),
        });
        self
    }

    pub fn cardinality_limit(mut self, limit: u64, cols: &[&str]) -> Self {
        self.def
            .cardinality_constraints
            .push(CardinalityConstraint {
                limit,
                columns: cols.iter().map(|s| s.to_string()).collect(),
            });
        self
    }

    pub fn build(self) -> TableDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subscriptions() -> TableDef {
        TableDef::builder("Subscriptions")
            .column("owner", DataType::Varchar(32))
            .column("target", DataType::Varchar(32))
            .column("approved", DataType::Bool)
            .primary_key(&["owner", "target"])
            .cardinality_limit(100, &["owner"])
            .build()
    }

    #[test]
    fn pk_coverage() {
        let t = subscriptions();
        let owner = t.column_id("owner").unwrap();
        let target = t.column_id("target").unwrap();
        assert!(t.covers_primary_key(&[owner, target]));
        assert!(t.covers_primary_key(&[target, owner, 2]));
        assert!(!t.covers_primary_key(&[owner]));
    }

    #[test]
    fn cardinality_matching_picks_tightest() {
        let mut t = subscriptions();
        t.cardinality_constraints.push(CardinalityConstraint {
            limit: 50,
            columns: vec!["owner".into()],
        });
        let owner = t.column_id("owner").unwrap();
        assert_eq!(t.matching_cardinality(&[owner]).unwrap().limit, 50);
        assert!(t.matching_cardinality(&[1]).is_none());
    }

    #[test]
    fn validation_requires_pk() {
        let t = TableDef::builder("X").column("a", DataType::Int).build();
        assert!(t.validate().is_err());
    }
}
