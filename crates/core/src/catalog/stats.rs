//! Table statistics for the *cost-based* baseline optimizer (§8.3).
//!
//! The scale-independent optimizer never consults these — that is the whole
//! point of the paper. They exist so the Figure-7 comparison can implement
//! the traditional objective ("minimize average operations given current
//! data") and demonstrate why it breaks under success.

use super::table::TableId;
use std::collections::BTreeMap;

/// Statistics for one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Total rows currently in the table.
    pub row_count: u64,
    /// Average number of rows sharing one value of a column (group
    /// cardinality), keyed by lower-cased column name. E.g. average number
    /// of subscriptions per `target` user.
    pub avg_group_size: BTreeMap<String, f64>,
}

impl TableStats {
    pub fn with_rows(row_count: u64) -> Self {
        TableStats {
            row_count,
            avg_group_size: BTreeMap::new(),
        }
    }

    pub fn set_avg_group_size(&mut self, column: &str, avg: f64) {
        self.avg_group_size.insert(column.to_ascii_lowercase(), avg);
    }

    pub fn avg_group_size(&self, column: &str) -> Option<f64> {
        self.avg_group_size
            .get(&column.to_ascii_lowercase())
            .copied()
    }
}

/// Statistics for the whole database.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: BTreeMap<TableId, TableStats>,
}

impl Statistics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_table(&mut self, table: TableId, stats: TableStats) {
        self.tables.insert(table, stats);
    }

    pub fn table(&self, table: TableId) -> Option<&TableStats> {
        self.tables.get(&table)
    }

    pub fn table_mut(&mut self, table: TableId) -> &mut TableStats {
        self.tables.entry(table).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sizes_case_insensitive() {
        let mut s = TableStats::with_rows(100);
        s.set_avg_group_size("Target", 126.0);
        assert_eq!(s.avg_group_size("target"), Some(126.0));
        assert_eq!(s.avg_group_size("owner"), None);
    }
}
