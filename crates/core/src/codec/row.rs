//! Compact, self-describing row (payload) serialization.
//!
//! Index entries and records are stored as raw bytes in the key/value
//! store; this codec frames each value with a one-byte tag so rows can be
//! decoded without consulting the schema (handy for debugging dumps and the
//! pagination cursor, which serializes heterogeneous resume state).
//! Unlike the key codec, this encoding is *not* order-preserving — it is
//! only used for values, never keys.

use crate::tuple::Tuple;
use crate::value::{Value, ValueRef};
use std::fmt;

/// Errors raised while decoding rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowCodecError {
    Corrupt(&'static str),
}

impl fmt::Display for RowCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowCodecError::Corrupt(msg) => write!(f, "corrupt row encoding: {msg}"),
        }
    }
}

impl std::error::Error for RowCodecError {}

const T_NULL: u8 = 0;
const T_INT: u8 = 1;
const T_BIGINT: u8 = 2;
const T_VARCHAR: u8 = 3;
const T_BOOL_FALSE: u8 = 4;
const T_BOOL_TRUE: u8 = 5;
const T_TIMESTAMP: u8 = 6;
const T_DOUBLE: u8 = 7;

/// Append a LEB128-style varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, RowCodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or(RowCodecError::Corrupt("truncated varint"))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(RowCodecError::Corrupt("varint overflow"));
        }
    }
}

/// Append one value.
pub fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(T_NULL),
        Value::Int(v) => {
            out.push(T_INT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::BigInt(v) => {
            out.push(T_BIGINT);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Varchar(s) => {
            out.push(T_VARCHAR);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(false) => out.push(T_BOOL_FALSE),
        Value::Bool(true) => out.push(T_BOOL_TRUE),
        Value::Timestamp(v) => {
            out.push(T_TIMESTAMP);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Value::Double(v) => {
            out.push(T_DOUBLE);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, RowCodecError> {
    let tag = *bytes
        .get(*pos)
        .ok_or(RowCodecError::Corrupt("missing tag"))?;
    *pos += 1;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], RowCodecError> {
        let s = bytes
            .get(*pos..*pos + n)
            .ok_or(RowCodecError::Corrupt("truncated value"))?;
        *pos += n;
        Ok(s)
    };
    Ok(match tag {
        T_NULL => Value::Null,
        T_INT => Value::Int(i32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
        T_BIGINT => Value::BigInt(i64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
        T_VARCHAR => {
            let len = read_varint(bytes, pos)? as usize;
            let raw = take(pos, len)?;
            Value::Varchar(
                std::str::from_utf8(raw)
                    .map_err(|_| RowCodecError::Corrupt("invalid utf-8"))?
                    .to_string(),
            )
        }
        T_BOOL_FALSE => Value::Bool(false),
        T_BOOL_TRUE => Value::Bool(true),
        T_TIMESTAMP => Value::Timestamp(i64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
        T_DOUBLE => Value::Double(f64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
        _ => return Err(RowCodecError::Corrupt("unknown tag")),
    })
}

/// Serialize a whole tuple: varint arity followed by tagged values.
pub fn encode_tuple(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuple.encoded_len());
    write_varint(&mut out, tuple.len() as u64);
    for v in tuple.values() {
        encode_value(&mut out, v);
    }
    out
}

/// Deserialize a tuple produced by [`encode_tuple`].
pub fn decode_tuple(bytes: &[u8]) -> Result<Tuple, RowCodecError> {
    let mut pos = 0usize;
    let arity = read_varint(bytes, &mut pos)? as usize;
    if arity > bytes.len() {
        return Err(RowCodecError::Corrupt("implausible arity"));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(bytes, &mut pos)?);
    }
    if pos != bytes.len() {
        return Err(RowCodecError::Corrupt("trailing bytes"));
    }
    Ok(Tuple::new(values))
}

/// A streaming, allocation-free reader over one encoded tuple: yields each
/// value as a borrowed [`ValueRef`] instead of materializing a [`Tuple`].
/// The server's point-read hot path transcodes stored rows straight onto
/// the wire through this.
pub struct RowReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
}

impl<'a> RowReader<'a> {
    /// Open a reader over `bytes` (an [`encode_tuple`] encoding); returns
    /// the reader and the tuple's arity.
    pub fn new(bytes: &'a [u8]) -> Result<(RowReader<'a>, usize), RowCodecError> {
        let mut pos = 0usize;
        let arity = read_varint(bytes, &mut pos)? as usize;
        if arity > bytes.len() {
            return Err(RowCodecError::Corrupt("implausible arity"));
        }
        Ok((
            RowReader {
                bytes,
                pos,
                remaining: arity,
            },
            arity,
        ))
    }

    /// Decode the next value. Calling past the arity is a codec error.
    pub fn next_value(&mut self) -> Result<ValueRef<'a>, RowCodecError> {
        if self.remaining == 0 {
            return Err(RowCodecError::Corrupt("read past arity"));
        }
        self.remaining -= 1;
        let tag = *self
            .bytes
            .get(self.pos)
            .ok_or(RowCodecError::Corrupt("missing tag"))?;
        self.pos += 1;
        let take = |this: &mut Self, n: usize| -> Result<&'a [u8], RowCodecError> {
            let s = this
                .bytes
                .get(this.pos..this.pos + n)
                .ok_or(RowCodecError::Corrupt("truncated value"))?;
            this.pos += n;
            Ok(s)
        };
        Ok(match tag {
            T_NULL => ValueRef::Null,
            T_INT => ValueRef::Int(i32::from_le_bytes(take(self, 4)?.try_into().unwrap())),
            T_BIGINT => ValueRef::BigInt(i64::from_le_bytes(take(self, 8)?.try_into().unwrap())),
            T_VARCHAR => {
                let len = read_varint(self.bytes, &mut self.pos)? as usize;
                let raw = take(self, len)?;
                ValueRef::Varchar(
                    std::str::from_utf8(raw)
                        .map_err(|_| RowCodecError::Corrupt("invalid utf-8"))?,
                )
            }
            T_BOOL_FALSE => ValueRef::Bool(false),
            T_BOOL_TRUE => ValueRef::Bool(true),
            T_TIMESTAMP => {
                ValueRef::Timestamp(i64::from_le_bytes(take(self, 8)?.try_into().unwrap()))
            }
            T_DOUBLE => ValueRef::Double(f64::from_le_bytes(take(self, 8)?.try_into().unwrap())),
            _ => return Err(RowCodecError::Corrupt("unknown tag")),
        })
    }

    /// Verify the reader consumed the encoding exactly (all values read,
    /// no trailing bytes) — the streaming analogue of [`decode_tuple`]'s
    /// trailing-bytes check.
    pub fn finish(self) -> Result<(), RowCodecError> {
        if self.remaining != 0 {
            return Err(RowCodecError::Corrupt("values left unread"));
        }
        if self.pos != self.bytes.len() {
            return Err(RowCodecError::Corrupt("trailing bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn roundtrip_all_types() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Int(-1),
            Value::BigInt(i64::MIN),
            Value::Varchar("héllo\0world".into()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Timestamp(1_700_000_000_000_000),
            Value::Double(std::f64::consts::PI),
        ]);
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::default();
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode_tuple(&[]).is_err());
        let mut enc = encode_tuple(&tuple![1, "abc"]);
        enc.truncate(enc.len() - 1);
        assert!(decode_tuple(&enc).is_err());
        let mut enc2 = encode_tuple(&tuple![1]);
        enc2.push(0xAA);
        assert!(decode_tuple(&enc2).is_err());
    }

    #[test]
    fn row_reader_streams_what_decode_tuple_decodes() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Int(-1),
            Value::BigInt(i64::MIN),
            Value::Varchar("héllo\0world".into()),
            Value::Bool(true),
            Value::Timestamp(1_700_000_000_000_000),
            Value::Double(std::f64::consts::PI),
        ]);
        let enc = encode_tuple(&t);
        let (mut reader, arity) = RowReader::new(&enc).unwrap();
        assert_eq!(arity, t.len());
        let streamed: Vec<Value> = (0..arity)
            .map(|_| reader.next_value().unwrap().to_value())
            .collect();
        assert_eq!(Tuple::new(streamed), t);
        reader.finish().unwrap();
        // truncation surfaces as an error mid-stream, never a panic
        let cut = &enc[..enc.len() - 1];
        let (mut reader, arity) = RowReader::new(cut).unwrap();
        let result: Result<Vec<_>, _> = (0..arity).map(|_| reader.next_value()).collect();
        assert!(result.is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16383, 16384, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }
}
