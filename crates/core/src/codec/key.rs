//! Order-preserving key encoding.
//!
//! The key/value store orders entries by raw bytes; PIQL's scale
//! independence relies on index scans reading *contiguous* key ranges
//! (§5.2.1). This codec guarantees that for composite keys
//! `(v1, .., vn)` and `(w1, .., wn)` of the same column types/directions,
//! `encode(v) < encode(w)` (bytewise) iff `v < w` (tuple order).
//!
//! Encoding per component (ascending):
//! * tag byte: `0x00` for NULL (sorts first), `0x01` for a present value
//! * `Int`: 4 bytes big-endian with the sign bit flipped
//! * `BigInt`/`Timestamp`: 8 bytes big-endian, sign bit flipped
//! * `Bool`: one byte (0/1)
//! * `Varchar`: UTF-8 with `0x00` escaped as `0x00 0xFF`, terminated by
//!   `0x00 0x01`. The terminator is less than any escaped byte pair, so
//!   prefixes sort before extensions.
//!
//! A component marked [`Dir::Desc`] has every payload byte complemented
//! after encoding (tag byte included), which exactly reverses its order
//! while preserving the order of the components around it. This is how
//! `ORDER BY timestamp DESC` becomes a forward scan of a composite index.

use crate::value::{DataType, Value, ValueRef};
use std::fmt;

/// Sort direction of one key component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dir {
    #[default]
    Asc,
    Desc,
}

impl Dir {
    pub fn reversed(self) -> Dir {
        match self {
            Dir::Asc => Dir::Desc,
            Dir::Desc => Dir::Asc,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Asc => write!(f, "ASC"),
            Dir::Desc => write!(f, "DESC"),
        }
    }
}

/// Errors raised while encoding or decoding keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyCodecError {
    /// Doubles (NaN) cannot participate in ordered keys.
    UnsupportedType(DataType),
    /// Ran out of bytes or hit a malformed escape while decoding.
    Corrupt(&'static str),
}

impl fmt::Display for KeyCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyCodecError::UnsupportedType(t) => {
                write!(f, "type {t} is not allowed in index keys")
            }
            KeyCodecError::Corrupt(msg) => write!(f, "corrupt key encoding: {msg}"),
        }
    }
}

impl std::error::Error for KeyCodecError {}

const TAG_NULL: u8 = 0x00;
const TAG_VALUE: u8 = 0x01;

/// Append one value to `out` with the given direction.
pub fn encode_component(out: &mut Vec<u8>, value: &Value, dir: Dir) -> Result<(), KeyCodecError> {
    encode_component_ref(out, ValueRef::of(value), dir)
}

/// [`encode_component`] over a borrowed [`ValueRef`] — the allocation-free
/// entry point the server's point-read hot path encodes probe keys with
/// (values decoded straight out of a wire frame, no `Value` materialized).
pub fn encode_component_ref(
    out: &mut Vec<u8>,
    value: ValueRef<'_>,
    dir: Dir,
) -> Result<(), KeyCodecError> {
    let start = out.len();
    match value {
        ValueRef::Null => out.push(TAG_NULL),
        ValueRef::Int(v) => {
            out.push(TAG_VALUE);
            out.extend_from_slice(&((v as u32) ^ 0x8000_0000).to_be_bytes());
        }
        ValueRef::BigInt(v) | ValueRef::Timestamp(v) => {
            out.push(TAG_VALUE);
            out.extend_from_slice(&((v as u64) ^ 0x8000_0000_0000_0000).to_be_bytes());
        }
        ValueRef::Bool(b) => {
            out.push(TAG_VALUE);
            out.push(b as u8);
        }
        ValueRef::Varchar(s) => {
            out.push(TAG_VALUE);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.push(0x00);
                    out.push(0xFF);
                } else {
                    out.push(b);
                }
            }
            out.push(0x00);
            out.push(TAG_VALUE); // terminator 0x00 0x01: below every escape pair
        }
        ValueRef::Double(_) => return Err(KeyCodecError::UnsupportedType(DataType::Double)),
    }
    if dir == Dir::Desc {
        for b in &mut out[start..] {
            *b = !*b;
        }
    }
    Ok(())
}

/// Encode a composite key. `dirs` must be at least as long as `values`;
/// missing entries default to ascending.
pub fn encode_key(values: &[Value], dirs: &[Dir]) -> Result<Vec<u8>, KeyCodecError> {
    let mut out = Vec::with_capacity(values.iter().map(Value::encoded_len).sum());
    for (i, v) in values.iter().enumerate() {
        encode_component(&mut out, v, dirs.get(i).copied().unwrap_or(Dir::Asc))?;
    }
    Ok(out)
}

/// Encode an all-ascending composite key.
pub fn encode_key_asc(values: &[Value]) -> Result<Vec<u8>, KeyCodecError> {
    encode_key(values, &[])
}

/// Decode `types.len()` components from `bytes`.
///
/// Returns the values and the number of bytes consumed (callers decoding a
/// key prefix use the remainder).
pub fn decode_key(
    bytes: &[u8],
    types: &[DataType],
    dirs: &[Dir],
) -> Result<(Vec<Value>, usize), KeyCodecError> {
    let mut pos = 0usize;
    let mut values = Vec::with_capacity(types.len());
    for (i, ty) in types.iter().enumerate() {
        let dir = dirs.get(i).copied().unwrap_or(Dir::Asc);
        let flip = |b: u8| if dir == Dir::Desc { !b } else { b };
        let tag = flip(
            *bytes
                .get(pos)
                .ok_or(KeyCodecError::Corrupt("missing tag"))?,
        );
        pos += 1;
        if tag == TAG_NULL {
            values.push(Value::Null);
            continue;
        }
        if tag != TAG_VALUE {
            return Err(KeyCodecError::Corrupt("bad tag"));
        }
        match ty {
            DataType::Int => {
                let end = pos + 4;
                let raw = bytes
                    .get(pos..end)
                    .ok_or(KeyCodecError::Corrupt("short int"))?;
                let mut buf = [0u8; 4];
                for (d, s) in buf.iter_mut().zip(raw) {
                    *d = flip(*s);
                }
                values.push(Value::Int((u32::from_be_bytes(buf) ^ 0x8000_0000) as i32));
                pos = end;
            }
            DataType::BigInt | DataType::Timestamp => {
                let end = pos + 8;
                let raw = bytes
                    .get(pos..end)
                    .ok_or(KeyCodecError::Corrupt("short bigint"))?;
                let mut buf = [0u8; 8];
                for (d, s) in buf.iter_mut().zip(raw) {
                    *d = flip(*s);
                }
                let v = (u64::from_be_bytes(buf) ^ 0x8000_0000_0000_0000) as i64;
                values.push(if *ty == DataType::Timestamp {
                    Value::Timestamp(v)
                } else {
                    Value::BigInt(v)
                });
                pos = end;
            }
            DataType::Bool => {
                let b = flip(*bytes.get(pos).ok_or(KeyCodecError::Corrupt("short bool"))?);
                values.push(Value::Bool(b != 0));
                pos += 1;
            }
            DataType::Varchar(_) => {
                let mut s = Vec::new();
                loop {
                    let b = flip(
                        *bytes
                            .get(pos)
                            .ok_or(KeyCodecError::Corrupt("unterminated string"))?,
                    );
                    pos += 1;
                    if b != 0x00 {
                        s.push(b);
                        continue;
                    }
                    let next = flip(
                        *bytes
                            .get(pos)
                            .ok_or(KeyCodecError::Corrupt("dangling escape"))?,
                    );
                    pos += 1;
                    match next {
                        0xFF => s.push(0x00),
                        TAG_VALUE => break,
                        _ => return Err(KeyCodecError::Corrupt("bad escape")),
                    }
                }
                let s =
                    String::from_utf8(s).map_err(|_| KeyCodecError::Corrupt("invalid utf-8"))?;
                values.push(Value::Varchar(s));
            }
            DataType::Double => return Err(KeyCodecError::UnsupportedType(DataType::Double)),
        }
    }
    Ok((values, pos))
}

/// Smallest byte string strictly greater than every key having `prefix` as a
/// prefix — i.e. the exclusive upper bound of the prefix range. `None` means
/// the range is unbounded above (prefix was all `0xFF`).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut bound = prefix.to_vec();
    while let Some(last) = bound.last_mut() {
        if *last != 0xFF {
            *last += 1;
            return Some(bound);
        }
        bound.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc1(v: &Value, dir: Dir) -> Vec<u8> {
        let mut out = Vec::new();
        encode_component(&mut out, v, dir).unwrap();
        out
    }

    #[test]
    fn int_order_preserved() {
        let vals = [i32::MIN, -7, -1, 0, 1, 42, i32::MAX];
        for w in vals.windows(2) {
            assert!(
                enc1(&Value::Int(w[0]), Dir::Asc) < enc1(&Value::Int(w[1]), Dir::Asc),
                "{} < {}",
                w[0],
                w[1]
            );
            assert!(enc1(&Value::Int(w[0]), Dir::Desc) > enc1(&Value::Int(w[1]), Dir::Desc));
        }
    }

    #[test]
    fn string_prefix_sorts_first() {
        let a = enc1(&Value::Varchar("ab".into()), Dir::Asc);
        let b = enc1(&Value::Varchar("abc".into()), Dir::Asc);
        assert!(a < b);
    }

    #[test]
    fn embedded_nul_roundtrip_and_order() {
        let v1 = Value::Varchar("a\0b".into());
        let v2 = Value::Varchar("a\0c".into());
        assert!(enc1(&v1, Dir::Asc) < enc1(&v2, Dir::Asc));
        let enc = encode_key_asc(std::slice::from_ref(&v1)).unwrap();
        let (dec, used) = decode_key(&enc, &[DataType::Varchar(10)], &[]).unwrap();
        assert_eq!(dec[0], v1);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn null_sorts_first() {
        assert!(enc1(&Value::Null, Dir::Asc) < enc1(&Value::Int(i32::MIN), Dir::Asc));
        assert!(enc1(&Value::Null, Dir::Asc) < enc1(&Value::Varchar(String::new()), Dir::Asc));
    }

    #[test]
    fn composite_key_lexicographic() {
        let k1 = encode_key_asc(&[Value::Varchar("bob".into()), Value::Int(2)]).unwrap();
        let k2 = encode_key_asc(&[Value::Varchar("bob".into()), Value::Int(10)]).unwrap();
        let k3 = encode_key_asc(&[Value::Varchar("carol".into()), Value::Int(0)]).unwrap();
        assert!(k1 < k2 && k2 < k3);
    }

    #[test]
    fn desc_component_reverses_only_itself() {
        // (owner ASC, timestamp DESC): same owner → later timestamps first.
        let dirs = [Dir::Asc, Dir::Desc];
        let k_new =
            encode_key(&[Value::Varchar("u".into()), Value::Timestamp(100)], &dirs).unwrap();
        let k_old = encode_key(&[Value::Varchar("u".into()), Value::Timestamp(50)], &dirs).unwrap();
        let k_other =
            encode_key(&[Value::Varchar("v".into()), Value::Timestamp(999)], &dirs).unwrap();
        assert!(k_new < k_old, "newer timestamp sorts first under DESC");
        assert!(k_old < k_other, "owner still ascending");
    }

    #[test]
    fn decode_roundtrip_composite() {
        let vals = vec![
            Value::Int(-5),
            Value::Varchar("hé\0llo".into()),
            Value::Bool(true),
            Value::Timestamp(123456789),
            Value::Null,
        ];
        let types = [
            DataType::Int,
            DataType::Varchar(20),
            DataType::Bool,
            DataType::Timestamp,
            DataType::BigInt,
        ];
        let dirs = [Dir::Asc, Dir::Desc, Dir::Asc, Dir::Desc, Dir::Asc];
        let enc = encode_key(&vals, &dirs).unwrap();
        let (dec, used) = decode_key(&enc, &types, &dirs).unwrap();
        assert_eq!(dec, vals);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn double_rejected() {
        assert!(encode_key_asc(&[Value::Double(1.0)]).is_err());
    }

    #[test]
    fn prefix_bound_basics() {
        assert_eq!(prefix_upper_bound(&[1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(prefix_upper_bound(&[1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(&[]), None);
    }
}
