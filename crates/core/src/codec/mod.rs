//! Byte-level codecs: order-preserving keys and tagged row payloads.

pub mod key;
pub mod row;
