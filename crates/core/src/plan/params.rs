//! Runtime parameter bindings.

use crate::value::Value;
use std::fmt;

/// A value bound to one query parameter at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    Scalar(Value),
    /// Bound to an `IN [p MAX n]` collection parameter.
    Collection(Vec<Value>),
}

impl ParamValue {
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            ParamValue::Scalar(v) => Some(v),
            ParamValue::Collection(_) => None,
        }
    }

    pub fn as_collection(&self) -> Option<&[Value]> {
        match self {
            ParamValue::Collection(vs) => Some(vs),
            ParamValue::Scalar(_) => None,
        }
    }
}

impl From<Value> for ParamValue {
    fn from(v: Value) -> Self {
        ParamValue::Scalar(v)
    }
}

impl From<Vec<Value>> for ParamValue {
    fn from(vs: Vec<Value>) -> Self {
        ParamValue::Collection(vs)
    }
}

/// Errors raised when resolving parameters at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    Missing {
        index: usize,
        name: String,
    },
    ExpectedScalar {
        index: usize,
        name: String,
    },
    ExpectedCollection {
        index: usize,
        name: String,
    },
    /// A collection exceeded its declared `MAX` — executing it would break
    /// the static bound, so it is an error, not a truncation.
    CollectionTooLarge {
        index: usize,
        name: String,
        max: u64,
        got: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Missing { index, name } => {
                write!(f, "parameter [{}: {name}] is not bound", index + 1)
            }
            ParamError::ExpectedScalar { index, name } => {
                write!(f, "parameter [{}: {name}] must be a scalar", index + 1)
            }
            ParamError::ExpectedCollection { index, name } => {
                write!(f, "parameter [{}: {name}] must be a collection", index + 1)
            }
            ParamError::CollectionTooLarge {
                index,
                name,
                max,
                got,
            } => write!(
                f,
                "parameter [{}: {name}] has {got} elements, exceeding its declared MAX {max}",
                index + 1
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// An ordered set of parameter bindings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: Vec<Option<ParamValue>>,
}

impl Params {
    pub fn new() -> Self {
        Self::default()
    }

    /// Positional construction: `Params::from_values([v1, v2])`.
    pub fn from_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<ParamValue>,
    {
        Params {
            values: values.into_iter().map(|v| Some(v.into())).collect(),
        }
    }

    pub fn set(&mut self, index: usize, value: impl Into<ParamValue>) -> &mut Self {
        if self.values.len() <= index {
            self.values.resize(index + 1, None);
        }
        self.values[index] = Some(value.into());
        self
    }

    pub fn get(&self, index: usize) -> Option<&ParamValue> {
        self.values.get(index).and_then(|v| v.as_ref())
    }

    pub fn scalar(&self, index: usize, name: &str) -> Result<&Value, ParamError> {
        let pv = self.get(index).ok_or_else(|| ParamError::Missing {
            index,
            name: name.to_string(),
        })?;
        pv.as_scalar().ok_or_else(|| ParamError::ExpectedScalar {
            index,
            name: name.to_string(),
        })
    }

    pub fn collection(
        &self,
        index: usize,
        name: &str,
        max: Option<u64>,
    ) -> Result<&[Value], ParamError> {
        let pv = self.get(index).ok_or_else(|| ParamError::Missing {
            index,
            name: name.to_string(),
        })?;
        let vs = pv
            .as_collection()
            .ok_or_else(|| ParamError::ExpectedCollection {
                index,
                name: name.to_string(),
            })?;
        if let Some(max) = max {
            if vs.len() as u64 > max {
                return Err(ParamError::CollectionTooLarge {
                    index,
                    name: name.to_string(),
                    max,
                    got: vs.len(),
                });
            }
        }
        Ok(vs)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_collection_access() {
        let mut p = Params::new();
        p.set(0, Value::Varchar("bob".into()));
        p.set(1, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(p.scalar(0, "u").unwrap(), &Value::Varchar("bob".into()));
        assert_eq!(p.collection(1, "xs", Some(2)).unwrap().len(), 2);
        assert!(matches!(
            p.collection(1, "xs", Some(1)),
            Err(ParamError::CollectionTooLarge { .. })
        ));
        assert!(matches!(p.scalar(2, "zz"), Err(ParamError::Missing { .. })));
        assert!(matches!(
            p.scalar(1, "xs"),
            Err(ParamError::ExpectedScalar { .. })
        ));
    }

    #[test]
    fn from_values_positional() {
        let p = Params::from_values([Value::Int(1), Value::Int(2)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.scalar(1, "b").unwrap(), &Value::Int(2));
    }
}
