//! Physical query plans.
//!
//! Phase II of the optimizer (§5.2) maps logical operator groups onto three
//! *remote* operators — `IndexScan`, `IndexFKJoin`, `SortedIndexJoin` — and
//! the local operators. Every remote operator carries an explicit bound on
//! the key/value-store requests it may issue and the tuples it may ship;
//! the plan's aggregate [`QueryBounds`] is the quantity that makes a query
//! *scale-independent*.
//!
//! Runtime addressing is positional: every node records its output `layout`
//! (global field ids in tuple-position order), and predicates/sort keys are
//! pre-remapped to positions by the planner.

use super::pred::{BoundPredicate, Operand};
use super::provenance::Provenance;
use super::schema::{FieldId, QuerySchema, RelId};
use crate::ast::{AggFunc, Param};
use crate::catalog::{IndexDef, TableId};
use crate::codec::key::Dir;
use crate::value::DataType;
use std::fmt;

/// Static resource bounds of one operator (cumulative bounds live on
/// [`QueryBounds`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpBounds {
    /// Key/value-store requests this operator may issue (gets + range gets).
    pub requests: u64,
    /// Sequential round trips (parallel batches count once, §7.1).
    pub rounds: u64,
    /// Tuples this operator may emit.
    pub tuples: u64,
    /// Bytes shipped from the store to the client.
    pub bytes: u64,
}

/// Whole-plan bounds. `guaranteed` is false only for cost-based baseline
/// plans, whose "bounds" are statistics-based estimates (§8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryBounds {
    pub requests: u64,
    pub rounds: u64,
    pub tuples: u64,
    pub bytes: u64,
    pub guaranteed: bool,
}

/// Scan result-size control.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanLimit {
    /// Scale-independent: at most `count` entries are fetched, in one
    /// prefetched request (the executor's limit hint, §7.1).
    Bounded { count: u64, provenance: Provenance },
    /// Cost-based plans only: fetch until exhausted. `estimate` is the
    /// statistics-based expected entry count.
    Unbounded { estimate: u64 },
}

impl ScanLimit {
    pub fn count_or_estimate(&self) -> u64 {
        match self {
            ScanLimit::Bounded { count, .. } => *count,
            ScanLimit::Unbounded { estimate } => *estimate,
        }
    }

    pub fn is_bounded(&self) -> bool {
        matches!(self, ScanLimit::Bounded { .. })
    }

    /// The justification of the bound, when there is one.
    pub fn provenance(&self) -> Option<&Provenance> {
        match self {
            ScanLimit::Bounded { provenance, .. } => Some(provenance),
            ScanLimit::Unbounded { .. } => None,
        }
    }
}

/// One end of a key range.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBound {
    pub operand: Operand,
    pub inclusive: bool,
}

/// An inequality served by the index: a range over the key part directly
/// after the equality prefix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RangeSpec {
    pub low: Option<RangeBound>,
    pub high: Option<RangeBound>,
}

/// Which index a remote operator reads.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRef {
    pub table: TableId,
    pub rel: RelId,
    /// `None` = the table's primary index (key = pk, value = full row).
    pub secondary: Option<IndexDef>,
}

impl IndexRef {
    pub fn is_primary(&self) -> bool {
        self.secondary.is_none()
    }

    pub fn display_name(&self, schema_table_name: &str) -> String {
        match &self.secondary {
            None => format!("{schema_table_name}(primary)"),
            Some(idx) => idx.name.clone(),
        }
    }
}

/// A value feeding one key component of a probe, resolved at runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum KeySource {
    /// Constant or parameter known per-execution.
    Const(Operand),
    /// Taken from the child tuple at this position (join key).
    ChildField(usize),
}

impl fmt::Display for KeySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeySource::Const(op) => write!(f, "{op}"),
            KeySource::ChildField(p) => write!(f, "child[{p}]"),
        }
    }
}

/// An `IndexScan` specification (Figure 4(a)).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    pub index: IndexRef,
    /// Operands for the leading key parts, in index order. When the index
    /// has a token part it is the first element.
    pub eq_prefix: Vec<Operand>,
    /// Optional range over the key part at position `eq_prefix.len()`.
    pub range: Option<RangeSpec>,
    /// Scan the index in reverse (serves `ORDER BY ... DESC` on an
    /// ascending index and vice versa).
    pub reverse: bool,
    pub limit: ScanLimit,
    /// Secondary-index entries carry only key columns; `deref` adds one
    /// parallel round of gets to fetch full rows (§5.1).
    pub deref: bool,
    /// Upper bound on the byte size of one fetched tuple (β for the SLO
    /// model).
    pub row_bytes: u64,
}

/// A `SortedIndexJoin` specification (Figure 4(c)).
#[derive(Debug, Clone, PartialEq)]
pub struct SortedJoinSpec {
    pub index: IndexRef,
    /// Probe prefix per child tuple, in index order.
    pub prefix: Vec<KeySource>,
    /// Entries fetched per probe.
    pub per_key: u64,
    pub per_key_provenance: Provenance,
    /// Merge keys as positions in the *output* tuple, with direction.
    /// Empty means child order is kept (concatenation).
    pub merge_by: Vec<(usize, Dir)>,
    pub reverse: bool,
    /// Folded standard stop: emit at most this many output tuples.
    pub emit_limit: Option<u64>,
    pub deref: bool,
    pub row_bytes: u64,
}

/// An aggregate computed by [`PhysicalPlan::LocalAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhysAggregate {
    pub func: AggFunc,
    /// Input tuple position (`None` = COUNT(*)).
    pub arg: Option<usize>,
    pub alias: String,
}

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Bounded in-memory relation from a collection parameter (local).
    ParamSource {
        rel: RelId,
        param: Param,
        ty: DataType,
        max: u64,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    /// Remote: one contiguous, bounded index read (plus optional deref).
    IndexScan {
        spec: ScanSpec,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    /// Remote: per child tuple, one get against the joined table's primary
    /// key (Figure 4(b)). All gets of a batch go out in parallel.
    IndexFKJoin {
        child: Box<PhysicalPlan>,
        rel: RelId,
        table: TableId,
        /// Values for the target primary key, in pk order.
        key: Vec<KeySource>,
        row_bytes: u64,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    /// Remote: per child tuple, one bounded pre-sorted index range read;
    /// results are merge-sorted client-side (Figure 4(c)).
    SortedIndexJoin {
        child: Box<PhysicalPlan>,
        rel: RelId,
        table: TableId,
        spec: SortedJoinSpec,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    /// Local conjunctive filter (predicates remapped to positions).
    LocalSelection {
        child: Box<PhysicalPlan>,
        predicates: Vec<BoundPredicate>,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    LocalSort {
        child: Box<PhysicalPlan>,
        keys: Vec<(usize, Dir)>,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    LocalStop {
        child: Box<PhysicalPlan>,
        count: u64,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    LocalProject {
        child: Box<PhysicalPlan>,
        /// (child position, output name)
        columns: Vec<(usize, String)>,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
    LocalAggregate {
        child: Box<PhysicalPlan>,
        group_by: Vec<usize>,
        aggs: Vec<PhysAggregate>,
        layout: Vec<FieldId>,
        bounds: OpBounds,
    },
}

impl PhysicalPlan {
    pub fn bounds(&self) -> OpBounds {
        match self {
            PhysicalPlan::ParamSource { bounds, .. }
            | PhysicalPlan::IndexScan { bounds, .. }
            | PhysicalPlan::IndexFKJoin { bounds, .. }
            | PhysicalPlan::SortedIndexJoin { bounds, .. }
            | PhysicalPlan::LocalSelection { bounds, .. }
            | PhysicalPlan::LocalSort { bounds, .. }
            | PhysicalPlan::LocalStop { bounds, .. }
            | PhysicalPlan::LocalProject { bounds, .. }
            | PhysicalPlan::LocalAggregate { bounds, .. } => *bounds,
        }
    }

    pub fn layout(&self) -> &[FieldId] {
        match self {
            PhysicalPlan::ParamSource { layout, .. }
            | PhysicalPlan::IndexScan { layout, .. }
            | PhysicalPlan::IndexFKJoin { layout, .. }
            | PhysicalPlan::SortedIndexJoin { layout, .. }
            | PhysicalPlan::LocalSelection { layout, .. }
            | PhysicalPlan::LocalSort { layout, .. }
            | PhysicalPlan::LocalStop { layout, .. }
            | PhysicalPlan::LocalProject { layout, .. }
            | PhysicalPlan::LocalAggregate { layout, .. } => layout,
        }
    }

    pub fn child(&self) -> Option<&PhysicalPlan> {
        match self {
            PhysicalPlan::ParamSource { .. } | PhysicalPlan::IndexScan { .. } => None,
            PhysicalPlan::IndexFKJoin { child, .. }
            | PhysicalPlan::SortedIndexJoin { child, .. }
            | PhysicalPlan::LocalSelection { child, .. }
            | PhysicalPlan::LocalSort { child, .. }
            | PhysicalPlan::LocalStop { child, .. }
            | PhysicalPlan::LocalProject { child, .. }
            | PhysicalPlan::LocalAggregate { child, .. } => Some(child),
        }
    }

    /// Remote operators in execution order (bottom-up) — the sequence the
    /// SLO predictor convolves (§6.2).
    pub fn remote_ops(&self) -> Vec<&PhysicalPlan> {
        let mut ops = Vec::new();
        fn walk<'a>(p: &'a PhysicalPlan, out: &mut Vec<&'a PhysicalPlan>) {
            if let Some(c) = p.child() {
                walk(c, out);
            }
            if matches!(
                p,
                PhysicalPlan::IndexScan { .. }
                    | PhysicalPlan::IndexFKJoin { .. }
                    | PhysicalPlan::SortedIndexJoin { .. }
            ) {
                out.push(p);
            }
        }
        walk(self, &mut ops);
        ops
    }

    /// Sum the per-operator bounds into whole-query totals.
    pub fn total_bounds(&self, guaranteed: bool) -> QueryBounds {
        let mut requests = 0u64;
        let mut rounds = 0u64;
        let mut bytes = 0u64;
        fn walk(p: &PhysicalPlan, req: &mut u64, rnd: &mut u64, by: &mut u64) {
            if let Some(c) = p.child() {
                walk(c, req, rnd, by);
            }
            let b = p.bounds();
            *req += b.requests;
            *rnd += b.rounds;
            *by += b.bytes;
        }
        walk(self, &mut requests, &mut rounds, &mut bytes);
        QueryBounds {
            requests,
            rounds,
            tuples: self.bounds().tuples,
            bytes,
            guaranteed,
        }
    }

    /// Render with resolved names, Figure 3(d)-style.
    pub fn display_with<'a>(&'a self, schema: &'a QuerySchema) -> DisplayPhysical<'a> {
        DisplayPhysical { plan: self, schema }
    }
}

/// Pretty-printer wrapper for physical plans.
pub struct DisplayPhysical<'a> {
    plan: &'a PhysicalPlan,
    schema: &'a QuerySchema,
}

impl fmt::Display for DisplayPhysical<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_phys(self.plan, self.schema, f, 0)
    }
}

fn fmt_phys(
    plan: &PhysicalPlan,
    schema: &QuerySchema,
    f: &mut fmt::Formatter<'_>,
    depth: usize,
) -> fmt::Result {
    let pad = "  ".repeat(depth);
    let pos_name = |layout: &[FieldId], pos: usize| -> String {
        layout
            .get(pos)
            .map(|&fid| schema.field(fid).qualified_name())
            .unwrap_or_else(|| format!("#{pos}"))
    };
    match plan {
        PhysicalPlan::ParamSource { param, max, .. } => {
            writeln!(f, "{pad}ParamSource({param}, max={max})")
        }
        PhysicalPlan::IndexScan { spec, bounds, .. } => {
            let rel = schema.relation(spec.index.rel);
            write!(
                f,
                "{pad}IndexScan({}, key=<",
                spec.index.display_name(&rel.binding)
            )?;
            for (i, op) in spec.eq_prefix.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{op}")?;
            }
            write!(f, ">")?;
            if let Some(r) = &spec.range {
                write!(f, ", range=")?;
                match &r.low {
                    Some(b) => write!(f, "{}{}", if b.inclusive { "[" } else { "(" }, b.operand)?,
                    None => write!(f, "(-inf")?,
                }
                write!(f, " .. ")?;
                match &r.high {
                    Some(b) => write!(f, "{}{}", b.operand, if b.inclusive { "]" } else { ")" })?,
                    None => write!(f, "+inf)")?,
                }
            }
            write!(
                f,
                ", {}",
                if spec.reverse {
                    "descending"
                } else {
                    "ascending"
                }
            )?;
            match &spec.limit {
                ScanLimit::Bounded { count, provenance } => {
                    write!(f, ", limitHint={count} [{provenance}]")?
                }
                ScanLimit::Unbounded { estimate } => write!(f, ", UNBOUNDED (est. {estimate})")?,
            }
            if spec.deref {
                write!(f, ", deref")?;
            }
            writeln!(f, ") requests<={}", bounds.requests)
        }
        PhysicalPlan::IndexFKJoin {
            child,
            rel,
            key,
            bounds,
            ..
        } => {
            let r = schema.relation(*rel);
            write!(f, "{pad}IndexFKJoin({}, pk=<", r.binding)?;
            for (i, k) in key.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match k {
                    KeySource::Const(op) => write!(f, "{op}")?,
                    KeySource::ChildField(p) => write!(f, "{}", pos_name(child.layout(), *p))?,
                }
            }
            writeln!(f, ">) requests<={}", bounds.requests)?;
            fmt_phys(child, schema, f, depth + 1)
        }
        PhysicalPlan::SortedIndexJoin {
            child,
            rel,
            spec,
            layout,
            bounds,
            ..
        } => {
            let r = schema.relation(*rel);
            write!(
                f,
                "{pad}SortedIndexJoin({}, index={}, key=<",
                r.binding,
                spec.index.display_name(&r.binding)
            )?;
            for (i, k) in spec.prefix.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match k {
                    KeySource::Const(op) => write!(f, "{op}")?,
                    KeySource::ChildField(p) => write!(f, "{}", pos_name(child.layout(), *p))?,
                }
            }
            write!(f, ">")?;
            if !spec.merge_by.is_empty() {
                write!(f, ", sort=")?;
                for (i, (pos, dir)) in spec.merge_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", pos_name(layout, *pos), dir)?;
                }
            }
            write!(f, ", perKey={} [{}]", spec.per_key, spec.per_key_provenance)?;
            if let Some(e) = spec.emit_limit {
                write!(f, ", limitHint={e}")?;
            }
            if spec.deref {
                write!(f, ", deref")?;
            }
            writeln!(f, ") requests<={}", bounds.requests)?;
            fmt_phys(child, schema, f, depth + 1)
        }
        PhysicalPlan::LocalSelection {
            child, predicates, ..
        } => {
            write!(f, "{pad}LocalSelection(")?;
            for (i, p) in predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                // predicates are position-remapped; render via layout
                let rendered = super::logical::render_pred(
                    schema,
                    &p.remap(|pos| child.layout().get(pos).copied().unwrap_or(pos)),
                );
                write!(f, "{rendered}")?;
            }
            writeln!(f, ")")?;
            fmt_phys(child, schema, f, depth + 1)
        }
        PhysicalPlan::LocalSort { child, keys, .. } => {
            write!(f, "{pad}LocalSort(")?;
            for (i, (pos, dir)) in keys.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} {}", pos_name(child.layout(), *pos), dir)?;
            }
            writeln!(f, ")")?;
            fmt_phys(child, schema, f, depth + 1)
        }
        PhysicalPlan::LocalStop { child, count, .. } => {
            writeln!(f, "{pad}LocalStop({count})")?;
            fmt_phys(child, schema, f, depth + 1)
        }
        PhysicalPlan::LocalProject { child, columns, .. } => {
            write!(f, "{pad}LocalProject(")?;
            for (i, (pos, name)) in columns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let src = pos_name(child.layout(), *pos);
                if src.ends_with(&format!(".{name}")) {
                    write!(f, "{src}")?;
                } else {
                    write!(f, "{src} AS {name}")?;
                }
            }
            writeln!(f, ")")?;
            fmt_phys(child, schema, f, depth + 1)
        }
        PhysicalPlan::LocalAggregate {
            child,
            group_by,
            aggs,
            ..
        } => {
            write!(f, "{pad}LocalAggregate(")?;
            if !group_by.is_empty() {
                write!(f, "group by ")?;
                for (i, g) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", pos_name(child.layout(), *g))?;
                }
                write!(f, "; ")?;
            }
            for (i, a) in aggs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match a.arg {
                    Some(pos) => write!(f, "{}({})", a.func, pos_name(child.layout(), pos))?,
                    None => write!(f, "{}(*)", a.func)?,
                }
            }
            writeln!(f, ")")?;
            fmt_phys(child, schema, f, depth + 1)
        }
    }
}
