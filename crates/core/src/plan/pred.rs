//! Bound predicates: name-resolved conjuncts with runtime evaluation.
//!
//! Evaluation treats the predicate's [`FieldId`]s as positions into the
//! tuple being tested. Plans whose runtime tuple layout differs from the
//! global field order remap predicates with [`BoundPredicate::remap`] before
//! execution.

use super::params::{ParamError, Params};
use super::schema::FieldId;
use crate::ast::{CompareOp, Param};
use crate::text;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A scalar operand whose value is known at bind time or at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Literal(Value),
    Param(Param),
}

impl Operand {
    /// Resolve to a concrete value using the runtime parameter bindings.
    pub fn resolve<'a>(&'a self, params: &'a Params) -> Result<&'a Value, ParamError> {
        match self {
            Operand::Literal(v) => Ok(v),
            Operand::Param(p) => params.scalar(p.index, &p.name),
        }
    }

    pub fn as_param(&self) -> Option<&Param> {
        match self {
            Operand::Param(p) => Some(p),
            Operand::Literal(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Literal(v) => write!(f, "{v}"),
            Operand::Param(p) => write!(f, "{p}"),
        }
    }
}

/// The collection operand of a bound `IN`.
#[derive(Debug, Clone, PartialEq)]
pub enum InOperand {
    Values(Vec<Value>),
    Param(Param),
}

impl InOperand {
    /// Static bound on the collection size, if one exists.
    pub fn max_len(&self) -> Option<u64> {
        match self {
            InOperand::Values(vs) => Some(vs.len() as u64),
            InOperand::Param(p) => p.max_cardinality,
        }
    }

    pub fn resolve<'a>(&'a self, params: &'a Params) -> Result<&'a [Value], ParamError> {
        match self {
            InOperand::Values(vs) => Ok(vs),
            InOperand::Param(p) => params.collection(p.index, &p.name, p.max_cardinality),
        }
    }
}

impl fmt::Display for InOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InOperand::Values(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            InOperand::Param(p) => write!(f, "{p}"),
        }
    }
}

/// A name-resolved predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundPredicate {
    /// `field OP operand`.
    Compare {
        field: FieldId,
        op: CompareOp,
        operand: Operand,
    },
    /// `left OP right` over two fields (equality forms are join predicates).
    FieldCompare {
        left: FieldId,
        op: CompareOp,
        right: FieldId,
    },
    /// Tokenized text search: `field LIKE operand` rewritten per §7.3. True
    /// iff the operand (a single word) appears as a token of the field.
    TokenMatch { field: FieldId, operand: Operand },
    /// `field IN operand`.
    In { field: FieldId, operand: InOperand },
    /// `field IS [NOT] NULL`.
    IsNull { field: FieldId, negated: bool },
}

impl BoundPredicate {
    /// All fields referenced.
    pub fn fields(&self) -> Vec<FieldId> {
        match self {
            BoundPredicate::Compare { field, .. }
            | BoundPredicate::TokenMatch { field, .. }
            | BoundPredicate::In { field, .. }
            | BoundPredicate::IsNull { field, .. } => vec![*field],
            BoundPredicate::FieldCompare { left, right, .. } => vec![*left, *right],
        }
    }

    /// Equality against a constant/param operand: `Some((field, operand))`.
    pub fn as_attribute_equality(&self) -> Option<(FieldId, &Operand)> {
        match self {
            BoundPredicate::Compare {
                field,
                op: CompareOp::Eq,
                operand,
            } => Some((*field, operand)),
            _ => None,
        }
    }

    /// Equality between two fields: `Some((left, right))`.
    pub fn as_join_equality(&self) -> Option<(FieldId, FieldId)> {
        match self {
            BoundPredicate::FieldCompare {
                left,
                op: CompareOp::Eq,
                right,
            } => Some((*left, *right)),
            _ => None,
        }
    }

    /// Rewrite all field ids through `f` (e.g. global id → tuple position).
    pub fn remap(&self, f: impl Fn(FieldId) -> FieldId) -> BoundPredicate {
        match self {
            BoundPredicate::Compare { field, op, operand } => BoundPredicate::Compare {
                field: f(*field),
                op: *op,
                operand: operand.clone(),
            },
            BoundPredicate::FieldCompare { left, op, right } => BoundPredicate::FieldCompare {
                left: f(*left),
                op: *op,
                right: f(*right),
            },
            BoundPredicate::TokenMatch { field, operand } => BoundPredicate::TokenMatch {
                field: f(*field),
                operand: operand.clone(),
            },
            BoundPredicate::In { field, operand } => BoundPredicate::In {
                field: f(*field),
                operand: operand.clone(),
            },
            BoundPredicate::IsNull { field, negated } => BoundPredicate::IsNull {
                field: f(*field),
                negated: *negated,
            },
        }
    }

    /// Evaluate against a tuple whose positions correspond to this
    /// predicate's field ids. SQL three-valued logic is collapsed to
    /// `false` for NULL comparisons (sufficient for PIQL's conjunctions).
    pub fn eval(&self, tuple: &Tuple, params: &Params) -> Result<bool, ParamError> {
        Ok(match self {
            BoundPredicate::Compare { field, op, operand } => {
                let left = &tuple[*field];
                let right = operand.resolve(params)?;
                if left.is_null() || right.is_null() {
                    false
                } else {
                    op.matches(left.total_cmp(right))
                }
            }
            BoundPredicate::FieldCompare { left, op, right } => {
                let l = &tuple[*left];
                let r = &tuple[*right];
                if l.is_null() || r.is_null() {
                    false
                } else {
                    op.matches(l.total_cmp(r))
                }
            }
            BoundPredicate::TokenMatch { field, operand } => {
                let text_val = &tuple[*field];
                let pat = operand.resolve(params)?;
                match (text_val.as_str(), pat.as_str()) {
                    (Some(t), Some(p)) => match text::search_token(p) {
                        Some(tok) => text::contains_token(t, &tok),
                        None => false,
                    },
                    _ => false,
                }
            }
            BoundPredicate::In { field, operand } => {
                let needle = &tuple[*field];
                if needle.is_null() {
                    false
                } else {
                    operand
                        .resolve(params)?
                        .iter()
                        .any(|v| needle.total_cmp(v) == std::cmp::Ordering::Equal)
                }
            }
            BoundPredicate::IsNull { field, negated } => tuple[*field].is_null() != *negated,
        })
    }

    /// Evaluate a conjunction.
    pub fn eval_all(
        preds: &[BoundPredicate],
        tuple: &Tuple,
        params: &Params,
    ) -> Result<bool, ParamError> {
        for p in preds {
            if !p.eval(tuple, params)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl fmt::Display for BoundPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundPredicate::Compare { field, op, operand } => {
                write!(f, "#{field} {op} {operand}")
            }
            BoundPredicate::FieldCompare { left, op, right } => {
                write!(f, "#{left} {op} #{right}")
            }
            BoundPredicate::TokenMatch { field, operand } => {
                write!(f, "#{field} CONTAINS TOKEN {operand}")
            }
            BoundPredicate::In { field, operand } => write!(f, "#{field} IN {operand}"),
            BoundPredicate::IsNull { field, negated } => {
                write!(f, "#{field} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn params() -> Params {
        let mut p = Params::new();
        p.set(0, Value::Varchar("bob".into()));
        p.set(1, vec![Value::Int(1), Value::Int(3)]);
        p
    }

    #[test]
    fn compare_with_param() {
        let pred = BoundPredicate::Compare {
            field: 0,
            op: CompareOp::Eq,
            operand: Operand::Param(Param {
                index: 0,
                name: "u".into(),
                max_cardinality: None,
            }),
        };
        assert!(pred.eval(&tuple!["bob"], &params()).unwrap());
        assert!(!pred.eval(&tuple!["alice"], &params()).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let pred = BoundPredicate::Compare {
            field: 0,
            op: CompareOp::Ne,
            operand: Operand::Literal(Value::Int(1)),
        };
        assert!(!pred
            .eval(&Tuple::new(vec![Value::Null]), &params())
            .unwrap());
    }

    #[test]
    fn in_and_isnull() {
        let pred = BoundPredicate::In {
            field: 0,
            operand: InOperand::Param(Param {
                index: 1,
                name: "xs".into(),
                max_cardinality: Some(10),
            }),
        };
        assert!(pred.eval(&tuple![3], &params()).unwrap());
        assert!(!pred.eval(&tuple![2], &params()).unwrap());
        let isnull = BoundPredicate::IsNull {
            field: 0,
            negated: true,
        };
        assert!(isnull.eval(&tuple![2], &params()).unwrap());
    }

    #[test]
    fn token_match_semantics() {
        let pred = BoundPredicate::TokenMatch {
            field: 0,
            operand: Operand::Literal(Value::Varchar("Wrath".into())),
        };
        assert!(pred
            .eval(&tuple!["The Grapes of Wrath"], &params())
            .unwrap());
        assert!(!pred.eval(&tuple!["Wrathful Tales No"], &params()).unwrap());
        assert!(!pred.eval(&tuple!["peaceful"], &params()).unwrap());
    }

    #[test]
    fn remap_rewrites_all_fields() {
        let pred = BoundPredicate::FieldCompare {
            left: 2,
            op: CompareOp::Eq,
            right: 5,
        };
        let mapped = pred.remap(|f| f * 10);
        assert_eq!(mapped.fields(), vec![20, 50]);
    }
}
