//! Logical query plans.
//!
//! The binder produces the "naive" logical plan (Figure 3(b)): a left-deep
//! join tree in syntactic order, relation-local predicates directly above
//! their relations, join conditions on join nodes, then Sort, Stop, and
//! Project. Phase I of the optimizer (§5.1) transforms this tree: join
//! reordering, data-stop insertion, and stop push-down.

use super::pred::BoundPredicate;
use super::provenance::Provenance;
use super::schema::{FieldId, QuerySchema, RelId};
use crate::codec::key::Dir;
use std::fmt;

/// The two stop flavors of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopKind {
    /// From a LIMIT/PAGINATE clause: a semantic bound on emitted rows.
    /// May not be pushed past reductive predicates.
    Standard,
    /// An optimizer annotation recording that the *database* cannot contain
    /// more than `count` rows matching the stop's cause predicates (primary
    /// key or CARDINALITY LIMIT). May be pushed past any predicate except
    /// its cause.
    Data,
}

/// A stop operator.
#[derive(Debug, Clone, PartialEq)]
pub struct Stop {
    pub kind: StopKind,
    pub count: u64,
    /// Where the bound came from — structured, so EXPLAIN and the audit
    /// subsystem can name the justifying clause (`Display` renders the
    /// legacy strings: `LIMIT 10`, `pk(users)`,
    /// `CARDINALITY LIMIT 100 (owner)`).
    pub provenance: Provenance,
    /// For data-stops: the equality predicates that justified insertion.
    /// The stop must stay above these.
    pub cause: Vec<BoundPredicate>,
}

/// A logical operator tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A base-table leaf.
    Relation {
        rel: RelId,
    },
    /// A bounded parameter-collection leaf (`IN` rewrite target).
    ParamValues {
        rel: RelId,
    },
    /// Conjunctive filter.
    Selection {
        input: Box<LogicalPlan>,
        predicates: Vec<BoundPredicate>,
    },
    /// Inner equi-join; `on` pairs are (left-subtree field, right-subtree
    /// field).
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<(FieldId, FieldId)>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(FieldId, Dir)>,
    },
    Stop {
        input: Box<LogicalPlan>,
        stop: Stop,
    },
    Project {
        input: Box<LogicalPlan>,
        /// Output fields in order, with display aliases.
        items: Vec<(FieldId, String)>,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<FieldId>,
        aggs: Vec<super::bind::BoundAggregate>,
    },
}

impl LogicalPlan {
    pub fn selection(input: LogicalPlan, predicates: Vec<BoundPredicate>) -> LogicalPlan {
        if predicates.is_empty() {
            input
        } else {
            LogicalPlan::Selection {
                input: Box::new(input),
                predicates,
            }
        }
    }

    pub fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Relation { .. } | LogicalPlan::ParamValues { .. } => None,
            LogicalPlan::Selection { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Stop { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => Some(input),
            LogicalPlan::Join { left, .. } => Some(left),
        }
    }

    /// All relations reachable from this subtree, in chain order.
    pub fn relations(&self) -> Vec<RelId> {
        let mut rels = Vec::new();
        self.collect_relations(&mut rels);
        rels
    }

    fn collect_relations(&self, out: &mut Vec<RelId>) {
        match self {
            LogicalPlan::Relation { rel } | LogicalPlan::ParamValues { rel } => out.push(*rel),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
            _ => {
                if let Some(input) = self.input() {
                    input.collect_relations(out);
                }
            }
        }
    }

    /// Render the tree with indentation, resolving field ids through
    /// `schema` — the display format used for Figure 3's plan stages.
    pub fn display_with<'a>(&'a self, schema: &'a QuerySchema) -> DisplayPlan<'a> {
        DisplayPlan { plan: self, schema }
    }
}

/// Pretty-printer wrapper.
pub struct DisplayPlan<'a> {
    plan: &'a LogicalPlan,
    schema: &'a QuerySchema,
}

impl fmt::Display for DisplayPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_node(self.plan, self.schema, f, 0)
    }
}

fn field_name(schema: &QuerySchema, id: FieldId) -> String {
    schema.field(id).qualified_name()
}

fn fmt_preds(
    schema: &QuerySchema,
    preds: &[BoundPredicate],
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    for (i, p) in preds.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        // Re-render with resolved names instead of raw ids.
        let rendered = render_pred(schema, p);
        write!(f, "{rendered}")?;
    }
    Ok(())
}

/// Render one predicate with field names.
pub fn render_pred(schema: &QuerySchema, p: &BoundPredicate) -> String {
    match p {
        BoundPredicate::Compare { field, op, operand } => {
            format!("{} {} {}", field_name(schema, *field), op, operand)
        }
        BoundPredicate::FieldCompare { left, op, right } => format!(
            "{} {} {}",
            field_name(schema, *left),
            op,
            field_name(schema, *right)
        ),
        BoundPredicate::TokenMatch { field, operand } => {
            format!("{} CONTAINS TOKEN {}", field_name(schema, *field), operand)
        }
        BoundPredicate::In { field, operand } => {
            format!("{} IN {}", field_name(schema, *field), operand)
        }
        BoundPredicate::IsNull { field, negated } => format!(
            "{} IS {}NULL",
            field_name(schema, *field),
            if *negated { "NOT " } else { "" }
        ),
    }
}

fn fmt_node(
    plan: &LogicalPlan,
    schema: &QuerySchema,
    f: &mut fmt::Formatter<'_>,
    depth: usize,
) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match plan {
        LogicalPlan::Relation { rel } => {
            let r = schema.relation(*rel);
            writeln!(f, "{pad}Relation({})", r.binding)
        }
        LogicalPlan::ParamValues { rel } => {
            let r = schema.relation(*rel);
            writeln!(f, "{pad}ParamValues({})", r.binding)
        }
        LogicalPlan::Selection { input, predicates } => {
            write!(f, "{pad}Selection(")?;
            fmt_preds(schema, predicates, f)?;
            writeln!(f, ")")?;
            fmt_node(input, schema, f, depth + 1)
        }
        LogicalPlan::Join { left, right, on } => {
            write!(f, "{pad}Join(")?;
            for (i, (l, r)) in on.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} = {}", field_name(schema, *l), field_name(schema, *r))?;
            }
            writeln!(f, ")")?;
            fmt_node(left, schema, f, depth + 1)?;
            fmt_node(right, schema, f, depth + 1)
        }
        LogicalPlan::Sort { input, keys } => {
            write!(f, "{pad}Sort(")?;
            for (i, (k, d)) in keys.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} {}", field_name(schema, *k), d)?;
            }
            writeln!(f, ")")?;
            fmt_node(input, schema, f, depth + 1)
        }
        LogicalPlan::Stop { input, stop } => {
            let kind = match stop.kind {
                StopKind::Standard => "Stop",
                StopKind::Data => "DataStop",
            };
            writeln!(f, "{pad}{kind}({}, from {})", stop.count, stop.provenance)?;
            fmt_node(input, schema, f, depth + 1)
        }
        LogicalPlan::Project { input, items } => {
            write!(f, "{pad}Project(")?;
            for (i, (fid, alias)) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let fname = field_name(schema, *fid);
                if fname.ends_with(&format!(".{alias}")) {
                    write!(f, "{fname}")?;
                } else {
                    write!(f, "{fname} AS {alias}")?;
                }
            }
            writeln!(f, ")")?;
            fmt_node(input, schema, f, depth + 1)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            write!(f, "{pad}Aggregate(")?;
            if !group_by.is_empty() {
                write!(f, "group by ")?;
                for (i, g) in group_by.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", field_name(schema, *g))?;
                }
                write!(f, "; ")?;
            }
            for (i, a) in aggs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match a.arg {
                    Some(arg) => write!(f, "{}({})", a.func, field_name(schema, arg))?,
                    None => write!(f, "{}(*)", a.func)?,
                }
            }
            writeln!(f, ")")?;
            fmt_node(input, schema, f, depth + 1)
        }
    }
}
