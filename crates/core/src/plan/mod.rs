//! Query plans: binding, logical plans, and shared plan infrastructure.

pub mod bind;
pub mod logical;
pub mod params;
pub mod physical;
pub mod pred;
pub mod provenance;
pub mod schema;

pub use bind::{bind, BindError, BoundAggregate, BoundQuery, OutputField, ParamSlot};
pub use logical::{LogicalPlan, Stop, StopKind};
pub use params::{ParamError, ParamValue, Params};
pub use pred::{BoundPredicate, InOperand, Operand};
pub use provenance::Provenance;
pub use schema::{Field, FieldId, QuerySchema, RelId, Relation, RelationSource};
