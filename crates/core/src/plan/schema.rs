//! Plan-wide field space.
//!
//! At bind time every relation in the query (base tables plus synthetic
//! parameter-collection relations) is assigned a contiguous range of *global
//! field ids*. Predicates, sort keys, and projections all reference these
//! ids; they stay stable across join reordering, which only restructures the
//! operator tree. The physical planner later maps global ids to positional
//! offsets in runtime tuples.

use crate::ast::{ColumnRef, Param};
use crate::catalog::{Catalog, TableId};
use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// Index into [`QuerySchema::fields`].
pub type FieldId = usize;

/// Index into [`QuerySchema::relations`].
pub type RelId = usize;

/// What a relation in the FROM clause is.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationSource {
    /// A base table.
    Table(TableId),
    /// A bounded in-memory collection bound at execution time: the rewrite
    /// target of `col IN [p MAX n]` predicates. One column named `value`.
    ParamValues { param: Param, ty: DataType },
}

/// One relation of the query with its global field range.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    pub binding: String,
    pub source: RelationSource,
    /// First global field id owned by this relation.
    pub first_field: FieldId,
    pub arity: usize,
}

impl Relation {
    pub fn fields(&self) -> std::ops::Range<FieldId> {
        self.first_field..self.first_field + self.arity
    }
}

/// One resolvable field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Binding name of the owning relation.
    pub relation: String,
    pub rel_id: RelId,
    pub name: String,
    pub ty: DataType,
    /// Column position within the owning base table (`None` for synthetic
    /// relations).
    pub column: Option<usize>,
    pub nullable: bool,
}

impl Field {
    /// `relation.column` display form.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.relation, self.name)
    }
}

/// Resolution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolveError {
    UnknownRelation(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::UnknownRelation(r) => write!(f, "unknown relation '{r}'"),
            ResolveError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ResolveError::AmbiguousColumn(c) => {
                write!(f, "column '{c}' is ambiguous; qualify it")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// The global field space of one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySchema {
    pub relations: Vec<Relation>,
    pub fields: Vec<Field>,
}

impl QuerySchema {
    /// Add a base-table relation; returns its [`RelId`].
    pub fn add_table(&mut self, catalog: &Catalog, table: TableId, binding: &str) -> RelId {
        let def = catalog.table_by_id(table);
        let rel_id = self.relations.len();
        let first_field = self.fields.len();
        for (i, col) in def.columns.iter().enumerate() {
            self.fields.push(Field {
                relation: binding.to_string(),
                rel_id,
                name: col.name.clone(),
                ty: col.ty,
                column: Some(i),
                nullable: col.nullable,
            });
        }
        self.relations.push(Relation {
            binding: binding.to_string(),
            source: RelationSource::Table(table),
            first_field,
            arity: def.columns.len(),
        });
        rel_id
    }

    /// Add a synthetic parameter-collection relation.
    pub fn add_param_values(&mut self, param: Param, ty: DataType, binding: &str) -> RelId {
        let rel_id = self.relations.len();
        let first_field = self.fields.len();
        self.fields.push(Field {
            relation: binding.to_string(),
            rel_id,
            name: "value".to_string(),
            ty,
            column: Some(0),
            nullable: false,
        });
        self.relations.push(Relation {
            binding: binding.to_string(),
            source: RelationSource::ParamValues { param, ty },
            first_field,
            arity: 1,
        });
        rel_id
    }

    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id]
    }

    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id]
    }

    /// Resolve a (possibly qualified) column reference.
    pub fn resolve(&self, col: &ColumnRef) -> Result<FieldId, ResolveError> {
        let matches: Vec<FieldId> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name.eq_ignore_ascii_case(&col.column)
                    && col
                        .qualifier
                        .as_ref()
                        .map(|q| f.relation.eq_ignore_ascii_case(q))
                        .unwrap_or(true)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => {
                if let Some(q) = &col.qualifier {
                    if !self
                        .relations
                        .iter()
                        .any(|r| r.binding.eq_ignore_ascii_case(q))
                    {
                        return Err(ResolveError::UnknownRelation(q.clone()));
                    }
                }
                Err(ResolveError::UnknownColumn(col.to_string()))
            }
            1 => Ok(matches[0]),
            _ => Err(ResolveError::AmbiguousColumn(col.to_string())),
        }
    }

    /// Resolve a relation binding name.
    pub fn resolve_relation(&self, binding: &str) -> Result<RelId, ResolveError> {
        self.relations
            .iter()
            .position(|r| r.binding.eq_ignore_ascii_case(binding))
            .ok_or_else(|| ResolveError::UnknownRelation(binding.to_string()))
    }

    /// The relation owning a field.
    pub fn rel_of(&self, field: FieldId) -> RelId {
        self.fields[field].rel_id
    }

    /// Table-local column position of a field (panics for synthetic fields
    /// used where a base column is required — the binder prevents this).
    pub fn column_of(&self, field: FieldId) -> usize {
        self.fields[field].column.expect("base-table field")
    }
}

/// Shared handle used across plan nodes.
pub type SchemaRef = Arc<QuerySchema>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;

    fn catalog() -> (Catalog, TableId, TableId) {
        let mut cat = Catalog::new();
        let subs = cat
            .create_table(
                TableDef::builder("Subscriptions")
                    .column("owner", DataType::Varchar(32))
                    .column("target", DataType::Varchar(32))
                    .primary_key(&["owner", "target"])
                    .build(),
            )
            .unwrap();
        let thoughts = cat
            .create_table(
                TableDef::builder("Thoughts")
                    .column("owner", DataType::Varchar(32))
                    .column("timestamp", DataType::Timestamp)
                    .column("text", DataType::Varchar(140))
                    .primary_key(&["owner", "timestamp"])
                    .build(),
            )
            .unwrap();
        (cat, subs, thoughts)
    }

    #[test]
    fn resolution_rules() {
        let (cat, subs, thoughts) = catalog();
        let mut qs = QuerySchema::default();
        qs.add_table(&cat, subs, "s");
        qs.add_table(&cat, thoughts, "t");
        // unqualified unique column
        let f = qs.resolve(&ColumnRef::bare("text")).unwrap();
        assert_eq!(qs.field(f).qualified_name(), "t.text");
        // ambiguous without qualifier
        assert!(matches!(
            qs.resolve(&ColumnRef::bare("owner")),
            Err(ResolveError::AmbiguousColumn(_))
        ));
        // qualified
        let f = qs.resolve(&ColumnRef::new(Some("s"), "owner")).unwrap();
        assert_eq!(qs.rel_of(f), 0);
        // unknown relation vs unknown column
        assert!(matches!(
            qs.resolve(&ColumnRef::new(Some("zz"), "owner")),
            Err(ResolveError::UnknownRelation(_))
        ));
        assert!(matches!(
            qs.resolve(&ColumnRef::bare("nope")),
            Err(ResolveError::UnknownColumn(_))
        ));
    }

    #[test]
    fn param_values_relation() {
        let (cat, subs, _) = catalog();
        let mut qs = QuerySchema::default();
        qs.add_table(&cat, subs, "s");
        let p = Param {
            index: 1,
            name: "friends".into(),
            max_cardinality: Some(50),
        };
        let rel = qs.add_param_values(p, DataType::Varchar(32), "friends");
        assert_eq!(qs.relation(rel).arity, 1);
        let f = qs
            .resolve(&ColumnRef::new(Some("friends"), "value"))
            .unwrap();
        assert_eq!(qs.field(f).ty, DataType::Varchar(32));
    }
}
